//! State-targeting hammering: the adversary aims at the detector itself.
//!
//! Every other strategy in this crate attacks *victim data* and shapes
//! its stream to evade the detector. This one attacks the *detector's
//! state*: ANVIL's carry accumulators, ledger entries, and replica copies
//! live in DRAM rows like everything else (`anvil-mem`'s `StateRowMap`
//! places them), so an attacker who locates those rows can hammer the
//! defense's own memory. Retrospectives on rowhammer defenses call
//! unprotected mitigation metadata a standing weakness of software
//! mitigations — this is that weakness, weaponized.
//!
//! [`StateTargetingHammer`] is the window-granular model the
//! `selfdefense` campaign drives. Each window the engine reports, per
//! state row, how many windows have passed since the incremental scrub
//! last verified that row's cells; the hammer locks onto the *stalest*
//! row — while the scrub does not visit a row its age only grows, so the
//! hammer stays on target exactly for the length of the scrub gap, and a
//! detector stall or restart (which pauses scrubbing entirely) invites a
//! full-rate burst. Targeting is a pure function of the window index and
//! the age vector, so campaign cells replay byte-for-byte at any thread
//! count.

use crate::{RestartAwareHammer, EST_STAGE1_WINDOW_CYCLES};

/// The self-defense campaign's detector-state attacker model.
#[derive(Debug, Clone)]
pub struct StateTargetingHammer {
    paced_activations: u64,
    window_cycles: u64,
    lock_threshold: u64,
}

impl StateTargetingHammer {
    /// Paces just under the baseline stage-1 trip rate while the scrub
    /// keeps up (ages below the default lock threshold of 4 windows — one
    /// full scrub rotation), bursting full-rate once a row's scrub gap
    /// exceeds it.
    #[must_use]
    pub fn new() -> Self {
        StateTargetingHammer {
            paced_activations: 19_500,
            window_cycles: EST_STAGE1_WINDOW_CYCLES,
            lock_threshold: 4,
        }
    }

    /// Overrides the paced per-window activation budget.
    #[must_use]
    pub fn with_paced_activations(mut self, activations: u64) -> Self {
        self.paced_activations = activations.max(1);
        self
    }

    /// Overrides the scrub-gap age (in windows) at which the hammer
    /// escalates from paced pressure to a full-rate burst.
    #[must_use]
    pub fn with_lock_threshold(mut self, windows: u64) -> Self {
        self.lock_threshold = windows.max(1);
        self
    }

    /// The paced per-window activation budget.
    #[must_use]
    pub fn paced_activations(&self) -> u64 {
        self.paced_activations
    }

    /// The state row hammered at `window`, given each row's scrub age
    /// (windows since the incremental scrub last verified it), or `None`
    /// when no state rows are known. Locks onto the stalest row; ties
    /// rotate round-robin so equally fresh rows all accumulate pressure.
    #[must_use]
    pub fn target_at(&self, window: u64, ages: &[u64]) -> Option<usize> {
        let stalest = ages.iter().copied().max()?;
        let k = ages.iter().filter(|&&a| a == stalest).count() as u64;
        let pick = window % k;
        ages.iter()
            .enumerate()
            .filter(|&(_, &a)| a == stalest)
            .nth(usize::try_from(pick).expect("pick < k <= ages.len()"))
            .map(|(i, _)| i)
    }

    /// Activations landed on the target during one window whose scrub
    /// age is `age`: paced below the stage-1 trip rate while the scrub
    /// keeps the gap short (stealth), a full-rate burst once the gap
    /// exceeds the lock threshold — the scrub is behind, so flips landed
    /// now survive longest.
    #[must_use]
    pub fn window_activations(&self, age: u64) -> u64 {
        if age >= self.lock_threshold {
            RestartAwareHammer::burst_activations(self.window_cycles)
        } else {
            self.paced_activations
        }
    }

    /// Activations landed inside a detector downtime gap of `gap` cycles
    /// (restart recovery — no scrubbing at all), using the same gap
    /// arithmetic as [`RestartAwareHammer::burst_activations`].
    #[must_use]
    pub fn gap_activations(gap: u64) -> u64 {
        RestartAwareHammer::burst_activations(gap)
    }
}

impl Default for StateTargetingHammer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EST_ATTACK_ACCESS_CYCLES;

    #[test]
    fn locks_onto_the_stalest_row() {
        let h = StateTargetingHammer::new();
        for w in 0..100 {
            assert_eq!(h.target_at(w, &[0, 3, 1, 2]), Some(1));
        }
        // Once the scrub visits row 1 its age resets and the hammer
        // moves to the new stalest row.
        assert_eq!(h.target_at(7, &[0, 0, 1, 2]), Some(3));
    }

    #[test]
    fn ties_rotate_round_robin() {
        let h = StateTargetingHammer::new();
        let ages = [2, 2, 0, 2];
        let mut hits = [0u64; 4];
        for w in 0..3_000 {
            hits[h.target_at(w, &ages).unwrap()] += 1;
        }
        assert_eq!(hits, [1_000, 1_000, 0, 1_000]);
        assert!(h.target_at(0, &[]).is_none());
    }

    #[test]
    fn targeting_is_a_pure_function_of_window_and_ages() {
        let h = StateTargetingHammer::new();
        let ages = [1, 4, 0, 4, 2];
        for w in 0..500 {
            assert_eq!(h.target_at(w, &ages), h.target_at(w, &ages));
        }
    }

    #[test]
    fn scrub_gaps_escalate_to_full_rate_bursts() {
        let h = StateTargetingHammer::new();
        // While the incremental scrub keeps up (one rotation = 4
        // windows), the hammer stays paced below the stage-1 trip rate.
        for age in 0..4 {
            assert_eq!(h.window_activations(age), 19_500);
        }
        // Past the lock threshold: a full-window burst.
        assert_eq!(
            h.window_activations(4),
            EST_STAGE1_WINDOW_CYCLES / EST_ATTACK_ACCESS_CYCLES
        );
        assert!(h.window_activations(4) > 4 * h.paced_activations());
        assert_eq!(
            StateTargetingHammer::gap_activations(4_000_000),
            4_000_000 / 187
        );
    }

    #[test]
    fn lock_threshold_is_tunable() {
        let h = StateTargetingHammer::new().with_lock_threshold(2);
        assert_eq!(h.window_activations(1), 19_500);
        assert!(h.window_activations(2) > 19_500);
    }
}
