//! Duty-cycled hammering: bursts that straddle stage-1 window boundaries.

use crate::common::{pair_iteration, push_idle, templated_pairs, victim_paddr, MB};
use crate::{EST_ATTACK_ACCESS_CYCLES, EST_STAGE1_WINDOW_CYCLES};
use anvil_attacks::{Attack, AttackEnv, AttackError, AttackOp};

/// Double-sided hammering in bursts synchronized to the detector's
/// stage-1 window grid.
///
/// ANVIL's stage 1 counts LLC misses over fixed `tc`-length windows. A
/// burst of `B` misses centered on a window *boundary* contributes only
/// `B/2` to each adjacent window, so bursts of up to `2(T-1)` misses
/// (with `T` the stage-1 threshold) never trip a boundary-aligned
/// detector while delivering up to three times the sustained-pacing
/// activation rate. The default burst of 28K misses every two windows
/// keeps each window at 14K — well under the paper's 20K threshold —
/// while landing ~149K pair activations per 64 ms refresh interval,
/// enough to flip the paper's "future DRAM" (110K threshold). The 6K
/// per-window margin matters: DRAM auto-refresh stalls drift the burst
/// off the window grid by ~62.5K cycles per window, smearing the split,
/// and a maximal 36K burst (18K per half) trips stage 1 within three
/// refresh intervals while 28K survives well past one.
///
/// Against the hardened detector the EWMA carry adds half of the
/// previous window's count to the current one (14K + 7K = 21K ≥ 20K),
/// the jittered window phase breaks the boundary synchronization, and
/// sticky stage-2 sampling keeps the sampler armed across the quiet half
/// of the duty cycle until the next burst lands inside it.
#[derive(Debug)]
pub struct DutyCycleHammer {
    arena_bytes: u64,
    window_cycles: u64,
    burst_misses: u64,
    prepared: Option<Prepared>,
}

#[derive(Debug)]
struct Prepared {
    ops: Vec<AttackOp>,
    /// Index the cursor wraps back to (the prefix before it is the
    /// one-time phase alignment).
    loop_start: usize,
    cursor: usize,
    aggressors: Vec<u64>,
    victims: Vec<u64>,
}

impl DutyCycleHammer {
    /// Creates the attack assuming the paper's baseline window (6 ms)
    /// and a 28K-miss burst every two windows.
    pub fn new() -> Self {
        DutyCycleHammer {
            arena_bytes: 8 * MB,
            window_cycles: EST_STAGE1_WINDOW_CYCLES,
            burst_misses: 28_000,
            prepared: None,
        }
    }

    /// Overrides the assumed stage-1 window length (in cycles).
    #[must_use]
    pub fn with_window_cycles(mut self, cycles: u64) -> Self {
        self.window_cycles = cycles.max(1);
        self
    }

    /// Overrides the misses per burst. Keep it under twice the stage-1
    /// threshold or the straddled windows will trip.
    #[must_use]
    pub fn with_burst_misses(mut self, misses: u64) -> Self {
        self.burst_misses = misses.max(2);
        self
    }

    /// Misses per burst (each burst straddles one window boundary).
    pub fn burst_misses(&self) -> u64 {
        self.burst_misses
    }
}

impl Default for DutyCycleHammer {
    fn default() -> Self {
        Self::new()
    }
}

impl Attack for DutyCycleHammer {
    fn name(&self) -> &'static str {
        "duty-cycle-hammer"
    }

    fn prepare(&mut self, env: &mut AttackEnv<'_>) -> Result<(), AttackError> {
        let va = env.process.mmap(self.arena_bytes, env.frames)?;
        let pairs = templated_pairs(env, va, self.arena_bytes, 64)?;
        let pair = pairs[0];
        let victim_pa = victim_paddr(env, &pair);

        let burst_cost = self.burst_misses * EST_ATTACK_ACCESS_CYCLES;
        let period = 2 * self.window_cycles;
        let mut ops = Vec::new();
        // One-time phase alignment: idle until the first burst is
        // centered on the first window boundary.
        push_idle(
            &mut ops,
            self.window_cycles.saturating_sub(burst_cost / 2).max(1),
        );
        let loop_start = ops.len();
        for _ in 0..self.burst_misses / 2 {
            ops.extend_from_slice(&pair_iteration(&pair));
        }
        // Idle out the rest of the two-window period.
        push_idle(&mut ops, period.saturating_sub(burst_cost).max(1));

        self.prepared = Some(Prepared {
            ops,
            loop_start,
            cursor: 0,
            aggressors: vec![pair.below_pa, pair.above_pa],
            victims: vec![victim_pa],
        });
        Ok(())
    }

    fn next_op(&mut self) -> AttackOp {
        let p = self.prepared.as_mut().expect("prepare the attack first");
        let op = p.ops[p.cursor];
        p.cursor += 1;
        if p.cursor >= p.ops.len() {
            p.cursor = p.loop_start;
        }
        op
    }

    fn aggressor_paddrs(&self) -> Vec<u64> {
        self.prepared
            .as_ref()
            .map_or(Vec::new(), |p| p.aggressors.clone())
    }

    fn victim_paddrs(&self) -> Vec<u64> {
        self.prepared
            .as_ref()
            .map_or(Vec::new(), |p| p.victims.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::IDLE_CHUNK_CYCLES;
    use anvil_mem::{
        AllocationPolicy, FrameAllocator, MemoryConfig, MemorySystem, PagemapPolicy, Process,
    };

    fn prepared() -> DutyCycleHammer {
        let mut sys = MemorySystem::new(MemoryConfig::paper_platform());
        let mut frames = FrameAllocator::new(sys.phys().capacity(), AllocationPolicy::Contiguous);
        let mut process = Process::new(7, "adversary");
        let mut attack = DutyCycleHammer::new();
        attack
            .prepare(&mut AttackEnv {
                sys: &mut sys,
                process: &mut process,
                frames: &mut frames,
                pagemap: PagemapPolicy::Open,
            })
            .unwrap();
        attack
    }

    #[test]
    fn phase_prefix_centers_the_burst_on_a_window_boundary() {
        let mut attack = prepared();
        // The prefix is pure idle summing to window - burst_cost/2.
        let want = EST_STAGE1_WINDOW_CYCLES - 28_000 * EST_ATTACK_ACCESS_CYCLES / 2;
        let mut idle = 0;
        loop {
            match attack.next_op() {
                AttackOp::Compute { cycles } => idle += cycles,
                _ => break,
            }
        }
        assert_eq!(idle, want);
    }

    #[test]
    fn each_period_delivers_exactly_the_burst_and_its_idle() {
        let mut attack = prepared();
        // Skip the alignment prefix.
        while matches!(attack.next_op(), AttackOp::Compute { .. }) {}
        // We consumed the first burst access already.
        let mut misses = 1u64;
        let mut idle = 0u64;
        // Walk one full period: burst (accesses+flushes), then idle, then
        // the next burst begins.
        loop {
            match attack.next_op() {
                AttackOp::Access { .. } if idle > 0 => break,
                AttackOp::Access { .. } => misses += 1,
                AttackOp::Clflush { .. } => {}
                AttackOp::Compute { cycles } => idle += cycles,
            }
        }
        assert_eq!(misses, 28_000);
        let period = 2 * EST_STAGE1_WINDOW_CYCLES;
        assert_eq!(idle, period - 28_000 * EST_ATTACK_ACCESS_CYCLES);
        // Idle comes in deadline-friendly chunks.
        assert!(IDLE_CHUNK_CYCLES <= 10_000);
    }

    #[test]
    #[should_panic(expected = "prepare the attack first")]
    fn next_op_before_prepare_panics() {
        DutyCycleHammer::new().next_op();
    }
}
