//! Cross-domain hammering: one attacker VM rotating its pressure over
//! every protection domain on the machine.
//!
//! The fleet setting (inter-VM Rowhammer, Kawasaki & Akiyama) differs
//! from the single-detector campaigns in one crucial way: the attacker
//! is co-resident with *many* independently protected domains and is
//! free to pick its target each window — preferring whichever domain is
//! currently degraded, restarting, or blind. [`CrossDomainHammer`] is
//! the statistical model of that attacker the fleet campaign drives: it
//! paces below the stage-1 trip rate against whichever domain it
//! targets, rotates round-robin over the eligible (non-quarantined)
//! domains so every DIMM keeps accumulating pressure between its
//! refreshes, and opportunistically bursts at full rate into any
//! detector downtime gap or PMU-blind episode the fleet exposes —
//! reusing [`RestartAwareHammer::burst_activations`] for the gap
//! arithmetic so both campaigns charge downtime identically.

use crate::{RestartAwareHammer, EST_STAGE1_WINDOW_CYCLES};

/// The fleet campaign's cross-domain attacker model.
///
/// Unlike the op-tape attacks, this adversary is evaluated at window
/// granularity: the fleet engine asks, for each window, which domain the
/// attacker pressures and with how many aggressor activations, then
/// charges those activations against the domain's detector evidence and
/// weak-cell thresholds. Targeting is a pure function of the window
/// index and the eligibility mask, so a fleet cell replays byte-for-byte
/// regardless of thread schedule.
#[derive(Debug, Clone)]
pub struct CrossDomainHammer {
    paced_activations: u64,
    window_cycles: u64,
}

impl CrossDomainHammer {
    /// Paces just under the baseline stage-1 trip rate (19.5K misses per
    /// 6 ms window), the same steady-state rate as
    /// [`RestartAwareHammer`].
    #[must_use]
    pub fn new() -> Self {
        CrossDomainHammer {
            paced_activations: 19_500,
            window_cycles: EST_STAGE1_WINDOW_CYCLES,
        }
    }

    /// Overrides the paced per-window activation budget.
    #[must_use]
    pub fn with_paced_activations(mut self, activations: u64) -> Self {
        self.paced_activations = activations.max(1);
        self
    }

    /// The paced per-window activation budget against the targeted
    /// domain.
    #[must_use]
    pub fn paced_activations(&self) -> u64 {
        self.paced_activations
    }

    /// The domain targeted at `window` given the eligibility mask
    /// (`eligible[d]` is false for quarantined or outaged domains), or
    /// `None` when no domain is attackable. Round-robin over the
    /// eligible set: the `window mod k`-th eligible domain of `k`.
    #[must_use]
    pub fn target_at(&self, window: u64, eligible: &[bool]) -> Option<usize> {
        let k = eligible.iter().filter(|&&e| e).count() as u64;
        if k == 0 {
            return None;
        }
        let pick = window % k;
        eligible
            .iter()
            .enumerate()
            .filter(|&(_, &e)| e)
            .nth(usize::try_from(pick).expect("pick < k <= eligible.len()"))
            .map(|(d, _)| d)
    }

    /// Activations landed on the target during one window in which the
    /// domain's detector is blind (PMU loss before blanket refresh
    /// engages): a full-rate burst for the whole window, via the same
    /// gap arithmetic as [`RestartAwareHammer::burst_activations`].
    #[must_use]
    pub fn blind_window_activations(&self) -> u64 {
        RestartAwareHammer::burst_activations(self.window_cycles)
    }

    /// Activations landed inside a recovery gap of `gap` cycles.
    #[must_use]
    pub fn gap_activations(gap: u64) -> u64 {
        RestartAwareHammer::burst_activations(gap)
    }
}

impl Default for CrossDomainHammer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EST_ATTACK_ACCESS_CYCLES;

    #[test]
    fn rotation_visits_every_eligible_domain_equally() {
        let h = CrossDomainHammer::new();
        let eligible = [true, true, true, true];
        let mut hits = [0u64; 4];
        for w in 0..4_000 {
            hits[h.target_at(w, &eligible).unwrap()] += 1;
        }
        assert_eq!(hits, [1_000; 4]);
    }

    #[test]
    fn rotation_skips_ineligible_domains() {
        let h = CrossDomainHammer::new();
        let eligible = [true, false, true, false];
        for w in 0..100 {
            let t = h.target_at(w, &eligible).unwrap();
            assert!(t == 0 || t == 2, "targeted ineligible domain {t}");
        }
        assert!(h.target_at(0, &[false, false]).is_none());
        assert!(h.target_at(0, &[]).is_none());
    }

    #[test]
    fn targeting_is_a_pure_function_of_window_and_mask() {
        let h = CrossDomainHammer::new();
        let eligible = [true, false, true, true];
        for w in 0..500 {
            assert_eq!(h.target_at(w, &eligible), h.target_at(w, &eligible));
        }
    }

    #[test]
    fn blind_windows_burst_at_the_gap_rate() {
        let h = CrossDomainHammer::new();
        assert_eq!(
            h.blind_window_activations(),
            EST_STAGE1_WINDOW_CYCLES / EST_ATTACK_ACCESS_CYCLES
        );
        assert!(h.blind_window_activations() > 4 * h.paced_activations());
        assert_eq!(
            CrossDomainHammer::gap_activations(4_000_000),
            4_000_000 / 187
        );
    }
}
