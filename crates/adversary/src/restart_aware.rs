//! Restart-aware hammering: full-rate bursts timed into detector
//! downtime.

use crate::common::{pair_iteration, push_idle, templated_pairs, victim_paddr, MB};
use crate::{EST_ATTACK_ACCESS_CYCLES, EST_STAGE1_WINDOW_CYCLES};
use anvil_attacks::{AggressorPair, Attack, AttackEnv, AttackError, AttackOp};

/// Double-sided hammering that paces politely below the stage-1 trip
/// rate while the detector is watching, then hammers flat out inside
/// every known detector downtime gap.
///
/// A supervised detector that crashes and restarts is blind between the
/// crash and the restore — exactly the gap an attacker who can observe
/// (or provoke) the crash will fill. During a gap of `G` cycles a
/// double-sided hammer lands `G / 187` activations with nothing
/// counting them; against the paper platform's 220K-activation flip
/// threshold that makes any gap beyond ~41M cycles (≈16 ms) sufficient
/// for a flip from a standing start, and shorter gaps combine with
/// whatever paced evidence accumulated since the victim's last refresh.
/// This is why the supervisor's recovery protocol must blanket-refresh
/// the gap *before* trusting the no-flip guarantee again, and why its
/// restart backoff must stay under the guarantee envelope's downtime
/// budget.
///
/// The gap schedule is supplied by the harness (which knows when it will
/// inject crashes): pairs of `(start, duration)` in cycles from attack
/// start, non-overlapping and sorted.
#[derive(Debug)]
pub struct RestartAwareHammer {
    arena_bytes: u64,
    window_cycles: u64,
    paced_misses: u64,
    gaps: Vec<(u64, u64)>,
    prepared: Option<Prepared>,
}

#[derive(Debug)]
struct Prepared {
    ops: Vec<AttackOp>,
    loop_start: usize,
    cursor: usize,
    aggressors: Vec<u64>,
    victims: Vec<u64>,
}

impl RestartAwareHammer {
    /// Creates the attack with the paper-baseline window, a paced rate
    /// of 19.5K misses per window (just under the 20K threshold), and an
    /// empty gap schedule.
    pub fn new() -> Self {
        RestartAwareHammer {
            arena_bytes: 8 * MB,
            window_cycles: EST_STAGE1_WINDOW_CYCLES,
            paced_misses: 19_500,
            gaps: Vec::new(),
            prepared: None,
        }
    }

    /// Sets the downtime schedule: `(start, duration)` pairs in cycles
    /// from attack start, sorted and non-overlapping.
    #[must_use]
    pub fn with_gaps(mut self, gaps: Vec<(u64, u64)>) -> Self {
        self.gaps = gaps;
        self
    }

    /// Overrides the assumed stage-1 window length (in cycles).
    #[must_use]
    pub fn with_window_cycles(mut self, cycles: u64) -> Self {
        self.window_cycles = cycles.max(1);
        self
    }

    /// Overrides the paced per-window miss budget used while the
    /// detector is up.
    #[must_use]
    pub fn with_paced_misses(mut self, misses: u64) -> Self {
        self.paced_misses = misses.max(2);
        self
    }

    /// Aggressor-pair activations a full-rate burst lands inside a
    /// downtime gap of `gap` cycles: the number the recovery protocol
    /// must assume accumulated while nobody was counting.
    pub fn burst_activations(gap: u64) -> u64 {
        gap / EST_ATTACK_ACCESS_CYCLES
    }

    /// Emits pair iterations pacing `misses` misses evenly over `span`
    /// cycles.
    fn push_paced(&self, ops: &mut Vec<AttackOp>, pair: &AggressorPair, span: u64) {
        let pairs = (self.paced_misses / 2).max(1);
        let misses_span = self.window_cycles.max(1);
        // Scale the window budget to the span being covered.
        let total_pairs = (pairs.saturating_mul(span) / misses_span).max(1);
        let slot = span / total_pairs;
        let idle = slot.saturating_sub(2 * EST_ATTACK_ACCESS_CYCLES);
        for _ in 0..total_pairs {
            ops.extend_from_slice(&pair_iteration(pair));
            if idle > 0 {
                push_idle(ops, idle);
            }
        }
    }
}

impl Default for RestartAwareHammer {
    fn default() -> Self {
        Self::new()
    }
}

impl Attack for RestartAwareHammer {
    fn name(&self) -> &'static str {
        "restart-aware-hammer"
    }

    fn prepare(&mut self, env: &mut AttackEnv<'_>) -> Result<(), AttackError> {
        let va = env.process.mmap(self.arena_bytes, env.frames)?;
        let pairs = templated_pairs(env, va, self.arena_bytes, 64)?;
        let pair = pairs[0];
        let victim_pa = victim_paddr(env, &pair);

        let mut ops = Vec::new();
        let mut t = 0u64;
        // One-time prefix: the scheduled gaps, each preceded by paced
        // cover traffic up to the gap's start.
        for &(start, len) in &self.gaps {
            if start > t {
                self.push_paced(&mut ops, &pair, start - t);
            }
            // Inside the gap: back-to-back hammering, no idle at all.
            for _ in 0..Self::burst_activations(len) / 2 {
                ops.extend_from_slice(&pair_iteration(&pair));
            }
            t = start + len;
        }
        // Steady state after the last gap: one paced window, looped.
        let loop_start = ops.len();
        self.push_paced(&mut ops, &pair, self.window_cycles);

        self.prepared = Some(Prepared {
            ops,
            loop_start,
            cursor: 0,
            aggressors: vec![pair.below_pa, pair.above_pa],
            victims: vec![victim_pa],
        });
        Ok(())
    }

    fn next_op(&mut self) -> AttackOp {
        let p = self.prepared.as_mut().expect("prepare the attack first");
        let op = p.ops[p.cursor];
        p.cursor += 1;
        if p.cursor >= p.ops.len() {
            p.cursor = p.loop_start;
        }
        op
    }

    fn aggressor_paddrs(&self) -> Vec<u64> {
        self.prepared
            .as_ref()
            .map_or(Vec::new(), |p| p.aggressors.clone())
    }

    fn victim_paddrs(&self) -> Vec<u64> {
        self.prepared
            .as_ref()
            .map_or(Vec::new(), |p| p.victims.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anvil_mem::{
        AllocationPolicy, FrameAllocator, MemoryConfig, MemorySystem, PagemapPolicy, Process,
    };

    fn prepared(attack: &mut RestartAwareHammer) {
        let mut sys = MemorySystem::new(MemoryConfig::paper_platform());
        let mut frames = FrameAllocator::new(sys.phys().capacity(), AllocationPolicy::Contiguous);
        let mut process = Process::new(7, "adversary");
        attack
            .prepare(&mut AttackEnv {
                sys: &mut sys,
                process: &mut process,
                frames: &mut frames,
                pagemap: PagemapPolicy::Open,
            })
            .unwrap();
    }

    #[test]
    fn burst_activations_matches_the_gap_rate() {
        assert_eq!(RestartAwareHammer::burst_activations(0), 0);
        assert_eq!(RestartAwareHammer::burst_activations(186), 0);
        assert_eq!(RestartAwareHammer::burst_activations(187), 1);
        assert_eq!(
            RestartAwareHammer::burst_activations(4_000_000),
            4_000_000 / 187
        );
        // ~16 ms of downtime is a flip from a standing start.
        assert!(RestartAwareHammer::burst_activations(42_000_000) >= 220_000);
    }

    #[test]
    fn gap_segment_hammers_without_idling() {
        let gap_len = 1_000_000u64;
        let mut attack =
            RestartAwareHammer::new().with_gaps(vec![(EST_STAGE1_WINDOW_CYCLES, gap_len)]);
        prepared(&mut attack);
        // The burst is the longest idle-free run of accesses; the paced
        // segments around it always interleave Compute ops. Walk enough
        // ops to cover the whole prefix plus a loop iteration.
        let mut saw_idle = false;
        let mut burst_accesses = 0u64;
        let mut run = 0u64;
        for _ in 0..200_000 {
            match attack.next_op() {
                AttackOp::Access { .. } => run += 1,
                AttackOp::Clflush { .. } => {}
                AttackOp::Compute { .. } => {
                    saw_idle = true;
                    burst_accesses = burst_accesses.max(run);
                    run = 0;
                }
            }
        }
        assert!(saw_idle, "paced cover traffic must idle between pairs");
        // The post-gap paced segment opens with a pair before its first
        // idle, so that pair's two accesses extend the measured run.
        let want = RestartAwareHammer::burst_activations(gap_len) / 2 * 2;
        assert!(
            (want..=want + 4).contains(&burst_accesses),
            "the gap burst must hammer back-to-back for the whole gap: \
             got {burst_accesses}, want ~{want}"
        );
    }

    #[test]
    fn steady_state_paces_below_the_stage1_threshold() {
        let mut attack = RestartAwareHammer::new();
        prepared(&mut attack);
        // No gaps: the tape is one paced window, looped. Count accesses
        // and idle across one full loop.
        let mut misses = 0u64;
        let mut idle = 0u64;
        let first = attack.next_op();
        assert!(matches!(first, AttackOp::Access { .. }));
        misses += 1;
        loop {
            match attack.next_op() {
                AttackOp::Access { .. } => misses += 1,
                AttackOp::Clflush { .. } => {}
                AttackOp::Compute { cycles } => idle += cycles,
            }
            // The loop wraps when total time covers one window.
            let elapsed = misses * EST_ATTACK_ACCESS_CYCLES + idle;
            if elapsed >= EST_STAGE1_WINDOW_CYCLES {
                break;
            }
        }
        assert!(misses < 20_000, "paced rate {misses} must stay under 20K");
        assert!(misses >= 18_000, "paced rate {misses} suspiciously low");
    }

    #[test]
    #[should_panic(expected = "prepare the attack first")]
    fn next_op_before_prepare_panics() {
        RestartAwareHammer::new().next_op();
    }
}
