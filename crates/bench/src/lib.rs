#![warn(missing_docs)]

//! # anvil-bench
//!
//! Experiment harness for the ANVIL (ASPLOS 2016) reproduction: one binary
//! per table and figure of the paper's evaluation, plus Criterion
//! microbenchmarks of the simulator's hot paths.
//!
//! Run an experiment with, e.g.:
//!
//! ```bash
//! cargo run --release -p anvil-bench --bin table1
//! cargo run --release -p anvil-bench --bin figure3 -- --quick
//! ```
//!
//! Every binary prints the regenerated table/series on stdout and writes a
//! machine-readable record to `results/<experiment>.json`. See
//! `DESIGN.md` §4 for the experiment index and `EXPERIMENTS.md` for
//! paper-vs-measured numbers.

pub mod campaigns;
pub mod harness;
pub mod report;
pub mod selfdefense;

pub use harness::{
    detection_run, double_refresh_platform, evasion_resilience_run, false_positive_rate,
    normalized_time, normalized_time_target, resilience_run, run_cells, run_cells_checked,
    vulnerable_pair_index, windows_from_args, AttackKind, CampaignArgs, CellPanic,
    DetectionSummary, ResilienceSummary, Scale,
};
pub use report::{write_json, Table};
