//! Plain-text tables and JSON result records for the experiment binaries.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// A fixed-column text table, printed in the style of the paper's tables.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n=== {} ===", self.title);
        let line = |out: &mut String| {
            let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
            let _ = writeln!(out, "{}", "-".repeat(total));
        };
        line(&mut out);
        let _ = write!(out, "|");
        for (h, w) in self.headers.iter().zip(&widths) {
            let _ = write!(out, " {h:<w$} |");
        }
        let _ = writeln!(out);
        line(&mut out);
        for row in &self.rows {
            let _ = write!(out, "|");
            for (c, w) in row.iter().zip(&widths) {
                let _ = write!(out, " {c:<w$} |");
            }
            let _ = writeln!(out);
        }
        line(&mut out);
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Writes an experiment's machine-readable record to
/// `results/<name>.json` (next to the human-readable table), creating the
/// directory as needed. Failures are reported but non-fatal — the table on
/// stdout is the primary output.
pub fn write_json(name: &str, value: &serde_json::Value) {
    let dir = PathBuf::from("results");
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("note: could not create results/: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = fs::write(&path, s) {
                eprintln!("note: could not write {}: {e}", path.display());
            } else {
                println!("[results written to {}]", path.display());
            }
        }
        Err(e) => eprintln!("note: could not serialize results: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("=== Demo ==="));
        assert!(s.contains("| long-name | 2"));
        assert!(s.contains("| a         | 1"));
    }

    #[test]
    #[should_panic(expected = "column mismatch")]
    fn row_width_checked() {
        Table::new("t", &["a", "b"]).row(&["only-one".into()]);
    }
}
