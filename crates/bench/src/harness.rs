//! Shared experiment procedures used by the table/figure binaries.

use anvil_attacks::{Attack, ClflushFreeDoubleSided, DoubleSidedClflush, SingleSidedClflush};
use anvil_core::{AnvilConfig, Platform, PlatformConfig};
use anvil_faults::FaultScenario;
use anvil_mem::MemoryConfig;
use anvil_runtime::Engine;
use anvil_workloads::SpecBenchmark;
use serde::Serialize;

/// Time scaling for the experiment binaries: `--quick` on the command line
/// trades precision for speed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    factor: f64,
}

impl Scale {
    /// Parses the process arguments (`--quick` recognized).
    pub fn from_args() -> Self {
        let quick = std::env::args().any(|a| a == "--quick");
        Scale {
            factor: if quick { 0.35 } else { 1.0 },
        }
    }

    /// A fixed scale, for tests.
    pub fn fixed(factor: f64) -> Self {
        Scale { factor }
    }

    /// Scales a duration in ms.
    pub fn ms(&self, base: f64) -> f64 {
        base * self.factor
    }

    /// Scales an operation count.
    pub fn ops(&self, base: u64) -> u64 {
        ((base as f64) * self.factor) as u64
    }
}

/// Parses a `--windows N` override from the process arguments: the
/// number of detector windows a campaign should run, shared by every
/// campaign binary (`resilience`, `evasion`, `soak`). Returns `None`
/// when absent so each campaign applies its own default; a present flag
/// with a malformed or zero value warns on stderr (naming the bad value)
/// and also returns `None` rather than aborting the campaign.
pub fn windows_from_args() -> Option<u64> {
    CampaignArgs::from_env().windows
}

/// The command-line arguments shared by the campaign binaries (`soak`,
/// `resilience`, `evasion`, `detection_matrix`), parsed once instead of
/// each binary re-scanning `std::env::args()` ad hoc.
///
/// Recognized flags: `--quick`, `--smoke`, `--windows N`, `--seed N`,
/// `--machines N`, `--domains N`, `--threads N`,
/// `--engine per-op|event`. Unknown arguments are ignored (forward
/// compatibility with binary-specific flags). Malformed or out-of-range
/// values warn on stderr, naming the bad value, and fall back to the
/// default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignArgs {
    /// `--quick`: trade precision for speed (see [`Scale`]).
    pub quick: bool,
    /// `--smoke`: the reduced CI subset of the campaign.
    pub smoke: bool,
    /// `--windows N`: detector-window count override (`None`: campaign
    /// default).
    pub windows: Option<u64>,
    /// `--seed N`: campaign seed override (`None`: campaign default).
    pub seed: Option<u64>,
    /// `--machines N`: fleet machine count override, `1..=4096`
    /// (`None`: campaign default). Only the `fleet` binary reads it.
    pub machines: Option<u64>,
    /// `--domains N`: per-machine protection-domain count override,
    /// `1..=64` (`None`: campaign default). Only the `fleet` binary
    /// reads it.
    pub domains: Option<u64>,
    /// `--threads N`: worker threads for [`run_cells`]. Defaults to the
    /// machine's available parallelism — campaign output is byte-for-byte
    /// independent of this value, so there is no reproducibility reason to
    /// pin it.
    pub threads: usize,
    /// `--engine per-op|event`: which simulation core drives
    /// window-granular campaigns (default: `event`). Campaign output is
    /// byte-for-byte independent of the engine — the flag exists so CI can
    /// prove it by diffing both — and is therefore never serialized into
    /// result records.
    pub engine: Engine,
}

impl CampaignArgs {
    /// Parses the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (exposed for tests).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let args: Vec<String> = args.into_iter().collect();
        let value_of = |flag: &str| {
            args.iter()
                .position(|a| a == flag)
                .map(|i| args.get(i + 1).cloned().unwrap_or_default())
        };
        let windows = value_of("--windows").and_then(|raw| match raw.parse::<u64>() {
            Ok(n) if n > 0 => Some(n),
            _ => {
                eprintln!(
                    "warning: ignoring `--windows {raw}`: expected a positive integer, \
                     using the campaign default"
                );
                None
            }
        });
        let seed = value_of("--seed").and_then(|raw| {
            raw.parse::<u64>().map_or_else(
                |_| {
                    eprintln!(
                        "warning: ignoring `--seed {raw}`: expected an unsigned integer, \
                         using the campaign default"
                    );
                    None
                },
                Some,
            )
        });
        // Bounded counts parse with an explicit range so a fat-fingered
        // `--machines 48000` warns instead of silently launching a
        // campaign three orders of magnitude larger than intended.
        let bounded = |flag: &'static str, lo: u64, hi: u64| {
            value_of(flag).and_then(|raw| match raw.parse::<u64>() {
                Ok(n) if (lo..=hi).contains(&n) => Some(n),
                _ => {
                    eprintln!(
                        "warning: ignoring `{flag} {raw}`: expected an integer in \
                         {lo}..={hi}, using the campaign default"
                    );
                    None
                }
            })
        };
        let machines = bounded("--machines", 1, 4_096);
        let domains = bounded("--domains", 1, 64);
        let threads =
            value_of("--threads").map_or_else(default_threads, |raw| match raw.parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => {
                    eprintln!(
                        "warning: ignoring `--threads {raw}`: expected a positive integer, \
                         using available parallelism"
                    );
                    default_threads()
                }
            });
        let engine = value_of("--engine").map_or(Engine::default(), |raw| {
            Engine::parse(&raw).unwrap_or_else(|| {
                eprintln!(
                    "warning: ignoring `--engine {raw}`: expected `per-op` or `event`, \
                     using the default (event)"
                );
                Engine::default()
            })
        });
        CampaignArgs {
            quick: args.iter().any(|a| a == "--quick"),
            smoke: args.iter().any(|a| a == "--smoke"),
            windows,
            seed,
            machines,
            domains,
            threads,
            engine,
        }
    }

    /// The campaign seed: the `--seed` override or `default`.
    pub fn seed_or(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }

    /// The time scale implied by `--quick`.
    pub fn scale(&self) -> Scale {
        Scale::fixed(if self.quick { 0.35 } else { 1.0 })
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// A campaign cell that panicked instead of returning a result.
///
/// [`run_cells_checked`] converts each cell's panic into one of these so
/// a single bad cell (a fuzzer-generated scenario tripping an internal
/// assertion, say) surfaces as data in the collected results instead of
/// aborting the whole campaign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CellPanic {
    /// Submission-order index of the cell that panicked.
    pub index: usize,
    /// The panic payload, if it was a string (the overwhelmingly common
    /// case: `panic!`, `assert!`, `expect`).
    pub message: String,
}

impl std::fmt::Display for CellPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cell {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for CellPanic {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs independent campaign cells on up to `threads` worker threads and
/// returns their results **in cell order** — the output is byte-for-byte
/// identical to running the cells serially, regardless of thread count or
/// scheduling. A panicking cell yields `Err(CellPanic)` in its slot;
/// every other cell still runs and returns normally.
///
/// Determinism contract: each cell must be a pure function of its
/// captured inputs (every campaign cell builds its own `Platform` from
/// the campaign seed and shares no mutable state), so the only
/// thread-sensitive effect is *when* a cell runs, never *what* it
/// computes. Cells are handed out from an atomic counter in index order
/// and each result lands in its own slot.
///
/// Uses `std::thread::scope` — no thread-pool dependency, nothing
/// outlives the call.
pub fn run_cells_checked<T, F>(threads: usize, cells: Vec<F>) -> Vec<Result<T, CellPanic>>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};
    // AssertUnwindSafe: a cell owns everything it touches (the
    // determinism contract above), so a unwind cannot leave shared state
    // half-mutated for other cells to observe.
    let guarded = |i: usize, f: F| {
        catch_unwind(AssertUnwindSafe(f)).map_err(|payload| CellPanic {
            index: i,
            message: panic_message(payload),
        })
    };
    let n = cells.len();
    if threads.max(1) == 1 || n <= 1 {
        return cells
            .into_iter()
            .enumerate()
            .map(|(i, f)| guarded(i, f))
            .collect();
    }
    let workers = threads.min(n);
    let jobs: Vec<std::sync::Mutex<Option<F>>> = cells
        .into_iter()
        .map(|f| std::sync::Mutex::new(Some(f)))
        .collect();
    type Slot<T> = std::sync::Mutex<Option<Result<T, CellPanic>>>;
    let slots: Vec<Slot<T>> = (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = jobs[i]
                    .lock()
                    .expect("job mutex poisoned")
                    .take()
                    .expect("each job is taken exactly once");
                let result = guarded(i, job);
                *slots[i].lock().expect("slot mutex poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot mutex poisoned")
                .expect("every job ran to completion")
        })
        .collect()
}

/// [`run_cells_checked`] for campaigns whose cells are trusted not to
/// panic: unwraps each slot, re-raising the first cell panic (with its
/// index and message) after every other cell has finished.
pub fn run_cells<T, F>(threads: usize, cells: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    run_cells_checked(threads, cells)
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(p) => panic!("{p}"),
        })
        .collect()
}

/// The three attacks of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum AttackKind {
    /// Single-sided with CLFLUSH.
    SingleSided,
    /// Double-sided with CLFLUSH.
    DoubleSided,
    /// Double-sided without CLFLUSH (the paper's new attack).
    ClflushFree,
}

impl AttackKind {
    /// All three, in Table 1 order.
    pub fn all() -> [AttackKind; 3] {
        [
            AttackKind::SingleSided,
            AttackKind::DoubleSided,
            AttackKind::ClflushFree,
        ]
    }

    /// Display name matching Table 1's rows.
    pub fn label(&self) -> &'static str {
        match self {
            AttackKind::SingleSided => "Single-Sided with CLFLUSH",
            AttackKind::DoubleSided => "Double-Sided with CLFLUSH",
            AttackKind::ClflushFree => "Double-Sided without CLFLUSH",
        }
    }

    /// Builds the attack hammering the `pair`-th discovered aggressor
    /// candidate.
    pub fn build(&self, pair: usize) -> Box<dyn Attack> {
        match self {
            AttackKind::SingleSided => Box::new(SingleSidedClflush::new().with_pair_index(pair)),
            AttackKind::DoubleSided => Box::new(DoubleSidedClflush::new().with_pair_index(pair)),
            AttackKind::ClflushFree => {
                Box::new(ClflushFreeDoubleSided::new().with_pair_index(pair))
            }
        }
    }
}

/// Finds a pair index whose victim row contains a minimum-threshold cell,
/// the way a real attacker profiles a module before the headline run
/// (Seaborn's rowhammer-test does exactly this scan). Returns `None` if no
/// candidate among `max` is vulnerable.
pub fn vulnerable_pair_index(kind: AttackKind, memory: MemoryConfig, max: usize) -> Option<usize> {
    for i in 0..max {
        let mut probe = Platform::new(PlatformConfig {
            memory,
            ..PlatformConfig::unprotected()
        });
        let Ok(pid) = probe.add_attack(kind.build(i)) else {
            return None;
        };
        let (_, victims) = probe.attack_truth(pid);
        let dram = probe.sys().dram();
        if victims
            .iter()
            .any(|&v| dram.is_vulnerable_row(dram.mapping().location_of(v).row_id()))
        {
            return Some(i);
        }
    }
    None
}

/// Result of one detection experiment (a Table 3 cell).
#[derive(Debug, Clone, Serialize)]
pub struct DetectionSummary {
    /// Attack label.
    pub attack: String,
    /// Whether background load was running.
    pub heavy_load: bool,
    /// Time to the first detection, ms (None: never detected).
    pub detect_ms: Option<f64>,
    /// Average selective refreshes per 64 ms window.
    pub refreshes_per_window: f64,
    /// Bit flips observed (must be 0 under ANVIL).
    pub flips: u64,
}

/// Runs one attack under ANVIL for `ms`, with or without the paper's
/// memory-intensive background trio, and summarizes the detection.
pub fn detection_run(
    kind: AttackKind,
    anvil: AnvilConfig,
    heavy_load: bool,
    ms: f64,
    seed: u64,
) -> DetectionSummary {
    let mut p = Platform::new(PlatformConfig::with_anvil(anvil));
    if heavy_load {
        for b in SpecBenchmark::memory_intensive() {
            p.add_workload(b.build(seed)).expect("arena fits");
        }
    }
    let pair = vulnerable_pair_index(kind, MemoryConfig::paper_platform(), 24).unwrap_or(0);
    p.add_attack(kind.build(pair))
        .expect("attack prepares on open platform");
    p.run_ms(ms).expect("run completes");
    DetectionSummary {
        attack: kind.label().to_string(),
        heavy_load,
        detect_ms: p.first_detection_ms(),
        refreshes_per_window: p.refreshes_per_window(),
        flips: p.total_flips(),
    }
}

/// Normalized execution time of `bench` under `config`, relative to the
/// unprotected platform, over `ops` operations (a Figure 3/4 bar).
pub fn normalized_time(bench: SpecBenchmark, config: PlatformConfig, ops: u64, seed: u64) -> f64 {
    let run = |cfg: PlatformConfig| {
        let mut p = Platform::new(cfg);
        let pid = p.add_workload(bench.build(seed)).expect("arena fits");
        p.run_core_ops(pid, ops).expect("run completes");
        p.core_stats(pid).expect("just added").cycles as f64
    };
    let base = run(PlatformConfig {
        anvil: None,
        memory: MemoryConfig::paper_platform(),
        ..config
    });
    run(config) / base
}

/// Like [`normalized_time`], but sizes the run so the *baseline* executes
/// for about `target_ms` of simulated time regardless of the benchmark's
/// per-op cost — fast-op benchmarks otherwise finish before the detector
/// has run enough windows to show its overhead.
pub fn normalized_time_target(
    bench: SpecBenchmark,
    config: PlatformConfig,
    target_ms: f64,
    seed: u64,
) -> f64 {
    // Calibrate ops/ms on a short unprotected run.
    let mut probe = Platform::new(PlatformConfig::unprotected());
    let pid = probe.add_workload(bench.build(seed)).expect("arena fits");
    probe.run_core_ops(pid, 50_000).expect("run completes");
    let per_op = probe.core_stats(pid).expect("just added").cycles as f64 / 50_000.0;
    let clock = probe.config().memory.clock;
    let ops = ((clock.ms_to_cycles(target_ms) as f64) / per_op) as u64;
    normalized_time(bench, config, ops.max(50_000), seed)
}

/// False-positive refresh rate (refreshes/second) of `bench` running alone
/// under ANVIL for `ms` (a Table 4/5 cell).
pub fn false_positive_rate(bench: SpecBenchmark, anvil: AnvilConfig, ms: f64, seed: u64) -> f64 {
    let mut p = Platform::new(PlatformConfig::with_anvil(anvil));
    p.add_workload(bench.build(seed)).expect("arena fits");
    p.run_ms(ms).expect("run completes");
    p.refreshes_per_second()
}

/// The paper's double-refresh comparison platform.
pub fn double_refresh_platform() -> PlatformConfig {
    let mut c = PlatformConfig::unprotected();
    c.memory.dram = c.memory.dram.with_doubled_refresh();
    c
}

/// Result of one fault-campaign cell (the resilience bench).
#[derive(Debug, Clone, Serialize)]
pub struct ResilienceSummary {
    /// Fault scenario name.
    pub scenario: String,
    /// Attack label.
    pub attack: String,
    /// Fault intensity the scenario was scaled by.
    pub intensity: f64,
    /// Time to the first detection, ms (None: never detected).
    pub detect_ms: Option<f64>,
    /// Bit flips observed (must be 0 for the cell to count as protected).
    pub flips: u64,
    /// Stage-2 windows the degraded-protection fallback handled.
    pub degraded_windows: u64,
    /// Whole banks blanket-refreshed by degraded mode.
    pub bank_refreshes: u64,
    /// Detector services that ran past their deadline.
    pub missed_deadlines: u64,
    /// Stage-2 samples lost to the injected substrate.
    pub samples_lost: u64,
    /// Stage-2 samples whose translation failed.
    pub samples_unresolved: u64,
    /// Whether ANVIL protected the run: no flips, and either a detection
    /// or a visible degraded-mode engagement stood in for one.
    pub protected: bool,
}

/// Runs one attack under ANVIL with `scenario` injected at `intensity`,
/// and summarizes protection and degraded-mode engagement.
pub fn resilience_run(
    scenario: FaultScenario,
    intensity: f64,
    kind: AttackKind,
    anvil: AnvilConfig,
    ms: f64,
    seed: u64,
) -> ResilienceSummary {
    let plan = scenario.plan(intensity, seed);
    let mut p = Platform::new(PlatformConfig::with_anvil(anvil).with_faults(plan));
    let pair = vulnerable_pair_index(kind, MemoryConfig::paper_platform(), 24).unwrap_or(0);
    p.add_attack(kind.build(pair))
        .expect("attack prepares on open platform");
    p.run_ms(ms).expect("run completes");
    let stats = *p.detector_stats().expect("anvil loaded");
    let detect_ms = p.first_detection_ms();
    let flips = p.total_flips();
    ResilienceSummary {
        scenario: scenario.name().to_string(),
        attack: kind.label().to_string(),
        intensity,
        detect_ms,
        flips,
        degraded_windows: stats.degraded_windows,
        bank_refreshes: stats.bank_refreshes,
        missed_deadlines: stats.missed_deadlines,
        samples_lost: stats.samples_lost,
        samples_unresolved: stats.samples_unresolved,
        protected: flips == 0 && (detect_ms.is_some() || stats.degraded_windows > 0),
    }
}

/// Runs a prebuilt adaptive adversary (from `anvil-adversary`) under
/// `anvil` on future DRAM (half the paper's flip threshold) with
/// `scenario` injected — one fault × evasion cross-matrix cell. Unlike
/// [`resilience_run`] the attack chooses its own aggressor layout, so no
/// vulnerable-pair scan happens here; future DRAM makes every fourth row
/// vulnerable, which the adversaries' templating already exploits.
pub fn evasion_resilience_run(
    scenario: FaultScenario,
    intensity: f64,
    attack: Box<dyn Attack>,
    anvil: AnvilConfig,
    ms: f64,
    seed: u64,
) -> ResilienceSummary {
    let name = attack.name().to_string();
    let plan = scenario.plan(intensity, seed);
    let mut pc = PlatformConfig::with_anvil(anvil).with_faults(plan);
    pc.memory.dram.disturbance = anvil_dram::DisturbanceConfig::future_half_threshold();
    pc.memory.dram.seed ^= seed;
    let mut p = Platform::new(pc);
    p.add_attack(attack)
        .expect("attack prepares on open platform");
    p.run_ms(ms).expect("run completes");
    let stats = *p.detector_stats().expect("anvil loaded");
    let detect_ms = p.first_detection_ms();
    let flips = p.total_flips();
    ResilienceSummary {
        scenario: scenario.name().to_string(),
        attack: name,
        intensity,
        detect_ms,
        flips,
        degraded_windows: stats.degraded_windows,
        bank_refreshes: stats.bank_refreshes,
        missed_deadlines: stats.missed_deadlines,
        samples_lost: stats.samples_lost,
        samples_unresolved: stats.samples_unresolved,
        protected: flips == 0 && (detect_ms.is_some() || stats.degraded_windows > 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_and_math() {
        let s = Scale::fixed(0.5);
        assert_eq!(s.ms(100.0), 50.0);
        assert_eq!(s.ops(1000), 500);
    }

    #[test]
    fn attack_kinds_cover_table1() {
        assert_eq!(AttackKind::all().len(), 3);
        assert!(AttackKind::ClflushFree.label().contains("without"));
    }

    #[test]
    fn vulnerable_pair_search_finds_one() {
        let idx =
            vulnerable_pair_index(AttackKind::DoubleSided, MemoryConfig::paper_platform(), 24);
        assert!(
            idx.is_some(),
            "1-in-4 rows vulnerable: 24 candidates suffice"
        );
    }

    #[test]
    fn checked_cells_capture_panics_without_aborting_neighbors() {
        // Silence the default hook's backtrace spam for the expected
        // panics; restore it afterwards so other tests report normally.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        for threads in [1usize, 4] {
            let cells: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..6u64)
                .map(|i| {
                    Box::new(move || {
                        assert!(i % 3 != 1, "cell {i} trips its assertion");
                        i * 10
                    }) as Box<dyn FnOnce() -> u64 + Send>
                })
                .collect();
            let results = run_cells_checked(threads, cells);
            assert_eq!(results.len(), 6);
            for (i, r) in results.iter().enumerate() {
                if i % 3 == 1 {
                    let p = r.as_ref().unwrap_err();
                    assert_eq!(p.index, i);
                    assert!(p.message.contains("trips its assertion"), "{p}");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i as u64 * 10);
                }
            }
        }
        std::panic::set_hook(hook);
    }

    #[test]
    fn double_refresh_halves_the_period() {
        let base = PlatformConfig::unprotected();
        let dbl = double_refresh_platform();
        assert_eq!(
            dbl.memory.dram.timing.refresh_period * 2,
            base.memory.dram.timing.refresh_period
        );
    }
}
