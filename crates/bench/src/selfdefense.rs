//! The self-defense campaign engine: ANVIL's own state under attack.
//!
//! Every other campaign assumes the detector's bookkeeping is trustworthy
//! and attacks the *data* it protects. This one closes the loop that
//! defense retrospectives call a standing weakness of software defenses:
//! ANVIL's carry accumulator, jitter stream, window scale, and re-arm
//! depth live in DRAM rows like everything else, so a next-generation
//! attacker can hammer the defense's memory. The campaign runs the same
//! supervised detector twice per trial:
//!
//! * **unguarded** — the historical baseline: blind replica-0 reads, no
//!   scrubbing, and the naive struct layout that co-locates all three
//!   replicas in one row ([`StateLayout::Naive`]). The attacker's flips
//!   reach the live word directly.
//! * **guarded** — the self-defending detector: checksummed triple
//!   replicas placed [`REPLICA_ROW_STRIDE`](anvil_mem::REPLICA_ROW_STRIDE)
//!   rows apart ([`StateLayout::Interleaved`]), majority-vote repair on
//!   every read, an incremental supervisor scrub, and escalation to a
//!   cold checkpoint restart when no replica can be trusted.
//!
//! # The attack
//!
//! The adversary is [`StateTargetingHammer`] driving a double-sided pair
//! around the stalest state row. It paces at [`PACED_ACTIVATIONS`] per
//! window — low enough that even at the widest jitter draw the
//! rate-normalized miss count stays under the stage-1 threshold, so the
//! memoryless trip *never* fires and every detection must flow through
//! the EWMA carry. That is the point: the carry is exactly the word the
//! attacker flips. The DIMM is one the attacker chose by templating
//! (Flip-Feng-Shui style): the weak cell adjacent to the state rows sits
//! in the carry replica's top exponent bit, so each disturbance flip
//! collapses the accumulated suspicion to ~0 instead of inflating it
//! (an inflated carry would hand the detector a detection). The weak
//! cell's threshold is drawn from the sub-envelope tail of the fleet
//! campaign's population model — a cell the *data-path* guarantee
//! envelope can never cover, which is why the state needs replication
//! and scrubbing rather than detection alone.
//!
//! Against the unguarded baseline the arithmetic is decisive: one row
//! holds all replicas, the weak cell flips every couple of windows, and
//! the carry never survives long enough to trip — the detector goes
//! silent while the pair's single-sided splash accumulates on a
//! co-located data victim until it flips, undeclared. Against the
//! guarded detector the same flips land on one replica at a time (the
//! interleaved stride puts the others outside any blast radius), majority
//! vote out-votes them, and every corruption surfaces as a typed
//! repaired-or-escalated record. Every [`CORRELATED_EVERY`] windows the
//! attacker spends two extra aggressor pairs to land the same flip on
//! all three replica rows inside one scrub interval — the correlated
//! damage no majority scheme can repair — and the supervisor escalates
//! to a cold restart from the last good checkpoint, with the declared
//! downtime gap charged against the envelope's downtime budget.

use anvil_adversary::StateTargetingHammer;
use anvil_cache::HitLevel;
use anvil_core::{
    AnvilConfig, DetectorStage, EnvelopeParams, GuaranteeEnvelope, ServiceOutcome, StateSite,
};
use anvil_dram::{AddressMapping, BankId, CpuClock, Cycle, DramGeometry, DramLocation, RowId};
use anvil_faults::{hash64, FaultRng};
use anvil_mem::{AccessKind, AccessOutcome, StateLayout, StateRowMap};
use anvil_pmu::{EventKind, Pmu, RetiredOp};
use anvil_runtime::{RuntimeConfig, SupervisedOutcome, Supervisor};
use serde::Serialize;
use std::collections::BTreeSet;

/// Paced activations per stage-1 window. Sized so the *raw* normalized
/// miss count can never trip stage 1 even at the widest jitter draw
/// (`(11_500 + 3_000) / 0.75 < 20_000`): all detection pressure flows
/// through the EWMA carry the attacker is corrupting.
pub const PACED_ACTIVATIONS: u64 = 11_500;

/// Weak-cell flip threshold of the state rows: the sub-envelope tail of
/// the weak-cell population (compare the fleet campaign's sub-envelope
/// DIMMs). Below the stealth pace, so the targeted replica's carry word
/// flips in *every* window — the live value never survives to the trip
/// test. (The word is re-sealed by the detector's own store each window,
/// re-charging the cell; within a window the cell flips at most once —
/// continued disturbance holds it flipped rather than toggling it back.)
pub const STATE_FLIP_THRESHOLD: u64 = 9_000;

/// Flip threshold of the co-located data victim: a weak but in-envelope
/// cell, so the guarded detector's selective refreshes can protect it.
pub const DATA_FLIP_THRESHOLD: u64 = 180_000;

/// Windows the hammer dwells on one state row before the tie-break
/// rotates it: long enough for the suspicion ledger to accumulate
/// conviction support against the pair.
const TARGET_DWELL: u64 = 8;

/// Period (windows) of the correlated strike: two extra aggressor pairs
/// land the weak-cell flip on every replica row inside one scrub
/// interval, defeating majority vote and forcing an escalation.
pub const CORRELATED_EVERY: u64 = 48;

/// The templated weak cell: state cell 0 is the stage-1 carry.
const WEAK_CELL: usize = 0;

/// The templated weak bit: the carry's top exponent bit. Flipping it on
/// any accumulated value collapses the evidence toward zero; the bits
/// that would *inflate* the carry (and gift the detector a detection)
/// stay intact, as a templating attacker would arrange.
const WEAK_BIT: u8 = 62;

/// The correlated strike's bit: the replica rows' weak cells do not all
/// sit in the same bit lane, so the three-row strike lands one lane
/// over. Distinct from [`WEAK_BIT`] so a paced flip already resident in
/// one replica cannot be cancelled by the strike — the strike always
/// leaves *every* replica invalid, which is the unrepairable case the
/// escalation policy exists for.
const STRIKE_BIT: u8 = 61;

/// Ops materialized per stage-2 window (mirrors the soak/fleet engines).
const SAMPLED_OPS: u64 = 120;
/// Attacker pid in the simulated traffic mix.
const ATTACKER_PID: u32 = 7;
/// Benign streaming pid.
const BENIGN_PID: u32 = 3;
/// Injector stream tag for benign traffic (matching the fleet engine).
const TRAFFIC_SITE: u64 = 6;
/// Bank and base row where the kernel module's static state landed.
const STATE_BANK: BankId = BankId(3);
const STATE_BASE_ROW: u32 = 10_000;

/// What one (arm, trial) cell reports.
#[derive(Debug, Clone, Serialize)]
pub struct ArmCell {
    /// `"unguarded"` or `"guarded"`.
    pub arm: &'static str,
    /// Trial index (each trial reseeds the phase stream and traffic).
    pub trial: u64,
    /// State placement: `"naive"` (unguarded) or `"interleaved"`.
    pub layout: &'static str,
    /// Windows simulated.
    pub windows: u64,
    /// Supervised service calls that completed.
    pub services: u64,
    /// Stage-1 threshold crossings (all via the carry, by construction).
    pub threshold_crossings: u64,
    /// Stage-2 windows that flagged at least one aggressor.
    pub detections: u64,
    /// Victim rows selectively refreshed.
    pub selective_refreshes: u64,
    /// Weak-cell flips the attacker landed on state replicas.
    pub state_flips_injected: u64,
    /// Correlated three-replica strikes (guarded arm only).
    pub correlated_strikes: u64,
    /// Drained corruption records with `repaired: true`.
    pub declared_repaired: u64,
    /// Drained corruption records with `repaired: false` (escalations).
    pub declared_escalated: u64,
    /// Injected sites never surfaced by any scrub or guarded read — the
    /// corruption the detector computed with but never declared. The
    /// guarded gate: must be zero.
    pub silently_absorbed_sites: u64,
    /// Supervisor restarts (all escalation-driven here).
    pub restarts: u64,
    /// Restarts that fell back to a cold start.
    pub cold_starts: u64,
    /// Supervisor counter: corruptions repaired in place.
    pub state_repairs: u64,
    /// Supervisor counter: corruptions escalated to a restart.
    pub state_escalations: u64,
    /// Largest declared recovery gap, in cycles.
    pub worst_recovery_gap: Cycle,
    /// The envelope-derived downtime budget, in cycles.
    pub downtime_budget: Cycle,
    /// Whether every recovery gap stayed inside the budget.
    pub within_budget: bool,
    /// Data-victim flips charged while the arm claimed full protection.
    pub undeclared_flips: u64,
    /// Data-victim flips inside declared recovery gaps.
    pub exposure_flips: u64,
}

/// Runs one campaign cell: one supervised detector lifetime under the
/// state-targeting attack. A pure function of `(seed, windows, guarded,
/// trial)`, so cells fan out across threads without changing the record.
#[allow(clippy::too_many_lines)]
#[must_use]
pub fn run_arm(seed: u64, windows: u64, guarded: bool, trial: u64) -> ArmCell {
    let cell_seed = hash64(seed ^ (trial << 1 | u64::from(guarded)).wrapping_mul(0x9E37_79B9));
    let clock = CpuClock::SANDY_BRIDGE_2_6GHZ;
    let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
    let params = EnvelopeParams::paper_platform().with_flip_threshold(DATA_FLIP_THRESHOLD);
    let mut anvil = AnvilConfig::hardened();
    anvil.hardening.phase_seed = cell_seed;
    let envelope = GuaranteeEnvelope::audit(&anvil, &clock, &params);
    let downtime_budget = envelope.downtime_budget(params.attack_access_cycles);
    let mut pmu = Pmu::new(anvil.sampling);
    let runtime = RuntimeConfig {
        guard_state: guarded,
        jitter_seed: cell_seed,
        ..RuntimeConfig::default()
    };
    let mut sup = Supervisor::new(anvil, runtime, clock, params.refresh_period, 0, &mut pmu);

    let layout = if guarded {
        StateLayout::Interleaved
    } else {
        StateLayout::Naive
    };
    let map = StateRowMap::new(
        layout,
        STATE_BANK,
        STATE_BASE_ROW,
        sup.state_cell_count().min(4),
    );
    let rows = map.state_rows();
    let hammer = StateTargetingHammer::new().with_paced_activations(PACED_ACTIVATIONS);
    let mut traffic = FaultRng::new(cell_seed).fork(TRAFFIC_SITE);
    // The double-sided pair around the base state row splashes
    // single-sided disturbance two rows out: the co-located data victim.
    let data_victim = RowId::new(STATE_BANK, STATE_BASE_ROW + 2);

    let mut state_evidence = vec![0u64; rows.len()];
    let mut data_evidence = 0u64;
    let mut outstanding: BTreeSet<StateSite> = BTreeSet::new();
    // Replicas of the carry currently holding an un-rewritten weak-bit
    // flip. A flipped cell stays flipped until the word is re-sealed:
    // continued disturbance cannot toggle it back, so injection skips
    // replicas already flipped. The mask clears when the cell is
    // rewritten — a declared scrub/read repair (guarded), a restart
    // rebuild, or the unguarded detector's own blind store.
    let mut flipped_mask: u8 = 0;
    let scrub_slices = runtime.scrub_slices.max(1);

    let (mut injected, mut correlated) = (0u64, 0u64);
    let (mut declared_repaired, mut declared_escalated) = (0u64, 0u64);
    let (mut crossings, mut detections, mut refreshes_applied) = (0u64, 0u64, 0u64);
    let (mut undeclared_flips, mut exposure_flips) = (0u64, 0u64);
    let mut last_serviced: Cycle = 0;

    for w in 0..windows {
        // The hammer's view of scrub neglect: guarded, the incremental
        // scrub re-verifies every row each rotation, so ages cycle below
        // the lock threshold; unguarded, nothing ever scrubs and the
        // ages only grow. Burst-rate lock-on is withheld while the
        // detector is serviced — a burst would trip the memoryless raw
        // threshold and hand the defense a detection — and spent inside
        // recovery gaps instead.
        let ages: Vec<u64> = if guarded {
            vec![w % scrub_slices; rows.len()]
        } else {
            vec![w + 1; rows.len()]
        };
        let t = hammer
            .target_at(w / TARGET_DWELL, &ages)
            .expect("state rows exist");
        let paced = hammer.paced_activations();
        state_evidence[t] += paced;
        if rows[t].row == STATE_BASE_ROW {
            data_evidence += paced / 2;
        }
        if state_evidence[t] >= STATE_FLIP_THRESHOLD {
            state_evidence[t] %= STATE_FLIP_THRESHOLD;
            let mask = map
                .cells_in(rows[t])
                .iter()
                .find(|&&(c, _)| c == WEAK_CELL)
                .map_or(0, |&(_, m)| m);
            let fresh = mask & !flipped_mask;
            if fresh != 0 {
                if let Some(site) = sup.corrupt_state_cell(WEAK_CELL, fresh, WEAK_BIT) {
                    injected += 1;
                    outstanding.insert(site);
                    flipped_mask |= fresh;
                }
            }
        }
        if guarded && w > 0 && w % CORRELATED_EVERY == 0 {
            // Two extra aggressor pairs reach the other replica rows
            // inside the same scrub interval: correlated damage no
            // majority can repair.
            if let Some(site) = sup.corrupt_state_cell(WEAK_CELL, 0b111, STRIKE_BIT) {
                injected += 1;
                correlated += 1;
                outstanding.insert(site);
            }
        }

        let benign = 200 + traffic.below(2_801);
        let deadline = sup.deadline();
        let aggressors = [
            mapping.address_of(DramLocation {
                bank: rows[t].bank,
                row: rows[t].row - 1,
                col: 0,
            }),
            mapping.address_of(DramLocation {
                bank: rows[t].bank,
                row: rows[t].row + 1,
                col: 0,
            }),
        ];
        if sup.detector().stage() == DetectorStage::Sampling {
            let span = deadline.saturating_sub(last_serviced).max(SAMPLED_OPS + 1);
            for i in 0..SAMPLED_OPS {
                let ts = last_serviced + span * (i + 1) / (SAMPLED_OPS + 1);
                let op = if i % 16 == 15 {
                    dram_read(traffic.below(1 << 30) & !63, BENIGN_PID)
                } else {
                    dram_read(aggressors[(i % 2) as usize], ATTACKER_PID)
                };
                pmu.observe_at(&op, ts);
            }
            bulk_misses(
                &mut pmu,
                (paced + benign).saturating_sub(SAMPLED_OPS),
                deadline.saturating_sub(1),
            );
        } else {
            bulk_misses(&mut pmu, paced + benign, deadline.saturating_sub(1));
        }

        match sup.service(deadline, &mut pmu, &mapping, &mut |_, v| Some(v)) {
            Ok(SupervisedOutcome::Serviced {
                outcome,
                serviced_at,
            }) => {
                last_serviced = serviced_at;
                match outcome {
                    ServiceOutcome::Quiet { .. } => {}
                    ServiceOutcome::Armed { .. } => crossings += 1,
                    ServiceOutcome::Analyzed {
                        report, refreshes, ..
                    } => {
                        if report.detected() {
                            detections += 1;
                        }
                        refreshes_applied += refreshes.len() as u64;
                        for (row, _) in &refreshes {
                            for (i, r) in rows.iter().enumerate() {
                                if row == r {
                                    state_evidence[i] = 0;
                                }
                            }
                            if *row == data_victim {
                                data_evidence = 0;
                            }
                        }
                    }
                    ServiceOutcome::Degraded {
                        report,
                        refreshes,
                        banks,
                        ..
                    } => {
                        if report.detected() {
                            detections += 1;
                        }
                        refreshes_applied += refreshes.len() as u64;
                        let bank_hit = banks.contains(&STATE_BANK);
                        for (row, _) in &refreshes {
                            for (i, r) in rows.iter().enumerate() {
                                if row == r {
                                    state_evidence[i] = 0;
                                }
                            }
                            if *row == data_victim {
                                data_evidence = 0;
                            }
                        }
                        if bank_hit {
                            state_evidence.fill(0);
                            data_evidence = 0;
                        }
                    }
                }
            }
            Ok(SupervisedOutcome::Restarted(recovery)) => {
                last_serviced = recovery.resumed_at;
                // The restart rebuilt (re-sealed) every state cell.
                flipped_mask = 0;
                // The attacker bursts full-rate into the declared
                // downtime gap; the recovery blanket refresh then clears
                // the accumulated disturbance, but the burst's state-row
                // charge carries into the next window's flip test.
                let burst = StateTargetingHammer::gap_activations(recovery.gap);
                data_evidence += burst;
                if data_evidence >= DATA_FLIP_THRESHOLD {
                    exposure_flips += data_evidence / DATA_FLIP_THRESHOLD;
                }
                data_evidence = 0;
                state_evidence[t] += burst;
            }
            Err(_) => break,
        }

        for c in sup.drain_state_corruptions() {
            if c.repaired {
                declared_repaired += 1;
            } else {
                declared_escalated += 1;
            }
            if c.site == StateSite::Carry {
                // The scrub that produced this record re-sealed the cell.
                flipped_mask = 0;
            }
            outstanding.remove(&c.site);
        }
        if !guarded {
            // The blind detector overwrote its carry with a freshly
            // computed (corrupt-derived) value this window, re-charging
            // the weak cell without ever declaring what it read.
            flipped_mask = 0;
        }
        if data_evidence >= DATA_FLIP_THRESHOLD {
            undeclared_flips += data_evidence / DATA_FLIP_THRESHOLD;
            data_evidence %= DATA_FLIP_THRESHOLD;
        }
    }

    // Teardown sweep: anything the incremental scrub had not reached yet
    // is declared now; whatever remains outstanding was silently
    // absorbed (the unguarded baseline absorbs everything).
    for c in sup.scrub_state_final() {
        if c.repaired {
            declared_repaired += 1;
        } else {
            declared_escalated += 1;
        }
        outstanding.remove(&c.site);
    }
    let stats = *sup.stats();
    ArmCell {
        arm: if guarded { "guarded" } else { "unguarded" },
        trial,
        layout: match layout {
            StateLayout::Naive => "naive",
            StateLayout::Interleaved => "interleaved",
        },
        windows,
        services: stats.services,
        threshold_crossings: crossings,
        detections,
        selective_refreshes: refreshes_applied,
        state_flips_injected: injected,
        correlated_strikes: correlated,
        declared_repaired,
        declared_escalated,
        silently_absorbed_sites: outstanding.len() as u64,
        restarts: stats.restarts,
        cold_starts: stats.cold_starts,
        state_repairs: stats.state_repairs,
        state_escalations: stats.state_escalations,
        worst_recovery_gap: stats.worst_recovery_gap,
        downtime_budget,
        within_budget: stats.worst_recovery_gap <= downtime_budget,
        undeclared_flips,
        exposure_flips,
    }
}

/// A DRAM-sourced read the PMU can sample (mirrors the soak and fleet
/// engines): identity-mapped, with a latency above the row-miss cutoff.
fn dram_read(paddr: u64, pid: u32) -> RetiredOp {
    RetiredOp {
        vaddr: paddr,
        pid,
        outcome: AccessOutcome {
            paddr,
            kind: AccessKind::Read,
            level: HitLevel::Memory,
            advance: 184,
            dram: None,
        },
    }
}

/// Bulk-charges `n` LLC-missing loads to both stage-1 counters at `t`.
fn bulk_misses(pmu: &mut Pmu, n: u64, t: Cycle) {
    pmu.counter_mut(EventKind::LongestLatCacheMiss).add(n, t);
    pmu.counter_mut(EventKind::MemLoadUopsRetiredLlcMiss)
        .add(n, t);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stealth_pace_cannot_raw_trip_at_the_widest_jitter_draw() {
        // The campaign's suppression argument: paced + maximum benign
        // traffic, normalized by the narrowest window scale, stays under
        // the stage-1 threshold — every detection must come via carry.
        let cfg = AnvilConfig::hardened();
        let worst = (PACED_ACTIVATIONS + 3_000) as f64 / (1.0 - cfg.hardening.phase_jitter);
        assert!(worst < cfg.llc_miss_threshold as f64, "worst {worst}");
    }

    #[test]
    fn the_guarded_arm_survives_what_blinds_the_unguarded_arm() {
        let unguarded = run_arm(0xD0_0D, 120, false, 0);
        let guarded = run_arm(0xD0_0D, 120, true, 0);
        assert!(
            guarded.detections > unguarded.detections,
            "guarded {} vs unguarded {}",
            guarded.detections,
            unguarded.detections
        );
        assert_eq!(guarded.undeclared_flips, 0);
        assert_eq!(guarded.silently_absorbed_sites, 0);
        assert!(guarded.declared_repaired > 0);
        assert!(guarded.within_budget);
        // The baseline never declares anything: its flips are absorbed.
        assert_eq!(unguarded.declared_repaired, 0);
        assert!(unguarded.silently_absorbed_sites > 0);
        assert!(unguarded.state_flips_injected > 0);
    }

    #[test]
    fn cells_are_pure_functions_of_their_inputs() {
        let a = run_arm(7, 60, true, 1);
        let b = run_arm(7, 60, true, 1);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }
}
