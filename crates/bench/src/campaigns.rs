//! Campaign bodies shared by the `soak`, `resilience`, `evasion`,
//! `verify`, and `detection_matrix` binaries.
//!
//! Each campaign is a matrix of *independent* scenario cells: every cell
//! builds its own `Platform` from the campaign seed and shares no mutable
//! state, so the cells fan out across worker threads via
//! [`run_cells`](crate::harness::run_cells) while the collected results —
//! and therefore the JSON record — stay byte-for-byte identical to a
//! serial run. The binaries keep only argument parsing, table rendering,
//! and exit codes; tests call these functions directly to prove
//! thread-count independence.

use crate::harness::{
    detection_run, evasion_resilience_run, resilience_run, run_cells_checked, AttackKind,
    CellPanic, DetectionSummary, ResilienceSummary,
};
use crate::selfdefense::ArmCell as SelfDefenseCell;
use anvil_adversary::{CamouflageHammer, DistributedManySided, DutyCycleHammer, PacedHammer};
use anvil_analyze::{extract_witness, verify_archetype, Archetype, SymbolicBound, Witness};
use anvil_attacks::Attack;
use anvil_core::{
    AnvilConfig, DetectorStats, EnvelopeParams, GuaranteeEnvelope, Platform, PlatformConfig,
};
use anvil_dram::DisturbanceConfig;
use anvil_faults::{FaultPlan, FaultScenario};
use anvil_fleet::{run_machine, FleetConfig, FleetRisk, MachineSummary};
use anvil_fuzz::{run_campaign, FuzzOptions, FuzzReport, Scenario, ScenarioOutcome};
use anvil_mem::MemoryConfig;
use anvil_runtime::{soak as soak_engine, Engine, SoakConfig, SoakSummary};
use serde_json::{json, Value};

/// Splits [`run_cells_checked`] results into the completed cells and the
/// panicked ones, preserving submission order in both halves. Every
/// campaign runs its cells through this so a single diverging cell
/// surfaces as typed data in the record instead of aborting the whole
/// matrix.
fn split_cells<T>(results: Vec<Result<T, CellPanic>>) -> (Vec<T>, Vec<CellPanic>) {
    let mut cells = Vec::with_capacity(results.len());
    let mut panics = Vec::new();
    for r in results {
        match r {
            Ok(v) => cells.push(v),
            Err(p) => {
                eprintln!("  warning: {p}");
                panics.push(p);
            }
        }
    }
    (cells, panics)
}

// ---------------------------------------------------------------------------
// Resilience
// ---------------------------------------------------------------------------

/// Everything the `resilience` binary needs: typed cells for the tables
/// and the exact JSON record for `results/resilience.json`.
#[derive(Debug)]
pub struct ResilienceOutcome {
    /// Main fault-matrix cells, in scenario × intensity × attack order.
    pub cells: Vec<ResilienceSummary>,
    /// Fault × evasion cross-matrix cells.
    pub cross_cells: Vec<ResilienceSummary>,
    /// Cells that flipped bits or showed no protection signal.
    pub unprotected: u32,
    /// Cells that panicked instead of completing (counted as
    /// unprotected; always a merge-gate failure).
    pub panics: Vec<CellPanic>,
    /// The machine-readable record.
    pub json: Value,
}

/// Runs the fault-resilience campaign; see the `resilience` binary docs.
pub fn resilience(smoke: bool, run_ms: f64, seed: u64, threads: usize) -> ResilienceOutcome {
    let intensities: &[f64] = if smoke { &[1.0] } else { &[0.5, 1.0] };
    let attacks: Vec<AttackKind> = if smoke {
        vec![AttackKind::DoubleSided]
    } else {
        AttackKind::all().to_vec()
    };

    let mut main_cells: Vec<Box<dyn FnOnce() -> ResilienceSummary + Send>> = Vec::new();
    for scenario in FaultScenario::ALL {
        for &intensity in intensities {
            for &kind in &attacks {
                main_cells.push(Box::new(move || {
                    let s = resilience_run(
                        scenario,
                        intensity,
                        kind,
                        AnvilConfig::baseline(),
                        run_ms,
                        seed,
                    );
                    eprintln!(
                        "  [{} / {} / {intensity:.1}] detect {:?}, degraded {}, flips {}",
                        s.scenario, s.attack, s.detect_ms, s.degraded_windows, s.flips
                    );
                    s
                }));
            }
        }
    }
    let (cells, mut panics) = split_cells(run_cells_checked(threads, main_cells));

    // Fault × evasion cross-matrix: adaptive adversaries while the
    // substrate degrades, against the hardened detector on future DRAM.
    // PEBS overflow starves exactly the stage-2 evidence the hardened
    // countermeasures (ledger, sticky sampling) feed on; the combined
    // scenario stacks every fault class at once.
    let cross_scenarios: &[FaultScenario] = if smoke {
        &[FaultScenario::PebsOverflow]
    } else {
        &[FaultScenario::PebsOverflow, FaultScenario::Combined]
    };
    let evaders: &[fn() -> Box<dyn Attack>] = if smoke {
        &[|| Box::new(DutyCycleHammer::new())]
    } else {
        &[
            || Box::new(DutyCycleHammer::new()),
            || Box::new(DistributedManySided::new()),
        ]
    };
    let mut cross_jobs: Vec<Box<dyn FnOnce() -> ResilienceSummary + Send>> = Vec::new();
    for &scenario in cross_scenarios {
        for build in evaders {
            cross_jobs.push(Box::new(move || {
                let s = evasion_resilience_run(
                    scenario,
                    1.0,
                    build(),
                    AnvilConfig::hardened(),
                    run_ms,
                    seed,
                );
                eprintln!(
                    "  [cross: {} / {}] detect {:?}, degraded {}, flips {}",
                    s.scenario, s.attack, s.detect_ms, s.degraded_windows, s.flips
                );
                s
            }));
        }
    }
    let (cross_cells, cross_panics) = split_cells(run_cells_checked(threads, cross_jobs));
    panics.extend(cross_panics);

    // A panicked cell proved nothing about its scenario, so it counts
    // against the campaign exactly like an unprotected one.
    let mut unprotected = u32::try_from(panics.len()).unwrap_or(u32::MAX);
    for s in cells.iter().chain(&cross_cells) {
        if !s.protected {
            unprotected += 1;
        }
    }
    let cell_values: Vec<Value> = cells.iter().map(serde_json::to_value).collect();
    let cross_values: Vec<Value> = cross_cells.iter().map(serde_json::to_value).collect();
    let panic_values: Vec<Value> = panics.iter().map(serde_json::to_value).collect();
    let json = json!({
        "experiment": "resilience",
        "seed": seed,
        "run_ms": run_ms,
        "smoke": smoke,
        "unprotected": unprotected,
        "cell_panics": panic_values,
        "cells": cell_values,
        "cross_cells": cross_values,
    });
    ResilienceOutcome {
        cells,
        cross_cells,
        unprotected,
        panics,
        json,
    }
}

// ---------------------------------------------------------------------------
// Evasion
// ---------------------------------------------------------------------------

/// The evasive strategies, each mapped to the envelope archetype whose
/// budget bounds it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Strategy {
    /// Bursts straddling stage-1 window boundaries.
    DutyCycle,
    /// Constant pace binary-searched to the stage-1 trip point.
    ThresholdProber,
    /// Aggressor pair hidden in a streaming row-buffer-hit sweep.
    Camouflage,
    /// Round-robin over many pairs in distinct banks.
    Distributed,
}

impl Strategy {
    /// Full-matrix order.
    fn all() -> [Strategy; 4] {
        [
            Strategy::DutyCycle,
            Strategy::ThresholdProber,
            Strategy::Camouflage,
            Strategy::Distributed,
        ]
    }

    /// Display name (matches the attack's `name()`).
    fn label(self) -> &'static str {
        match self {
            Strategy::DutyCycle => "duty-cycle-hammer",
            Strategy::ThresholdProber => "threshold-prober",
            Strategy::Camouflage => "camouflage-hammer",
            Strategy::Distributed => "distributed-many-sided",
        }
    }

    /// Builds the attack; `pace` is the prober's searched pace.
    fn build(self, pace: Option<u64>) -> Box<dyn Attack> {
        match self {
            Strategy::DutyCycle => Box::new(DutyCycleHammer::new()),
            Strategy::ThresholdProber => {
                let mut a = PacedHammer::new();
                if let Some(p) = pace {
                    a = a.with_misses_per_window(p);
                }
                Box::new(a)
            }
            Strategy::Camouflage => Box::new(CamouflageHammer::new()),
            Strategy::Distributed => Box::new(DistributedManySided::new()),
        }
    }

    /// The audited budget bounding this strategy.
    fn budget(self, env: &GuaranteeEnvelope) -> u64 {
        match self {
            Strategy::DutyCycle => env.straddle_budget,
            Strategy::ThresholdProber => env.sustained_budget,
            Strategy::Camouflage => env.camouflage_budget,
            Strategy::Distributed => env.distributed_budget,
        }
    }
}

/// How long each probe of the threshold-prober's binary search runs.
const PROBE_MS: f64 = 30.0;

/// Threads the campaign seed into the detector (window-phase schedule).
fn campaign_config(mut cfg: AnvilConfig, seed: u64) -> AnvilConfig {
    cfg.hardening.phase_seed = seed;
    cfg
}

/// A protected platform on future-DRAM (110K flip threshold), with the
/// campaign seed folded into the DRAM fault map.
fn future_platform(cfg: &AnvilConfig, seed: u64) -> Platform {
    let mut pc = PlatformConfig::with_anvil(*cfg);
    pc.memory.dram.disturbance = DisturbanceConfig::future_half_threshold();
    pc.memory.dram.seed ^= seed;
    Platform::new(pc)
}

/// Binary-searches the highest pace (misses per assumed 6 ms window)
/// whose stage-1 crossing count stays at zero over a probe run — the
/// threshold-prober's driver loop, run against the *actual* detector the
/// adversary faces.
fn quiet_pace(cfg: &AnvilConfig, seed: u64) -> u64 {
    let trips = |pace: u64| {
        let mut p = future_platform(cfg, seed);
        p.add_attack(Box::new(PacedHammer::new().with_misses_per_window(pace)))
            .expect("attack prepares on open platform");
        p.run_ms(PROBE_MS).expect("probe run completes");
        p.detector_stats()
            .expect("anvil loaded")
            .threshold_crossings
            > 0
    };
    let (mut lo, mut hi) = (2_000u64, 40_000u64);
    if trips(lo) {
        return lo;
    }
    while hi - lo > 250 {
        let mid = u64::midpoint(lo, hi);
        if trips(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    lo
}

/// One evasion cell: a strategy run against one detector configuration.
#[derive(Debug, Clone)]
pub struct EvasionCell {
    /// Strategy display name.
    pub strategy: &'static str,
    /// `"baseline"` or `"hardened"`.
    pub detector: &'static str,
    /// The threshold-prober's searched pace (its cells only).
    pub pace: Option<u64>,
    /// Time to the first detection, ms.
    pub detect_ms: Option<f64>,
    /// Bit flips observed.
    pub flips: u64,
    /// Detector counters at the end of the run.
    pub stats: DetectorStats,
    /// The strategy's audited undetectable-activation budget.
    pub budget: u64,
    /// Whether that budget proves the 220K design threshold unreachable.
    pub proven: bool,
    /// No flips, and detected or proven.
    pub defended: bool,
    /// Table outcome label.
    pub outcome: &'static str,
}

/// Everything the `evasion` binary needs: typed cells plus the exact
/// JSON record for `results/evasion.json`.
#[derive(Debug)]
pub struct EvasionOutcome {
    /// Cells in strategy-major, (baseline, hardened)-minor order.
    pub cells: Vec<EvasionCell>,
    /// Baseline cells that flipped or escaped both proofs.
    pub baseline_losses: u32,
    /// Hardened cells that flipped or escaped both proofs.
    pub hardened_failures: u32,
    /// Whether the hardened detector defended a cell the baseline lost.
    pub demonstrated: bool,
    /// Cells that panicked instead of completing (counted against the
    /// detector they were probing; always a merge-gate failure).
    pub panics: Vec<CellPanic>,
    /// The machine-readable record.
    pub json: Value,
}

/// Runs the adaptive-adversary campaign; see the `evasion` binary docs.
#[allow(clippy::too_many_lines)]
pub fn evasion(smoke: bool, run_ms: f64, seed: u64, threads: usize) -> EvasionOutcome {
    let strategies: Vec<Strategy> = if smoke {
        // One stage-1 evasion (carry + jitter) and one stage-2 evasion
        // (ledger): covers both hardening layers cheaply.
        vec![Strategy::DutyCycle, Strategy::Distributed]
    } else {
        Strategy::all().to_vec()
    };

    let params = EnvelopeParams::paper_platform();
    let clock = MemoryConfig::paper_platform().clock;
    let future_flip = DisturbanceConfig::future_half_threshold().double_sided_threshold;
    let detectors = [
        ("baseline", campaign_config(AnvilConfig::baseline(), seed)),
        ("hardened", campaign_config(AnvilConfig::hardened(), seed)),
    ];
    let envelopes: Vec<GuaranteeEnvelope> = detectors
        .iter()
        .map(|(_, cfg)| GuaranteeEnvelope::audit(cfg, &clock, &params))
        .collect();

    let mut jobs: Vec<Box<dyn FnOnce() -> EvasionCell + Send>> = Vec::new();
    for &strategy in &strategies {
        for (i, (det, cfg)) in detectors.iter().enumerate() {
            let det = *det;
            let cfg = *cfg;
            let budget = strategy.budget(&envelopes[i]);
            let proven = budget < params.flip_threshold;
            jobs.push(Box::new(move || {
                let pace = (strategy == Strategy::ThresholdProber).then(|| quiet_pace(&cfg, seed));
                let mut p = future_platform(&cfg, seed);
                p.add_attack(strategy.build(pace))
                    .expect("attack prepares on open platform");
                p.run_ms(run_ms).expect("run completes");
                let stats = *p.detector_stats().expect("anvil loaded");
                let detect_ms = p.first_detection_ms();
                let flips = p.total_flips();
                let detected = detect_ms.is_some();
                let defended = flips == 0 && (detected || proven);
                let outcome = match (flips, detected, proven) {
                    (0, true, _) => "detected",
                    (0, false, true) => "enveloped",
                    (0, false, false) => "UNPROVEN",
                    (_, true, _) => "FLIPPED (late)",
                    (_, false, _) => "EVADED",
                };
                eprintln!(
                    "  [{} / {det}] detect {detect_ms:?}, flips {flips}, \
                     crossings {} (carry {}), ledger {}, budget {budget}",
                    strategy.label(),
                    stats.threshold_crossings,
                    stats.carry_crossings,
                    stats.ledger_flags,
                );
                EvasionCell {
                    strategy: strategy.label(),
                    detector: det,
                    pace,
                    detect_ms,
                    flips,
                    stats,
                    budget,
                    proven,
                    defended,
                    outcome,
                }
            }));
        }
    }
    let results = run_cells_checked(threads, jobs);

    // The defended/lost bookkeeping folds over the collected cells in
    // matrix order — (baseline, hardened) per strategy — exactly as the
    // serial loop used to update it in place. A panicked cell proved
    // nothing, so it counts as a loss for the detector it was probing
    // (known from its position in the pair, even without a result).
    let mut hardened_failures = 0u32;
    let mut baseline_losses = 0u32;
    let mut demonstrated = false;
    for pair in results.chunks(detectors.len()) {
        let mut baseline_lost = false;
        for (slot, result) in pair.iter().enumerate() {
            let hardened = detectors[slot].0 == "hardened";
            let defended = result.as_ref().is_ok_and(|cell| cell.defended);
            if hardened {
                if !defended {
                    hardened_failures += 1;
                } else if baseline_lost {
                    demonstrated = true;
                }
            } else if !defended {
                baseline_lost = true;
                baseline_losses += 1;
            }
        }
    }
    let (cells, panics) = split_cells(results);

    let cell_values: Vec<Value> = cells
        .iter()
        .map(|c| {
            json!({
                "strategy": c.strategy,
                "detector": c.detector,
                "pace": c.pace,
                "detect_ms": c.detect_ms,
                "flips": c.flips,
                "threshold_crossings": c.stats.threshold_crossings,
                "carry_crossings": c.stats.carry_crossings,
                "ledger_flags": c.stats.ledger_flags,
                "detections": c.stats.detections,
                "selective_refreshes": c.stats.selective_refreshes,
                "envelope_budget": c.budget,
                "envelope_proven": c.proven,
                "defended": c.defended,
                "outcome": c.outcome,
            })
        })
        .collect();
    let json = json!({
        "experiment": "evasion",
        "seed": seed,
        "run_ms": run_ms,
        "smoke": smoke,
        "future_flip_threshold": future_flip,
        "design_flip_threshold": params.flip_threshold,
        "envelopes": {
            "baseline": envelopes[0],
            "hardened": envelopes[1],
        },
        "baseline_losses": baseline_losses,
        "hardened_failures": hardened_failures,
        "demonstrated": demonstrated,
        "cell_panics": panics.iter().map(serde_json::to_value).collect::<Vec<Value>>(),
        "cells": cell_values,
    });
    EvasionOutcome {
        cells,
        baseline_losses,
        hardened_failures,
        demonstrated,
        panics,
        json,
    }
}

// ---------------------------------------------------------------------------
// Symbolic verification
// ---------------------------------------------------------------------------

/// One verifier cell: a safety claim about one adversary family against
/// one detector at one flip threshold, judged symbolically and — when
/// the abstract bound clears the threshold — dynamically.
#[derive(Debug, Clone)]
pub struct VerifyCell {
    /// Archetype name, in envelope order.
    pub archetype: &'static str,
    /// `"baseline"` or `"hardened"`.
    pub detector: &'static str,
    /// The flip threshold the claim is judged against.
    pub flip_threshold: u64,
    /// Whether witness replays run on future (half-threshold) DRAM.
    pub future_dram: bool,
    /// The abstract interpreter's bound and its audit cross-check.
    pub bound: SymbolicBound,
    /// Whether the closed-form envelope holds at this threshold.
    pub audit_holds: bool,
    /// `"proved"` (bound under the threshold), `"refuted"` (a witness
    /// replays to a missed detection), or `"unconfirmed"` (bound too
    /// loose, no tried family member evades).
    pub verdict: &'static str,
    /// Detector downtime (cycles) the proof margin tolerates before the
    /// family could close the gap at full hammer rate; zero unless
    /// proved.
    pub downtime_budget_cycles: u64,
    /// The confirmed counterexample backing a refutation.
    pub witness: Option<Witness>,
    /// Whether the witness re-replayed to its recorded outcome.
    pub witness_confirmed: bool,
    /// Merge-gate failure: the bound undercuts the audit, a refutation
    /// contradicts a holding envelope or lacks a replaying witness, or a
    /// hardened design-threshold cell escaped its proof obligation.
    pub violation: bool,
}

/// Everything the `verify` binary needs: typed cells plus the exact
/// JSON record for `results/verifier.json`.
#[derive(Debug)]
pub struct VerifyOutcome {
    /// Cells in threshold-major, detector-medial, archetype-minor order.
    pub cells: Vec<VerifyCell>,
    /// Cells whose bound stays under their flip threshold.
    pub proved: u32,
    /// Cells refuted by a replaying witness.
    pub refuted: u32,
    /// Cells with a loose bound but no evading family member found.
    pub unconfirmed: u32,
    /// Cells failing the merge gate (see [`VerifyCell::violation`]).
    pub violations: u32,
    /// Whether some refutation carried a confirmed witness — the
    /// counterexample machinery must demonstrably work, not just the
    /// prover.
    pub demonstrated: bool,
    /// The machine-readable record.
    pub json: Value,
}

/// Runs the symbolic verification campaign; see the `verify` binary docs.
#[allow(clippy::too_many_lines)]
pub fn verify(smoke: bool, run_ms: f64, seed: u64, threads: usize) -> VerifyOutcome {
    let design = EnvelopeParams::paper_platform();
    let future_flip = DisturbanceConfig::future_half_threshold().double_sided_threshold;
    let clock = MemoryConfig::paper_platform().clock;
    let detectors = [
        ("baseline", campaign_config(AnvilConfig::baseline(), seed)),
        ("hardened", campaign_config(AnvilConfig::hardened(), seed)),
    ];
    // Claims: the 220K design threshold on the paper's DRAM, then the
    // future half-threshold generation. Smoke keeps only the future
    // side — the design-threshold proofs are pure math and already
    // pinned by the `anvil-analyze` unit tests; the future cells are
    // the ones that exercise witness extraction and replay.
    let thresholds: &[(u64, bool)] = if smoke {
        &[(110_000, true)]
    } else {
        &[(220_000, false), (110_000, true)]
    };

    let mut audits: Vec<(u64, &'static str, GuaranteeEnvelope)> = Vec::new();
    let mut jobs: Vec<Box<dyn FnOnce() -> VerifyCell + Send>> = Vec::new();
    for &(flip, future_dram) in thresholds {
        let params = design.with_flip_threshold(flip);
        for &(det, cfg) in &detectors {
            let audit = GuaranteeEnvelope::audit(&cfg, &clock, &params);
            audits.push((flip, det, audit));
            let audit_holds = audit.holds();
            for archetype in Archetype::ALL {
                jobs.push(Box::new(move || {
                    let bx = archetype.default_box(&cfg, &clock, &params);
                    let bound = verify_archetype(archetype, &cfg, &clock, &params, &bx);
                    let (verdict, witness, witness_confirmed) = if bound.bound < flip {
                        ("proved", None, false)
                    } else {
                        match extract_witness(
                            archetype,
                            &cfg,
                            future_dram,
                            seed,
                            run_ms,
                            FaultPlan::none(),
                        ) {
                            Some(w) => ("refuted", Some(w), w.confirms()),
                            None => ("unconfirmed", None, false),
                        }
                    };
                    let downtime_budget_cycles = if verdict == "proved" {
                        (flip - bound.bound).saturating_mul(params.attack_access_cycles)
                    } else {
                        0
                    };
                    let violation = !bound.sound_wrt_audit
                        || (audit_holds && verdict == "refuted")
                        || (verdict == "refuted" && !witness_confirmed)
                        || (det == "hardened" && flip == 220_000 && verdict != "proved");
                    eprintln!(
                        "  [{} / {det} @ {flip}] bound {}, audit {}, {verdict}{}",
                        archetype.name(),
                        bound.bound,
                        bound.audit_budget,
                        if violation { " (VIOLATION)" } else { "" },
                    );
                    VerifyCell {
                        archetype: archetype.name(),
                        detector: det,
                        flip_threshold: flip,
                        future_dram,
                        bound,
                        audit_holds,
                        verdict,
                        downtime_budget_cycles,
                        witness,
                        witness_confirmed,
                        violation,
                    }
                }));
            }
        }
    }
    let (cells, panics) = split_cells(run_cells_checked(threads, jobs));

    // A panicked cell is a proof obligation that never discharged:
    // count it as a violation so the merge gate fails closed.
    let (mut proved, mut refuted, mut unconfirmed, mut violations) =
        (0u32, 0u32, 0u32, panics.len() as u32);
    let mut demonstrated = false;
    for c in &cells {
        match c.verdict {
            "proved" => proved += 1,
            "refuted" => refuted += 1,
            _ => unconfirmed += 1,
        }
        if c.violation {
            violations += 1;
        }
        if c.verdict == "refuted" && c.witness_confirmed {
            demonstrated = true;
        }
    }

    let audit_values: Vec<Value> = audits
        .iter()
        .map(|(flip, det, env)| {
            json!({
                "flip_threshold": flip,
                "detector": det,
                "envelope": env,
            })
        })
        .collect();
    let cell_values: Vec<Value> = cells
        .iter()
        .map(|c| {
            json!({
                "archetype": c.archetype,
                "detector": c.detector,
                "flip_threshold": c.flip_threshold,
                "future_dram": c.future_dram,
                "bound": c.bound.bound,
                "audit_budget": c.bound.audit_budget,
                "sound_wrt_audit": c.bound.sound_wrt_audit,
                "windows_explored": c.bound.windows_explored,
                "downtime_activations": c.bound.downtime_activations,
                "audit_holds": c.audit_holds,
                "verdict": c.verdict,
                "downtime_budget_cycles": c.downtime_budget_cycles,
                "witness": c.witness,
                "witness_confirmed": c.witness_confirmed,
                "violation": c.violation,
            })
        })
        .collect();
    let json = json!({
        "experiment": "verifier",
        "seed": seed,
        "run_ms": run_ms,
        "smoke": smoke,
        "design_flip_threshold": design.flip_threshold,
        "future_flip_threshold": future_flip,
        "audits": audit_values,
        "proved": proved,
        "refuted": refuted,
        "unconfirmed": unconfirmed,
        "violations": violations,
        "demonstrated": demonstrated,
        "cell_panics": panics.iter().map(|p| serde_json::to_value(p)).collect::<Vec<Value>>(),
        "cells": cell_values,
    });
    VerifyOutcome {
        cells,
        proved,
        refuted,
        unconfirmed,
        violations,
        demonstrated,
        json,
    }
}

// ---------------------------------------------------------------------------
// Detection matrix
// ---------------------------------------------------------------------------

/// Whether `config` is designed to catch this attack. ANVIL-heavy shrinks
/// its windows for *fast* future attacks but keeps the 20K threshold, so a
/// slow CLFLUSH-free hammer (~19K misses / 2 ms) can legitimately stay
/// below its stage-1 trigger — the paper's Section 4.5 frames heavy and
/// light as complements to the baseline, not replacements.
fn in_scope(config: &str, kind: AttackKind) -> bool {
    !(config == "heavy" && matches!(kind, AttackKind::ClflushFree))
}

/// One detection-matrix cell.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// The detection run's result.
    pub summary: DetectionSummary,
    /// ANVIL configuration label (`baseline` / `light` / `heavy`).
    pub config: &'static str,
    /// Whether this configuration is expected to catch this attack.
    pub in_scope: bool,
}

/// Everything the `detection_matrix` binary needs.
#[derive(Debug)]
pub struct DetectionMatrixOutcome {
    /// Cells in attack × config × load order.
    pub cells: Vec<MatrixCell>,
    /// In-scope cells that missed the attack or flipped bits.
    pub misses: u32,
    /// The machine-readable record.
    pub json: Value,
}

/// Runs the Section 4.2/4.5 detection matrix; see the `detection_matrix`
/// binary docs.
pub fn detection_matrix(run_ms: f64, threads: usize) -> DetectionMatrixOutcome {
    let configs: [(&'static str, AnvilConfig); 3] = [
        ("baseline", AnvilConfig::baseline()),
        ("light", AnvilConfig::light()),
        ("heavy", AnvilConfig::heavy()),
    ];
    let mut jobs: Vec<Box<dyn FnOnce() -> MatrixCell + Send>> = Vec::new();
    for kind in AttackKind::all() {
        for (label, cfg) in configs {
            for heavy in [false, true] {
                jobs.push(Box::new(move || {
                    let s = detection_run(kind, cfg, heavy, run_ms, 3);
                    eprintln!(
                        "  [{} / {label} / {}] {:?}, flips {}",
                        kind.label(),
                        if heavy { "heavy" } else { "light" },
                        s.detect_ms,
                        s.flips
                    );
                    MatrixCell {
                        summary: s,
                        config: label,
                        in_scope: in_scope(label, kind),
                    }
                }));
            }
        }
    }
    let (cells, panics) = split_cells(run_cells_checked(threads, jobs));
    // A panicked cell proved nothing about its attack × config pair, so
    // it counts against the campaign exactly like a missed detection.
    let mut misses = u32::try_from(panics.len()).unwrap_or(u32::MAX);
    for c in &cells {
        if c.in_scope && (c.summary.detect_ms.is_none() || c.summary.flips > 0) {
            misses += 1;
        }
    }
    let records: Vec<Value> = cells
        .iter()
        .map(|c| {
            json!({
                "attack": c.summary.attack,
                "config": c.config,
                "heavy_load": c.summary.heavy_load,
                "detect_ms": c.summary.detect_ms,
                "flips": c.summary.flips,
            })
        })
        .collect();
    let panic_values: Vec<Value> = panics.iter().map(serde_json::to_value).collect();
    let json = json!({
        "experiment": "detection_matrix",
        "rows": records,
        "misses": misses,
        "cell_panics": panic_values,
    });
    DetectionMatrixOutcome {
        cells,
        misses,
        json,
    }
}

// ---------------------------------------------------------------------------
// Soak
// ---------------------------------------------------------------------------

/// Everything the `soak` binary needs.
#[derive(Debug)]
pub struct SoakOutcome {
    /// The campaign summary, or `None` when the soak cell itself
    /// panicked (recorded in [`SoakOutcome::panics`]).
    pub summary: Option<SoakSummary>,
    /// The panic, if the soak cell died instead of completing.
    pub panics: Vec<CellPanic>,
    /// The machine-readable record.
    pub json: Value,
}

impl SoakOutcome {
    /// The campaign gate: the cell completed and its summary holds.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.panics.is_empty() && self.summary.as_ref().is_some_and(SoakSummary::holds)
    }
}

/// Runs the supervised-lifetime soak campaign; see the `soak` binary
/// docs.
///
/// The soak is one continuous supervised detector lifetime — its windows
/// are causally chained (checkpoints, crash recovery, hot reloads), so
/// unlike the matrix campaigns it is a *single* cell: `threads` is
/// accepted for interface uniformity (and so the thread-count determinism
/// tests cover it) but cannot subdivide the run.
pub fn soak(cfg: &SoakConfig, seed: u64, smoke: bool, threads: usize) -> SoakOutcome {
    soak_with_engine(cfg, seed, smoke, threads, Engine::default())
}

/// [`soak`] under an explicit simulation [`Engine`]. The JSON record is
/// byte-identical across engines (the cross-engine CI smoke diffs them),
/// so the engine is deliberately not serialized into it.
pub fn soak_with_engine(
    cfg: &SoakConfig,
    seed: u64,
    smoke: bool,
    threads: usize,
    engine: Engine,
) -> SoakOutcome {
    let (mut cells, panics) = split_cells(run_cells_checked(
        threads,
        vec![|| soak_engine::run_with_engine(cfg, engine)],
    ));
    let s = (!cells.is_empty()).then(|| cells.remove(0));
    let json = json!({
        "experiment": "soak",
        "seed": seed,
        "smoke": smoke,
        "config": {
            "windows": cfg.windows,
            "crash_rate": cfg.lifecycle.crash_rate,
            "stall_rate": cfg.lifecycle.stall_rate,
            "max_stall": cfg.lifecycle.max_stall,
            "corrupt_rate": cfg.lifecycle.corrupt_rate,
            "reload_every": cfg.reload_every,
            "checkpoint_every": cfg.runtime.checkpoint_every,
            "restart_budget": cfg.runtime.restart_budget,
            "backoff_base": cfg.runtime.backoff_base,
            "backoff_cap": cfg.runtime.backoff_cap,
        },
        "summary": serde_json::to_value(&s),
        "cell_panics": panics.iter().map(serde_json::to_value).collect::<Vec<Value>>(),
        "holds": panics.is_empty() && s.as_ref().is_some_and(SoakSummary::holds),
    });
    SoakOutcome {
        summary: s,
        panics,
        json,
    }
}

// ---------------------------------------------------------------------------
// Coverage-guided guarantee fuzzing
// ---------------------------------------------------------------------------

/// Everything the `fuzz` binary needs: the standard-domain and
/// weakened-canary campaign reports, the merge-gate verdicts, and the
/// exact JSON record for `results/fuzz.json`.
#[derive(Debug)]
pub struct FuzzOutcome {
    /// The standard-domain report: fuzzing around the hardened shipping
    /// configuration, where the guarantee envelope holds. Gate: zero
    /// counterexamples.
    pub standard: FuzzReport,
    /// The weakened-canary report: the domain plants a conviction blind
    /// spot (`bank_support_min` + `ledger_min_windows`, both invisible
    /// to the envelope audit). Gate: the fuzzer *must* find it and
    /// shrink it to a minimal flipping schedule — the end-to-end proof
    /// that the whole find-and-shrink pipeline works.
    pub canary: FuzzReport,
    /// Merge-gate failures, empty when every gate passed.
    pub violations: Vec<String>,
    /// The machine-readable record.
    pub json: Value,
}

/// Runs both fuzz campaigns (see the `fuzz` binary docs), evaluating
/// scenario batches on up to `threads` workers via
/// [`run_cells_checked`] — a candidate that panics the simulator
/// surfaces as a recorded cell failure, not a campaign abort. Candidate
/// generation happens before each batch is dispatched and results fold
/// back in submission order, so the record is byte-for-byte identical
/// at any thread count.
pub fn fuzz(smoke: bool, seed: u64, threads: usize) -> FuzzOutcome {
    // Panicked candidate cells flow back to the fuzzer as `Err` strings
    // (its report format), but the typed records are kept too so the
    // JSON carries them the same way every other campaign does.
    let panic_log: std::cell::RefCell<Vec<CellPanic>> = std::cell::RefCell::new(Vec::new());
    let exec = |batch: Vec<Scenario>| -> Vec<Result<ScenarioOutcome, String>> {
        let cells: Vec<_> = batch.into_iter().map(|s| move || s.run()).collect();
        run_cells_checked(threads, cells)
            .into_iter()
            .map(|r| {
                r.map_err(|p| {
                    let rendered = p.to_string();
                    panic_log.borrow_mut().push(p);
                    rendered
                })
            })
            .collect()
    };
    let standard_opts = if smoke {
        FuzzOptions::smoke(seed)
    } else {
        FuzzOptions::full(seed)
    };
    let standard = run_campaign(&standard_opts, exec);
    let canary = run_campaign(&FuzzOptions::canary(seed), exec);

    let mut violations = Vec::new();
    for c in &standard.counterexamples {
        violations.push(format!(
            "standard domain: envelope violated by a {}-event schedule flipping {} bit(s) \
             (seed {:#x})",
            c.shrunk.schedule.len(),
            c.flips,
            c.shrunk.seed
        ));
    }
    if standard.exhausted {
        violations.push("standard domain: generation exhausted before the budget".into());
    }
    if canary.counterexamples.is_empty() {
        violations.push(
            "canary domain: the planted conviction blind spot was not found — the \
             find-and-shrink pipeline demonstrated nothing"
                .into(),
        );
    }
    for c in &canary.counterexamples {
        if c.flips == 0 {
            violations.push("canary domain: a shrunk counterexample no longer flips".into());
        }
        if c.shrunk.schedule.len() > 10 {
            violations.push(format!(
                "canary domain: counterexample shrunk only to {} events (> 10)",
                c.shrunk.schedule.len()
            ));
        }
        if !c.minimal {
            violations.push("canary domain: shrink budget exhausted before 1-minimality".into());
        }
    }

    let cell_panics = panic_log.into_inner();
    let json = json!({
        "experiment": "fuzz",
        "seed": seed,
        "smoke": smoke,
        "standard": serde_json::to_value(&standard),
        "canary": serde_json::to_value(&canary),
        "violations": violations,
        "cell_panics": cell_panics.iter().map(|p| serde_json::to_value(p)).collect::<Vec<Value>>(),
    });
    FuzzOutcome {
        standard,
        canary,
        violations,
        json,
    }
}

// ---------------------------------------------------------------------------
// Fleet
// ---------------------------------------------------------------------------

/// Everything the `fleet` binary needs: the Monte Carlo risk fold, the
/// per-machine summaries, and the exact JSON record for
/// `results/fleet.json`.
#[derive(Debug)]
pub struct FleetOutcome {
    /// The fleet-wide risk verdict.
    pub risk: FleetRisk,
    /// Per-machine summaries, in machine-index order (panicked machines
    /// are absent here and present in [`FleetOutcome::panics`]).
    pub machines: Vec<MachineSummary>,
    /// Machine cells that panicked instead of completing. Counted in
    /// [`FleetRisk::cell_panics`]; always a merge-gate failure.
    pub panics: Vec<CellPanic>,
    /// The machine-readable record.
    pub json: Value,
}

/// Runs the fleet-scale Monte Carlo campaign; see the `fleet` binary
/// docs. One machine is one pure cell of `(cfg, machine_index)`:
/// [`run_machine`] fans across up to `threads` workers via
/// [`run_cells_checked`] and the summaries fold into [`FleetRisk`] in
/// submission order, so the record is byte-for-byte identical at any
/// thread count.
pub fn fleet(cfg: &FleetConfig, smoke: bool, threads: usize) -> FleetOutcome {
    let mut jobs: Vec<Box<dyn FnOnce() -> MachineSummary + Send>> = Vec::new();
    for machine in 0..cfg.machines {
        let cfg = *cfg;
        jobs.push(Box::new(move || {
            let m = run_machine(&cfg, machine);
            let exposure: u64 = m.domains.iter().map(|d| d.exposure_flips).sum();
            let undeclared: u64 = m.domains.iter().map(|d| d.undeclared_flips).sum();
            eprintln!(
                "  [machine {machine}] outages {}, pmu episodes {}, blind windows {}, \
                 exposure flips {exposure}, undeclared flips {undeclared}",
                m.outages, m.pmu_episodes, m.blind_windows
            );
            m
        }));
    }
    let (machines, panics) = split_cells(run_cells_checked(threads, jobs));
    let risk = FleetRisk::aggregate(cfg, &machines, panics.len() as u64);

    let machine_values: Vec<Value> = machines.iter().map(serde_json::to_value).collect();
    let json = json!({
        "experiment": "fleet",
        "seed": cfg.seed,
        "smoke": smoke,
        "config": serde_json::to_value(cfg),
        "risk": serde_json::to_value(&risk),
        "cell_panics": panics.iter().map(serde_json::to_value).collect::<Vec<Value>>(),
        "machines": machine_values,
        "holds": risk.holds(),
    });
    FleetOutcome {
        risk,
        machines,
        panics,
        json,
    }
}

// ---------------------------------------------------------------------------
// Self-defense
// ---------------------------------------------------------------------------

/// Aggregate verdict of the self-defense campaign: the unguarded
/// baseline must demonstrably lose detections (and data) to the
/// state-targeting attack, while the guarded detector must declare every
/// corruption and protect the co-located data victim.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SelfDefenseVerdict {
    /// Detections summed over unguarded cells.
    pub baseline_detections: u64,
    /// Detections summed over guarded cells.
    pub guarded_detections: u64,
    /// Undeclared data-victim flips summed over unguarded cells.
    pub baseline_undeclared: u64,
    /// Undeclared data-victim flips summed over guarded cells.
    pub guarded_undeclared: u64,
    /// State flips the attacker landed on guarded cells.
    pub guarded_injected: u64,
    /// Corruptions the guarded detector repaired in place.
    pub guarded_repaired: u64,
    /// Corruptions the guarded detector escalated to a cold restart.
    pub guarded_escalated: u64,
    /// Injected sites a guarded cell absorbed without ever declaring.
    pub guarded_absorbed: u64,
    /// State flips silently absorbed by the unguarded baseline.
    pub baseline_absorbed: u64,
    /// Whether every guarded recovery gap stayed inside the envelope's
    /// downtime budget.
    pub within_budget: bool,
    /// Cells that panicked instead of completing.
    pub cell_panics: u64,
}

impl SelfDefenseVerdict {
    fn aggregate(cells: &[SelfDefenseCell], panics: u64) -> Self {
        let mut v = Self {
            baseline_detections: 0,
            guarded_detections: 0,
            baseline_undeclared: 0,
            guarded_undeclared: 0,
            guarded_injected: 0,
            guarded_repaired: 0,
            guarded_escalated: 0,
            guarded_absorbed: 0,
            baseline_absorbed: 0,
            within_budget: true,
            cell_panics: panics,
        };
        for c in cells {
            if c.arm == "guarded" {
                v.guarded_detections += c.detections;
                v.guarded_undeclared += c.undeclared_flips;
                v.guarded_injected += c.state_flips_injected;
                v.guarded_repaired += c.declared_repaired;
                v.guarded_escalated += c.declared_escalated;
                v.guarded_absorbed += c.silently_absorbed_sites;
                v.within_budget &= c.within_budget;
            } else {
                v.baseline_detections += c.detections;
                v.baseline_undeclared += c.undeclared_flips;
                v.baseline_absorbed += c.silently_absorbed_sites;
            }
        }
        v
    }

    /// The merge gate. Each clause is one claim of DESIGN.md §15: the
    /// attack works (the baseline goes blind and loses data, absorbing
    /// every flip silently), the guard defeats it (more detections, no
    /// undeclared data flips), and the self-integrity contract holds
    /// (every injected corruption repaired or escalated — never
    /// silently absorbed — with both policy arms exercised and every
    /// declared outage inside the downtime budget).
    #[must_use]
    pub fn holds(&self) -> bool {
        self.guarded_detections > self.baseline_detections
            && self.baseline_undeclared > 0
            && self.baseline_absorbed > 0
            && self.guarded_undeclared == 0
            && self.guarded_injected > 0
            && self.guarded_absorbed == 0
            && self.guarded_repaired > 0
            && self.guarded_escalated > 0
            && self.within_budget
            && self.cell_panics == 0
    }
}

/// Everything the `selfdefense` binary needs: per-arm cells, the
/// aggregate verdict, and the exact JSON record for
/// `results/selfdefense.json`.
#[derive(Debug)]
pub struct SelfDefenseOutcome {
    /// Per-(trial, arm) cells, unguarded before guarded within a trial.
    pub cells: Vec<SelfDefenseCell>,
    /// Cells that panicked instead of completing.
    pub panics: Vec<CellPanic>,
    /// The aggregate merge-gate verdict.
    pub verdict: SelfDefenseVerdict,
    /// The machine-readable record.
    pub json: Value,
}

/// Runs the self-defense campaign: `trials` seeds, each simulated twice
/// — unguarded baseline and guarded detector — under the identical
/// state-targeting attack. One `(trial, arm)` pair is one pure cell of
/// `(seed, windows, guarded, trial)`:
/// [`run_self_defense_arm`](crate::selfdefense::run_arm) fans across up
/// to `threads` workers via [`run_cells_checked`] and folds in
/// submission order, so the record is byte-for-byte identical at any
/// thread count.
pub fn selfdefense(smoke: bool, seed: u64, threads: usize) -> SelfDefenseOutcome {
    let (trials, windows) = if smoke { (2, 160) } else { (3, 420) };
    let mut jobs: Vec<Box<dyn FnOnce() -> SelfDefenseCell + Send>> = Vec::new();
    for trial in 0..trials {
        for guarded in [false, true] {
            jobs.push(Box::new(move || {
                let c = crate::selfdefense::run_arm(seed, windows, guarded, trial);
                eprintln!(
                    "  [trial {trial} {}] detections {}, state flips {}, repaired {}, \
                     escalated {}, absorbed {}, undeclared data flips {}",
                    c.arm,
                    c.detections,
                    c.state_flips_injected,
                    c.declared_repaired,
                    c.declared_escalated,
                    c.silently_absorbed_sites,
                    c.undeclared_flips
                );
                c
            }));
        }
    }
    let (cells, panics) = split_cells(run_cells_checked(threads, jobs));
    let verdict = SelfDefenseVerdict::aggregate(&cells, panics.len() as u64);
    let json = json!({
        "experiment": "selfdefense",
        "seed": seed,
        "smoke": smoke,
        "trials": trials,
        "windows": windows,
        "verdict": serde_json::to_value(&verdict),
        "cell_panics": panics.iter().map(|p| serde_json::to_value(p)).collect::<Vec<Value>>(),
        "cells": cells.iter().map(|c| serde_json::to_value(c)).collect::<Vec<Value>>(),
        "holds": verdict.holds(),
    });
    SelfDefenseOutcome {
        cells,
        panics,
        verdict,
        json,
    }
}
