//! **Section 5.2.1** — Does restricting `/proc/pagemap` stop rowhammer?
//!
//! Linux restricted pagemap so attackers cannot translate virtual to
//! physical addresses. The paper's verdict: "this attack still leaves
//! room for potential attacks that rely on side-channel information to
//! make inferences about the physical memory layout." This experiment
//! plays the whole escalation ladder: the pagemap-based CLFLUSH-free
//! attack against open and restricted pagemap, then the timing-only
//! attack (no pagemap, no CLFLUSH) against both frame-allocation regimes,
//! and finally ANVIL against everything that still works.

use anvil_attacks::{
    hammer_until_flip, Attack, ClflushFreeDoubleSided, StandaloneHarness, TimingClflushFree,
};
use anvil_bench::{write_json, Scale, Table};
use anvil_core::{AnvilConfig, Platform, PlatformConfig};
use anvil_mem::{AllocationPolicy, MemoryConfig, PagemapPolicy};
use serde_json::json;

fn try_attack(
    mut attack: Box<dyn Attack>,
    pagemap: PagemapPolicy,
    allocation: AllocationPolicy,
) -> (bool, Option<u64>) {
    let mut h = StandaloneHarness::new(MemoryConfig::paper_platform(), allocation);
    h.pagemap = pagemap;
    match h.prepare(attack.as_mut()) {
        Err(_) => (false, None),
        Ok(()) => {
            let r = hammer_until_flip(attack.as_mut(), &mut h, 900_000);
            (true, r.flipped.then_some(r.aggressor_accesses))
        }
    }
}

fn main() {
    let scale = Scale::from_args();
    let mut table = Table::new(
        "Section 5.2.1: The pagemap-hardening escalation ladder",
        &[
            "Attack",
            "Pagemap",
            "Frame allocation",
            "Prepares?",
            "Bits flip?",
        ],
    );
    let mut records = Vec::new();
    let mut push = |table: &mut Table,
                    name: &str,
                    pagemap: &str,
                    alloc: &str,
                    prepared: bool,
                    flipped: bool| {
        table.row(&[
            name.into(),
            pagemap.into(),
            alloc.into(),
            if prepared { "yes" } else { "NO" }.into(),
            if flipped { "YES" } else { "no" }.into(),
        ]);
        records.push(json!({
            "attack": name, "pagemap": pagemap, "allocation": alloc,
            "prepared": prepared, "flipped": flipped,
        }));
    };

    // Rung 1: the pagemap-based CLFLUSH-free attack.
    let (prep, flip) = try_attack(
        Box::new(ClflushFreeDoubleSided::new()),
        PagemapPolicy::Open,
        AllocationPolicy::Contiguous,
    );
    push(
        &mut table,
        "clflush-free (pagemap)",
        "open",
        "contiguous",
        prep,
        flip.is_some(),
    );

    let (prep, flip) = try_attack(
        Box::new(ClflushFreeDoubleSided::new()),
        PagemapPolicy::Restricted,
        AllocationPolicy::Contiguous,
    );
    push(
        &mut table,
        "clflush-free (pagemap)",
        "RESTRICTED",
        "contiguous",
        prep,
        flip.is_some(),
    );

    // Rung 2: the timing-only attack — pagemap restriction is irrelevant.
    let (prep, flip) = try_attack(
        Box::new(TimingClflushFree::new()),
        PagemapPolicy::Restricted,
        AllocationPolicy::Contiguous,
    );
    push(
        &mut table,
        "timing-clflush-free",
        "RESTRICTED",
        "contiguous",
        prep,
        flip.is_some(),
    );

    // ...until physical contiguity is gone too.
    let (prep, flip) = try_attack(
        Box::new(TimingClflushFree::new()),
        PagemapPolicy::Restricted,
        AllocationPolicy::Randomized { seed: 23 },
    );
    push(
        &mut table,
        "timing-clflush-free",
        "RESTRICTED",
        "randomized",
        prep,
        flip.is_some(),
    );

    table.print();

    // Rung 3: ANVIL stops what the OS hardening cannot.
    let mut pc = PlatformConfig::with_anvil(AnvilConfig::baseline());
    pc.pagemap = PagemapPolicy::Restricted;
    let mut p = Platform::new(pc);
    p.add_attack(Box::new(TimingClflushFree::new()))
        .expect("prepares");
    p.run_ms(scale.ms(150.0).max(80.0)).unwrap();
    println!(
        "ANVIL vs the timing attack: detected at {} ms, {} bit flips.",
        p.first_detection_ms()
            .map_or("-".into(), |t| format!("{t:.1}")),
        p.total_flips()
    );
    println!(
        "Conclusion (paper Section 5.2.1): interface hardening narrows but does not\n\
         close the attack surface; a behavioural detector like ANVIL does."
    );
    write_json(
        "pagemap_hardening",
        &json!({ "experiment": "pagemap_hardening", "rows": records }),
    );
}
