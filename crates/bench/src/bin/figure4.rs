//! **Figure 4** — Sensitivity of execution overheads to potential future
//! attacks.
//!
//! The paper's Section 4.5 scenario: future DRAM flips with 110K accesses.
//! `ANVIL-heavy` (tc = ts = 2 ms) catches attacks twice as fast as today's;
//! `ANVIL-light` (threshold 10K) catches attacks spread across a whole
//! refresh window. Both cost a little more than the baseline, heavy more
//! than light, on bzip2 / gcc / gobmk / libquantum / perlbench.

use anvil_bench::{normalized_time_target, write_json, Scale, Table};
use anvil_core::{AnvilConfig, PlatformConfig};
use anvil_workloads::SpecBenchmark;
use serde_json::json;

fn main() {
    let scale = Scale::from_args();
    let target_ms = scale.ms(250.0).max(80.0);

    let configs: [(&str, AnvilConfig); 3] = [
        ("ANVIL-baseline", AnvilConfig::baseline()),
        ("ANVIL-light", AnvilConfig::light()),
        ("ANVIL-heavy", AnvilConfig::heavy()),
    ];

    let mut table = Table::new(
        "Figure 4: Normalized Execution Time under future-attack configurations",
        &["Benchmark", "ANVIL-baseline", "ANVIL-light", "ANVIL-heavy"],
    );
    let mut records = Vec::new();

    for bench in SpecBenchmark::figure4_subset() {
        let mut row = vec![bench.name().to_string()];
        let mut entry = json!({ "benchmark": bench.name() });
        for (label, cfg) in configs {
            let t = normalized_time_target(bench, PlatformConfig::with_anvil(cfg), target_ms, 23);
            row.push(format!("{t:.4}"));
            entry[label] = json!(t);
            eprintln!("  [{} / {label}] {t:.4}", bench.name());
        }
        table.row(&row);
        records.push(entry);
    }

    table.print();
    println!(
        "Paper: overheads grow only slightly for the nimbler configurations, with the\n\
         2 ms sampling period (ANVIL-heavy) having the larger impact."
    );
    write_json(
        "figure4",
        &json!({ "experiment": "figure4", "rows": records, "target_ms": target_ms }),
    );
}
