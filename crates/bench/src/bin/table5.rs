//! **Table 5** — False-positive refresh rates for ANVIL-light and
//! ANVIL-heavy.
//!
//! Paper values (refreshes/second):
//!
//! | Benchmark  | ANVIL-light | ANVIL-heavy |
//! |------------|-------------|-------------|
//! | bzip2      | 1.61        | 1.09        |
//! | gcc        | 7.12        | 1.88        |
//! | gobmk      | 0.28        | 0.84        |
//! | libquantum | 0.13        | 0.08        |
//! | perlbench  | 0.06        | 0.00        |
//!
//! Light's longer sampling at a lower threshold raises its FP rate; heavy's
//! short window lowers the chance of spurious address locality.

use anvil_bench::{false_positive_rate, write_json, Scale, Table};
use anvil_core::AnvilConfig;
use anvil_workloads::SpecBenchmark;
use serde_json::json;

fn main() {
    let scale = Scale::from_args();
    let run_ms = scale.ms(2_000.0).max(400.0);

    let paper: &[(&str, f64, f64)] = &[
        ("bzip2", 1.61, 1.09),
        ("gcc", 7.12, 1.88),
        ("gobmk", 0.28, 0.84),
        ("libquantum", 0.13, 0.08),
        ("perlbench", 0.06, 0.00),
    ];

    let mut table = Table::new(
        "Table 5: False Positive Refreshes for ANVIL-light / ANVIL-heavy (per second)",
        &[
            "Benchmark",
            "light (measured)",
            "heavy (measured)",
            "light (paper)",
            "heavy (paper)",
        ],
    );
    let mut records = Vec::new();
    for bench in SpecBenchmark::figure4_subset() {
        let light = false_positive_rate(bench, AnvilConfig::light(), run_ms, 29);
        let heavy = false_positive_rate(bench, AnvilConfig::heavy(), run_ms, 29);
        let (_, pl, ph) = paper.iter().find(|(n, _, _)| *n == bench.name()).unwrap();
        table.row(&[
            bench.name().to_string(),
            format!("{light:.2}"),
            format!("{heavy:.2}"),
            format!("{pl:.2}"),
            format!("{ph:.2}"),
        ]);
        records.push(json!({
            "benchmark": bench.name(),
            "light": light,
            "heavy": heavy,
            "paper_light": pl,
            "paper_heavy": ph,
        }));
        eprintln!(
            "  [{}] light {:.2}/s, heavy {:.2}/s",
            bench.name(),
            light,
            heavy
        );
    }

    table.print();
    println!("Paper: both configurations stay innocuous (a handful of extra reads/sec).");
    write_json(
        "table5",
        &json!({ "experiment": "table5", "rows": records }),
    );
}
