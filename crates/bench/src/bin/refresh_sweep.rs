//! **Section 2.1** — Rowhammering under increased refresh rates.
//!
//! The paper's claim: the vendors' doubled refresh rate (32 ms) is
//! insufficient — double-sided CLFLUSH hammering flips bits in 15 ms, and
//! "it is still possible to induce bit flips ... even when the refresh
//! period is as low as 16 ms" (Section 5.2.1). This sweep hammers the same
//! module at 64/32/16/8/4 ms retention windows and reports whether the
//! attack still lands.

use anvil_attacks::{hammer_until_flip, StandaloneHarness};
use anvil_bench::{write_json, AttackKind, Scale, Table};
use anvil_mem::{AllocationPolicy, MemoryConfig};
use serde_json::json;

fn main() {
    let scale = Scale::from_args();
    let candidates = scale.ops(12).max(4) as usize;
    let mut table = Table::new(
        "Section 2.1: Double-sided CLFLUSH hammering vs. refresh period",
        &[
            "Refresh Period",
            "Bit Flip?",
            "Time to First Flip",
            "Aggressor Accesses",
        ],
    );
    let mut records = Vec::new();

    for refresh_ms in [64.0, 32.0, 16.0, 8.0, 4.0] {
        let base = MemoryConfig::paper_platform();
        let mut config = base;
        config.dram = config.dram.with_refresh_ms(base.clock, refresh_ms);

        let mut best: Option<(u64, f64)> = None;
        for pair in 0..candidates {
            let mut harness = StandaloneHarness::new(config, AllocationPolicy::Contiguous);
            let mut attack = AttackKind::DoubleSided.build(pair);
            if harness.prepare(attack.as_mut()).is_err() {
                continue;
            }
            // Two full retention windows' worth of hammering is plenty: if
            // it has not flipped by then, refresh is winning.
            let budget = 300_000;
            let r = hammer_until_flip(attack.as_mut(), &mut harness, budget);
            if r.flipped {
                let ms = r.time_to_first_flip_ms(&base.clock).expect("flipped");
                if best.map_or(true, |(a, _)| r.aggressor_accesses < a) {
                    best = Some((r.aggressor_accesses, ms));
                }
            }
        }

        match best {
            Some((accesses, ms)) => {
                table.row(&[
                    format!("{refresh_ms:.0} ms"),
                    "YES".into(),
                    format!("{ms:.1} ms"),
                    format!("{}K", accesses / 1000),
                ]);
                records.push(json!({
                    "refresh_ms": refresh_ms, "flipped": true,
                    "time_ms": ms, "accesses": accesses,
                }));
            }
            None => {
                table.row(&[
                    format!("{refresh_ms:.0} ms"),
                    "no".into(),
                    "-".into(),
                    "-".into(),
                ]);
                records.push(json!({ "refresh_ms": refresh_ms, "flipped": false }));
            }
        }
    }

    table.print();
    println!(
        "Paper: flips at 32 ms (attack lands in 15 ms) and even at 16 ms; only far\n\
         faster refresh stops the attack, at >4x the refresh power (Section 2.1)."
    );
    write_json(
        "refresh_sweep",
        &json!({ "experiment": "refresh_sweep", "rows": records }),
    );
}
