//! **Section 4.2** — Zero false negatives across the attack matrix.
//!
//! Runs every attack under every ANVIL configuration, with and without
//! background load, and verifies: detected, zero bit flips. This is the
//! paper's claim that ANVIL "successfully thwarts all of the known
//! rowhammer attacks on commodity systems", including the adaptive
//! attacker scenarios of Section 4.5 (faster flips, spread-out accesses)
//! that the light/heavy configurations target.

use anvil_bench::{detection_run, write_json, AttackKind, Scale, Table};
use anvil_core::AnvilConfig;
use serde_json::json;

/// Whether `config` is designed to catch this attack. ANVIL-heavy shrinks
/// its windows for *fast* future attacks but keeps the 20K threshold, so a
/// slow CLFLUSH-free hammer (~19K misses / 2 ms) can legitimately stay
/// below its stage-1 trigger — the paper's Section 4.5 frames heavy and
/// light as complements to the baseline, not replacements.
fn in_scope(config: &str, kind: AttackKind) -> bool {
    !(config == "heavy" && matches!(kind, AttackKind::ClflushFree))
}

fn main() {
    let scale = Scale::from_args();
    let run_ms = scale.ms(200.0).max(100.0);

    let configs: [(&str, AnvilConfig); 3] = [
        ("baseline", AnvilConfig::baseline()),
        ("light", AnvilConfig::light()),
        ("heavy", AnvilConfig::heavy()),
    ];

    let mut table = Table::new(
        "Section 4.2/4.5: Detection matrix (attack x config x load)",
        &["Attack", "Config", "Load", "Detected at", "Flips"],
    );
    let mut records = Vec::new();
    let mut misses = 0u32;

    for kind in AttackKind::all() {
        for (label, cfg) in configs {
            for heavy in [false, true] {
                let s = detection_run(kind, cfg, heavy, run_ms, 3);
                let scoped = in_scope(label, kind);
                let detected = s.detect_ms.map_or(
                    if scoped {
                        "NOT DETECTED"
                    } else {
                        "below heavy's threshold (by design)"
                    }
                    .into(),
                    |d| format!("{d:.1} ms"),
                );
                if scoped && (s.detect_ms.is_none() || s.flips > 0) {
                    misses += 1;
                }
                table.row(&[
                    kind.label().to_string(),
                    label.to_string(),
                    if heavy { "heavy" } else { "light" }.to_string(),
                    detected,
                    s.flips.to_string(),
                ]);
                records.push(json!({
                    "attack": kind.label(),
                    "config": label,
                    "heavy_load": heavy,
                    "detect_ms": s.detect_ms,
                    "flips": s.flips,
                }));
                eprintln!(
                    "  [{} / {label} / {}] {:?}, flips {}",
                    kind.label(),
                    if heavy { "heavy" } else { "light" },
                    s.detect_ms,
                    s.flips
                );
            }
        }
    }

    table.print();
    println!(
        "{}",
        if misses == 0 {
            "ZERO FALSE NEGATIVES, ZERO FLIPS in every in-scope cell — matches Section 4.2.\n\
             (ANVIL-heavy intentionally trades the slow-attack corner for 3x faster\n\
             response; deploy it alongside, not instead of, the baseline — Section 4.5.)"
        } else {
            "WARNING: some in-scope attacks were missed or flipped bits."
        }
    );
    write_json(
        "detection_matrix",
        &json!({ "experiment": "detection_matrix", "rows": records, "misses": misses }),
    );
}
