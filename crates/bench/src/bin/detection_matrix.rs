//! **Section 4.2** — Zero false negatives across the attack matrix.
//!
//! Runs every attack under every ANVIL configuration, with and without
//! background load, and verifies: detected, zero bit flips. This is the
//! paper's claim that ANVIL "successfully thwarts all of the known
//! rowhammer attacks on commodity systems", including the adaptive
//! attacker scenarios of Section 4.5 (faster flips, spread-out accesses)
//! that the light/heavy configurations target. The cells are independent
//! detection runs, so `--threads N` fans them across cores without
//! changing the record.

use anvil_bench::{campaigns, write_json, CampaignArgs, Table};

fn main() {
    let args = CampaignArgs::from_env();
    let run_ms = args.scale().ms(200.0).max(100.0);
    let out = campaigns::detection_matrix(run_ms, args.threads);

    let mut table = Table::new(
        "Section 4.2/4.5: Detection matrix (attack x config x load)",
        &["Attack", "Config", "Load", "Detected at", "Flips"],
    );
    for c in &out.cells {
        let detected = c.summary.detect_ms.map_or(
            if c.in_scope {
                "NOT DETECTED"
            } else {
                "below heavy's threshold (by design)"
            }
            .into(),
            |d| format!("{d:.1} ms"),
        );
        table.row(&[
            c.summary.attack.clone(),
            c.config.to_string(),
            if c.summary.heavy_load {
                "heavy"
            } else {
                "light"
            }
            .to_string(),
            detected,
            c.summary.flips.to_string(),
        ]);
    }

    table.print();
    println!(
        "{}",
        if out.misses == 0 {
            "ZERO FALSE NEGATIVES, ZERO FLIPS in every in-scope cell — matches Section 4.2.\n\
             (ANVIL-heavy intentionally trades the slow-attack corner for 3x faster\n\
             response; deploy it alongside, not instead of, the baseline — Section 4.5.)"
        } else {
            "WARNING: some in-scope attacks were missed or flipped bits."
        }
    );
    write_json("detection_matrix", &out.json);
}
