//! **Table 3** — Rowhammer detection results.
//!
//! Paper values:
//!
//! | Benchmark                 | Avg time to detect | Refreshes / 64 ms | Flips |
//! |---------------------------|--------------------|-------------------|-------|
//! | CLFLUSH (heavy load)      | 12.8 ms            | 12.35             | 0     |
//! | CLFLUSH (light load)      | 12.3 ms            | 10.3              | 0     |
//! | CLFLUSH-free (heavy load) | 35.3 ms            | 4.53              | 0     |
//! | CLFLUSH-free (light load) | 22.85 ms           | 5.10              | 0     |
//!
//! Heavy load = the attack plus mcf, libquantum and omnetpp running
//! simultaneously (Section 4.2).

use anvil_bench::{detection_run, write_json, AttackKind, Scale, Table};
use anvil_core::AnvilConfig;
use serde_json::json;

fn main() {
    let scale = Scale::from_args();
    let trials = scale.ops(3).max(1);
    let run_ms = scale.ms(200.0).max(80.0);

    let mut table = Table::new(
        "Table 3: Rowhammer Detection Results (under ANVIL-baseline)",
        &[
            "Benchmark",
            "Avg Time to Detect",
            "Refreshes per 64ms",
            "Total Bit Flips",
        ],
    );
    let mut records = Vec::new();

    for (kind, kind_label) in [
        (AttackKind::DoubleSided, "CLFLUSH"),
        (AttackKind::ClflushFree, "CLFLUSH-free"),
    ] {
        for heavy in [true, false] {
            let mut detect_sum = 0.0;
            let mut detected = 0u64;
            let mut refresh_sum = 0.0;
            let mut flips = 0u64;
            for t in 0..trials {
                let s = detection_run(kind, AnvilConfig::baseline(), heavy, run_ms, 1 + t);
                if let Some(d) = s.detect_ms {
                    detect_sum += d;
                    detected += 1;
                }
                refresh_sum += s.refreshes_per_window;
                flips += s.flips;
            }
            let load = if heavy { "Heavy Load" } else { "Light Load" };
            let avg_detect = if detected > 0 {
                format!("{:.1} ms", detect_sum / detected as f64)
            } else {
                "not detected".to_string()
            };
            table.row(&[
                format!("{kind_label} ({load})"),
                avg_detect.clone(),
                format!("{:.2}", refresh_sum / trials as f64),
                flips.to_string(),
            ]);
            records.push(json!({
                "attack": kind_label,
                "heavy_load": heavy,
                "avg_detect_ms": if detected > 0 { Some(detect_sum / detected as f64) } else { None },
                "refreshes_per_64ms": refresh_sum / trials as f64,
                "flips": flips,
                "trials": trials,
            }));
        }
    }

    table.print();
    println!(
        "Paper: 12.8/12.3 ms (CLFLUSH heavy/light), 35.3/22.85 ms (CLFLUSH-free),\n\
         refresh rates 12.35/10.3/4.53/5.10 per 64 ms, zero flips everywhere."
    );
    write_json(
        "table3",
        &json!({ "experiment": "table3", "rows": records }),
    );
}
