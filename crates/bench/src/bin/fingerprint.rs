//! **Section 2.2** — Replacement-policy fingerprinting.
//!
//! The paper reverse-engineers the Sandy Bridge LLC policy by correlating
//! hardware hit/miss traces with "different cache replacement policy
//! simulators that we built", concluding it favors Bit-PLRU. This
//! experiment reruns that methodology across a full oracle x candidate
//! matrix: every deterministic policy must be identified exactly, and a
//! random-replacement oracle must match nothing perfectly.

use anvil_bench::{write_json, Table};
use anvil_cache::{fingerprint, Cache, CacheConfig, PolicyKind};
use serde_json::json;

fn main() {
    // An LLC-slice-shaped cache: 12 ways, Sandy Bridge line size.
    let geometry = |policy| CacheConfig {
        capacity_bytes: 12 * 64 * 128,
        ways: 12,
        line_bytes: 64,
        policy,
        latency: 29,
    };

    let candidates = PolicyKind::deterministic_candidates();
    let mut oracles = candidates.clone();
    oracles.push(PolicyKind::Random { seed: 77 });

    let mut headers: Vec<String> = vec!["oracle \\ candidate".into()];
    headers.extend(candidates.iter().map(|c| c.to_string()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "Section 2.2: Policy fingerprinting (trace agreement per candidate)",
        &header_refs,
    );

    let mut records = Vec::new();
    let mut correct = 0usize;
    for &oracle_kind in &oracles {
        let cfg = geometry(oracle_kind);
        let mut oracle = Cache::new(cfg);
        let report = fingerprint(&mut oracle, cfg, &candidates);
        let mut row = vec![oracle_kind.to_string()];
        for cand in &candidates {
            let score = report
                .scores
                .iter()
                .find(|(k, _)| k == cand)
                .map(|(_, s)| *s)
                .unwrap_or(0.0);
            let marker = if report.best() == *cand { "*" } else { " " };
            row.push(format!("{score:.3}{marker}"));
        }
        table.row(&row);
        let identified = report.best() == oracle_kind;
        if identified || matches!(oracle_kind, PolicyKind::Random { .. }) {
            correct += 1;
        }
        records.push(json!({
            "oracle": oracle_kind.to_string(),
            "best": report.best().to_string(),
            "exact": report.exact_match(),
            "scores": report.scores.iter().map(|(k, s)| json!({"candidate": k.to_string(), "agreement": s})).collect::<Vec<_>>(),
        }));
    }

    table.print();
    println!(
        "(* = best match; every deterministic oracle must be identified exactly, and\n\
         the Bit-PLRU row is the Sandy Bridge finding of Section 2.2.)  {}/{} correct.",
        correct,
        oracles.len()
    );
    write_json(
        "fingerprint",
        &json!({ "experiment": "fingerprint", "rows": records }),
    );
}
