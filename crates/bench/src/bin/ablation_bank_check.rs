//! **Ablation** — the bank-locality check (Section 3.1).
//!
//! The paper argues bank locality "can be used to differentiate between
//! 'real' rowhammering and false positives that are caused by thrashing
//! access patterns". This ablation disables the check
//! (`bank_support_min = 0`) and compares false-positive rates and attack
//! detection with the shipped configuration.

use anvil_bench::{detection_run, false_positive_rate, write_json, AttackKind, Scale, Table};
use anvil_core::AnvilConfig;
use anvil_workloads::SpecBenchmark;
use serde_json::json;

fn main() {
    let scale = Scale::from_args();
    let fp_ms = scale.ms(2_000.0).max(400.0);

    let with_check = AnvilConfig::baseline();
    let mut without_check = AnvilConfig::baseline();
    without_check.bank_support_min = 0;

    let mut table = Table::new(
        "Ablation: bank-locality check (false-positive refreshes/sec)",
        &["Benchmark", "with bank check", "without bank check"],
    );
    let mut records = Vec::new();
    for bench in [
        SpecBenchmark::Bzip2,
        SpecBenchmark::Gcc,
        SpecBenchmark::Mcf,
        SpecBenchmark::Xalancbmk,
        SpecBenchmark::Libquantum,
    ] {
        let with_rate = false_positive_rate(bench, with_check, fp_ms, 41);
        let without_rate = false_positive_rate(bench, without_check, fp_ms, 41);
        table.row(&[
            bench.name().to_string(),
            format!("{with_rate:.2}"),
            format!("{without_rate:.2}"),
        ]);
        records.push(json!({
            "benchmark": bench.name(),
            "with_check": with_rate,
            "without_check": without_rate,
        }));
        eprintln!(
            "  [{}] with {:.2}, without {:.2}",
            bench.name(),
            with_rate,
            without_rate
        );
    }
    table.print();

    // Detection must be unaffected: the attack has inherent bank locality.
    let with_det = detection_run(
        AttackKind::DoubleSided,
        with_check,
        false,
        scale.ms(100.0).max(60.0),
        1,
    );
    let without_det = detection_run(
        AttackKind::DoubleSided,
        without_check,
        false,
        scale.ms(100.0).max(60.0),
        1,
    );
    println!(
        "Attack detection: with check {:.1} ms, without {:.1} ms (flips {}/{}).",
        with_det.detect_ms.unwrap_or(f64::NAN),
        without_det.detect_ms.unwrap_or(f64::NAN),
        with_det.flips,
        without_det.flips,
    );
    println!("Expected: the check lowers false positives and never hurts detection.");

    write_json(
        "ablation_bank_check",
        &json!({
            "experiment": "ablation_bank_check",
            "rows": records,
            "detect_with_ms": with_det.detect_ms,
            "detect_without_ms": without_det.detect_ms,
        }),
    );
}
