//! **Evasion campaign** — the adaptive-adversary suite against the paper
//! detector and its hardened variant, on DRAM that flips at half the
//! paper's activation count.
//!
//! Each strategy in `anvil-adversary` targets one detector blind spot:
//! duty-cycled bursts straddle stage-1 window boundaries, the threshold
//! prober binary-searches the highest pace that never trips stage 1,
//! camouflage dilutes the PEBS sample mix with row-buffer-hit filler, and
//! distributed many-sided hammering spreads activations so no row
//! dominates the histogram. The matrix runs every strategy against
//! [`anvil_core::AnvilConfig::baseline`] and
//! [`anvil_core::AnvilConfig::hardened`] on the paper's "future DRAM"
//! (Section 4.5: flips at 110K double-sided activations).
//!
//! A cell is *defended* when no bit flipped and either a detection fired
//! or the guarantee-envelope auditor proves the strategy's undetectable
//! activation budget cannot reach the 220K design threshold. The campaign
//! exits non-zero when any hardened cell flips or escapes both proofs, or
//! when the baseline never loses a cell the hardened detector defends —
//! the suite must *demonstrate* that the hardening matters, not assume it.
//!
//! The campaign seed is threaded through the DRAM fault map and the
//! hardened detector's window-phase schedule, so `results/evasion.json`
//! reproduces byte-for-byte with the same binary and seed — at any
//! `--threads` count, since the cells are independent:
//!
//! ```bash
//! cargo run --release -p anvil-bench --bin evasion            # full matrix
//! cargo run --release -p anvil-bench --bin evasion -- --smoke # CI subset
//! cargo run --release -p anvil-bench --bin evasion -- --seed 7 --threads 4
//! ```

use anvil_bench::{campaigns, write_json, CampaignArgs, Table};

/// Default campaign seed; override with `--seed N`.
const DEFAULT_SEED: u64 = 0xE5A51;

fn main() {
    let args = CampaignArgs::from_env();
    let seed = args.seed_or(DEFAULT_SEED);
    // Long enough for the slowest flip in the matrix (distributed
    // many-sided reaches 110K per-pair activations at ~56 ms).
    // `--windows N` overrides the duration directly (6 ms per stage-1
    // window).
    let run_ms = args
        .windows
        .map_or(args.scale().ms(80.0).max(70.0), |w| w as f64 * 6.0);
    let out = campaigns::evasion(args.smoke, run_ms, seed, args.threads);

    let mut table = Table::new(
        "Evasion campaign: adaptive adversaries on future DRAM (110K flips)",
        &[
            "Strategy",
            "Detector",
            "Detected at",
            "Stage-1 trips",
            "Carry",
            "Ledger",
            "Flips",
            "Budget@220K",
            "Outcome",
        ],
    );
    for c in &out.cells {
        table.row(&[
            c.strategy.to_string(),
            c.detector.to_string(),
            c.detect_ms.map_or("never".into(), |d| format!("{d:.1} ms")),
            c.stats.threshold_crossings.to_string(),
            c.stats.carry_crossings.to_string(),
            c.stats.ledger_flags.to_string(),
            c.flips.to_string(),
            format!("{}", c.budget),
            c.outcome.to_string(),
        ]);
    }

    table.print();
    println!(
        "{}",
        if out.hardened_failures == 0 && out.demonstrated {
            "HARDENED DETECTOR DEFENDS EVERY CELL: each strategy is either\n\
             detected (zero flips) or envelope-proven unable to reach the\n\
             220K design threshold — while the paper baseline loses at\n\
             least one of the same cells."
        } else if out.hardened_failures > 0 {
            "FAILURE: a hardened cell flipped bits or escaped both the\n\
             dynamic detection and the envelope proof."
        } else {
            "FAILURE: the baseline lost no cell the hardened detector\n\
             defends — the campaign demonstrates nothing."
        }
    );
    for p in &out.panics {
        eprintln!("evasion: {p}");
    }
    write_json("evasion", &out.json);
    if out.hardened_failures > 0 || !out.demonstrated {
        std::process::exit(1);
    }
}
