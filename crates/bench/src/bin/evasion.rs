//! **Evasion campaign** — the adaptive-adversary suite against the paper
//! detector and its hardened variant, on DRAM that flips at half the
//! paper's activation count.
//!
//! Each strategy in `anvil-adversary` targets one detector blind spot:
//! duty-cycled bursts straddle stage-1 window boundaries, the threshold
//! prober binary-searches the highest pace that never trips stage 1,
//! camouflage dilutes the PEBS sample mix with row-buffer-hit filler, and
//! distributed many-sided hammering spreads activations so no row
//! dominates the histogram. The matrix runs every strategy against
//! [`AnvilConfig::baseline`] and [`AnvilConfig::hardened`] on the paper's
//! "future DRAM" (Section 4.5: flips at 110K double-sided activations).
//!
//! A cell is *defended* when no bit flipped and either a detection fired
//! or the guarantee-envelope auditor proves the strategy's undetectable
//! activation budget cannot reach the 220K design threshold. The campaign
//! exits non-zero when any hardened cell flips or escapes both proofs, or
//! when the baseline never loses a cell the hardened detector defends —
//! the suite must *demonstrate* that the hardening matters, not assume it.
//!
//! The campaign seed is threaded through the DRAM fault map and the
//! hardened detector's window-phase schedule, so `results/evasion.json`
//! reproduces byte-for-byte with the same binary and seed:
//!
//! ```bash
//! cargo run --release -p anvil-bench --bin evasion            # full matrix
//! cargo run --release -p anvil-bench --bin evasion -- --smoke # CI subset
//! cargo run --release -p anvil-bench --bin evasion -- --seed 7
//! ```

use anvil_adversary::{CamouflageHammer, DistributedManySided, DutyCycleHammer, PacedHammer};
use anvil_attacks::Attack;
use anvil_bench::{windows_from_args, write_json, Scale, Table};
use anvil_core::{
    AnvilConfig, DetectorStats, EnvelopeParams, GuaranteeEnvelope, Platform, PlatformConfig,
};
use anvil_dram::DisturbanceConfig;
use anvil_mem::MemoryConfig;
use serde_json::json;

/// Default campaign seed; override with `--seed N`.
const DEFAULT_SEED: u64 = 0xE5A51;

/// How long each probe of the threshold-prober's binary search runs.
const PROBE_MS: f64 = 30.0;

/// The evasive strategies, each mapped to the envelope archetype whose
/// budget bounds it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Strategy {
    /// Bursts straddling stage-1 window boundaries.
    DutyCycle,
    /// Constant pace binary-searched to the stage-1 trip point.
    ThresholdProber,
    /// Aggressor pair hidden in a streaming row-buffer-hit sweep.
    Camouflage,
    /// Round-robin over many pairs in distinct banks.
    Distributed,
}

impl Strategy {
    /// Full-matrix order.
    fn all() -> [Strategy; 4] {
        [
            Strategy::DutyCycle,
            Strategy::ThresholdProber,
            Strategy::Camouflage,
            Strategy::Distributed,
        ]
    }

    /// Display name (matches the attack's `name()`).
    fn label(self) -> &'static str {
        match self {
            Strategy::DutyCycle => "duty-cycle-hammer",
            Strategy::ThresholdProber => "threshold-prober",
            Strategy::Camouflage => "camouflage-hammer",
            Strategy::Distributed => "distributed-many-sided",
        }
    }

    /// Builds the attack; `pace` is the prober's searched pace.
    fn build(self, pace: Option<u64>) -> Box<dyn Attack> {
        match self {
            Strategy::DutyCycle => Box::new(DutyCycleHammer::new()),
            Strategy::ThresholdProber => {
                let mut a = PacedHammer::new();
                if let Some(p) = pace {
                    a = a.with_misses_per_window(p);
                }
                Box::new(a)
            }
            Strategy::Camouflage => Box::new(CamouflageHammer::new()),
            Strategy::Distributed => Box::new(DistributedManySided::new()),
        }
    }

    /// The audited budget bounding this strategy.
    fn budget(self, env: &GuaranteeEnvelope) -> u64 {
        match self {
            Strategy::DutyCycle => env.straddle_budget,
            Strategy::ThresholdProber => env.sustained_budget,
            Strategy::Camouflage => env.camouflage_budget,
            Strategy::Distributed => env.distributed_budget,
        }
    }
}

/// Parses `--seed N` (default [`DEFAULT_SEED`]).
fn seed_from_args() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// Threads the campaign seed into the detector (window-phase schedule).
fn campaign_config(mut cfg: AnvilConfig, seed: u64) -> AnvilConfig {
    cfg.hardening.phase_seed = seed;
    cfg
}

/// A protected platform on future-DRAM (110K flip threshold), with the
/// campaign seed folded into the DRAM fault map.
fn future_platform(cfg: &AnvilConfig, seed: u64) -> Platform {
    let mut pc = PlatformConfig::with_anvil(*cfg);
    pc.memory.dram.disturbance = DisturbanceConfig::future_half_threshold();
    pc.memory.dram.seed ^= seed;
    Platform::new(pc)
}

/// Binary-searches the highest pace (misses per assumed 6 ms window)
/// whose stage-1 crossing count stays at zero over a probe run — the
/// threshold-prober's driver loop, run against the *actual* detector the
/// adversary faces.
fn quiet_pace(cfg: &AnvilConfig, seed: u64) -> u64 {
    let trips = |pace: u64| {
        let mut p = future_platform(cfg, seed);
        p.add_attack(Box::new(PacedHammer::new().with_misses_per_window(pace)))
            .expect("attack prepares on open platform");
        p.run_ms(PROBE_MS).expect("probe run completes");
        p.detector_stats()
            .expect("anvil loaded")
            .threshold_crossings
            > 0
    };
    let (mut lo, mut hi) = (2_000u64, 40_000u64);
    if trips(lo) {
        return lo;
    }
    while hi - lo > 250 {
        let mid = (lo + hi) / 2;
        if trips(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    lo
}

/// One campaign cell: run `strategy` under `cfg` for `ms`.
fn run_cell(
    strategy: Strategy,
    pace: Option<u64>,
    cfg: &AnvilConfig,
    seed: u64,
    ms: f64,
) -> (Option<f64>, u64, DetectorStats) {
    let mut p = future_platform(cfg, seed);
    p.add_attack(strategy.build(pace))
        .expect("attack prepares on open platform");
    p.run_ms(ms).expect("run completes");
    let stats = *p.detector_stats().expect("anvil loaded");
    (p.first_detection_ms(), p.total_flips(), stats)
}

#[allow(clippy::too_many_lines)]
fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = Scale::from_args();
    let seed = seed_from_args();
    // Long enough for the slowest flip in the matrix (distributed
    // many-sided reaches 110K per-pair activations at ~56 ms).
    // `--windows N` overrides the duration directly (6 ms per stage-1
    // window).
    let run_ms = windows_from_args().map_or(scale.ms(80.0).max(70.0), |w| w as f64 * 6.0);
    let strategies: Vec<Strategy> = if smoke {
        // One stage-1 evasion (carry + jitter) and one stage-2 evasion
        // (ledger): covers both hardening layers cheaply.
        vec![Strategy::DutyCycle, Strategy::Distributed]
    } else {
        Strategy::all().to_vec()
    };

    let params = EnvelopeParams::paper_platform();
    let clock = MemoryConfig::paper_platform().clock;
    let future_flip = DisturbanceConfig::future_half_threshold().double_sided_threshold;
    let detectors = [
        ("baseline", campaign_config(AnvilConfig::baseline(), seed)),
        ("hardened", campaign_config(AnvilConfig::hardened(), seed)),
    ];
    let envelopes: Vec<GuaranteeEnvelope> = detectors
        .iter()
        .map(|(_, cfg)| GuaranteeEnvelope::audit(cfg, &clock, &params))
        .collect();

    let mut table = Table::new(
        "Evasion campaign: adaptive adversaries on future DRAM (110K flips)",
        &[
            "Strategy",
            "Detector",
            "Detected at",
            "Stage-1 trips",
            "Carry",
            "Ledger",
            "Flips",
            "Budget@220K",
            "Outcome",
        ],
    );
    let mut cells = Vec::new();
    let mut hardened_failures = 0u32;
    let mut baseline_losses = 0u32;
    let mut demonstrated = false;

    for &strategy in &strategies {
        let mut baseline_lost = false;
        for (i, (det, cfg)) in detectors.iter().enumerate() {
            let budget = strategy.budget(&envelopes[i]);
            let proven = budget < params.flip_threshold;
            let pace = (strategy == Strategy::ThresholdProber).then(|| quiet_pace(cfg, seed));
            let (detect_ms, flips, stats) = run_cell(strategy, pace, cfg, seed, run_ms);
            let detected = detect_ms.is_some();
            let defended = flips == 0 && (detected || proven);
            let outcome = match (flips, detected, proven) {
                (0, true, _) => "detected",
                (0, false, true) => "enveloped",
                (0, false, false) => "UNPROVEN",
                (_, true, _) => "FLIPPED (late)",
                (_, false, _) => "EVADED",
            };
            if *det == "hardened" {
                if !defended {
                    hardened_failures += 1;
                } else if baseline_lost {
                    demonstrated = true;
                }
            } else if !defended {
                baseline_lost = true;
                baseline_losses += 1;
            }
            table.row(&[
                strategy.label().to_string(),
                (*det).to_string(),
                detect_ms.map_or("never".into(), |d| format!("{d:.1} ms")),
                stats.threshold_crossings.to_string(),
                stats.carry_crossings.to_string(),
                stats.ledger_flags.to_string(),
                flips.to_string(),
                format!("{budget}"),
                outcome.to_string(),
            ]);
            eprintln!(
                "  [{} / {det}] detect {detect_ms:?}, flips {flips}, \
                 crossings {} (carry {}), ledger {}, budget {budget}",
                strategy.label(),
                stats.threshold_crossings,
                stats.carry_crossings,
                stats.ledger_flags,
            );
            cells.push(json!({
                "strategy": strategy.label(),
                "detector": det,
                "pace": pace,
                "detect_ms": detect_ms,
                "flips": flips,
                "threshold_crossings": stats.threshold_crossings,
                "carry_crossings": stats.carry_crossings,
                "ledger_flags": stats.ledger_flags,
                "detections": stats.detections,
                "selective_refreshes": stats.selective_refreshes,
                "envelope_budget": budget,
                "envelope_proven": proven,
                "defended": defended,
                "outcome": outcome,
            }));
        }
    }

    table.print();
    println!(
        "{}",
        if hardened_failures == 0 && demonstrated {
            "HARDENED DETECTOR DEFENDS EVERY CELL: each strategy is either\n\
             detected (zero flips) or envelope-proven unable to reach the\n\
             220K design threshold — while the paper baseline loses at\n\
             least one of the same cells."
        } else if hardened_failures > 0 {
            "FAILURE: a hardened cell flipped bits or escaped both the\n\
             dynamic detection and the envelope proof."
        } else {
            "FAILURE: the baseline lost no cell the hardened detector\n\
             defends — the campaign demonstrates nothing."
        }
    );
    write_json(
        "evasion",
        &json!({
            "experiment": "evasion",
            "seed": seed,
            "run_ms": run_ms,
            "smoke": smoke,
            "future_flip_threshold": future_flip,
            "design_flip_threshold": params.flip_threshold,
            "envelopes": {
                "baseline": envelopes[0],
                "hardened": envelopes[1],
            },
            "baseline_losses": baseline_losses,
            "hardened_failures": hardened_failures,
            "demonstrated": demonstrated,
            "cells": cells,
        }),
    );
    if hardened_failures > 0 || !demonstrated {
        std::process::exit(1);
    }
}
