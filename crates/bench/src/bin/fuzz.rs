//! **Coverage-guided guarantee fuzzing campaign** — mutate whole
//! scenarios against the envelope oracle, shrink what breaks, commit
//! what doesn't.
//!
//! Two campaigns run back to back:
//!
//! * **standard** — fuzzing around the hardened shipping configuration
//!   on the paper platform, where the guarantee envelope holds. Mutants
//!   perturb the adversary specs, the schedule, the fault plan, the
//!   detector configuration, and the seed; coverage is the bucketed
//!   detector-state signature and mutation energy concentrates near the
//!   symbolic guarantee frontier. Any flip under a supposedly-safe
//!   configuration is shrunk to a 1-minimal replayable counterexample —
//!   and fails the campaign. Novel zero-flip cases land in `corpus/`,
//!   the committed regression corpus replayed by `tests/fuzz_corpus.rs`.
//! * **canary** — the same fuzzer pointed at a domain with a planted
//!   conviction blind spot (`bank_support_min` and `ledger_min_windows`
//!   are raised past reach, both invisible to the envelope audit). The
//!   campaign *must* find a supposedly-safe flipping scenario and shrink
//!   it to ≤ 10 events; failing to is the gate failure. This is the
//!   end-to-end proof that the find-and-shrink pipeline actually works.
//!
//! Candidate batches are generated before dispatch and results fold in
//! submission order, so `results/fuzz.json` reproduces byte-for-byte
//! with the same binary and seed — at any `--threads` count:
//!
//! ```bash
//! cargo run --release -p anvil-bench --bin fuzz            # full budget
//! cargo run --release -p anvil-bench --bin fuzz -- --smoke # CI subset
//! cargo run --release -p anvil-bench --bin fuzz -- --seed 7 --threads 4
//! ```

use anvil_bench::{campaigns, write_json, CampaignArgs, Table};
use anvil_fuzz::write_dir;
use std::path::Path;

/// Default campaign seed; override with `--seed N`.
const DEFAULT_SEED: u64 = 0xF0229;

fn main() {
    let args = CampaignArgs::from_env();
    let seed = args.seed_or(DEFAULT_SEED);
    let out = campaigns::fuzz(args.smoke, seed, args.threads);

    let mut table = Table::new(
        "Coverage-guided guarantee fuzzing: oracle outcomes per domain",
        &[
            "Domain",
            "Executed",
            "Rejected",
            "Coverage",
            "Novel",
            "Leaks",
            "Cell fails",
            "Counterexamples",
            "Corpus",
        ],
    );
    for r in [&out.standard, &out.canary] {
        table.row(&[
            r.domain.to_string(),
            r.executed.to_string(),
            r.rejected.to_string(),
            r.coverage_points.to_string(),
            r.novel.to_string(),
            r.expected_leaks.to_string(),
            r.cell_failures.len().to_string(),
            r.counterexamples.len().to_string(),
            r.corpus.len().to_string(),
        ]);
    }
    table.print();

    if !out.canary.counterexamples.is_empty() {
        let mut shrink = Table::new(
            "Canary counterexamples: planted blind spot, found and shrunk",
            &[
                "#",
                "Events",
                "Flips",
                "Shrink runs",
                "1-minimal",
                "Safe claim",
            ],
        );
        for (i, c) in out.canary.counterexamples.iter().enumerate() {
            shrink.row(&[
                i.to_string(),
                format!(
                    "{} -> {}",
                    c.original.schedule.len(),
                    c.shrunk.schedule.len()
                ),
                c.flips.to_string(),
                c.shrink_runs.to_string(),
                if c.minimal { "yes" } else { "NO" }.to_string(),
                if c.shrunk.supposedly_safe() {
                    "holds (audit blind)"
                } else {
                    "BROKEN"
                }
                .to_string(),
            ]);
        }
        shrink.print();
    }

    let corpus_dir = Path::new("corpus");
    match write_dir(corpus_dir, &out.standard.corpus) {
        Ok(written) => println!(
            "corpus: {} case(s), {} newly written to {}/",
            out.standard.corpus.len(),
            written,
            corpus_dir.display()
        ),
        Err(e) => eprintln!("corpus: write failed: {e}"),
    }

    println!(
        "{}",
        if out.violations.is_empty() {
            "FUZZER SOUND AND SHARP: the standard envelope survived the\n\
             budget with zero counterexamples, and the planted canary\n\
             blind spot was found and shrunk to a minimal replayable\n\
             schedule."
        } else {
            "FAILURE:"
        }
    );
    for v in &out.violations {
        println!("  - {v}");
    }
    write_json("fuzz", &out.json);
    if !out.violations.is_empty() {
        std::process::exit(1);
    }
}
