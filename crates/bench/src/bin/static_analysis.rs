//! Static hammer-capability report: every attack vector in the IR crossed
//! with the candidate LLC replacement policies, plus the twelve SPEC
//! workload models, analysed without running the simulator.
//!
//! Prints the full `anvil-analyze` report as JSON on stdout and records it
//! under `results/static_analysis.json`.

use anvil_analyze::analyze_all;
use anvil_bench::write_json;
use anvil_core::AnvilConfig;
use anvil_mem::MemoryConfig;

fn main() {
    let memory = MemoryConfig::paper_platform();
    let anvil = AnvilConfig::baseline();
    let report = analyze_all(&memory, &anvil);
    let value = serde_json::to_value(&report);
    match serde_json::to_string_pretty(&value) {
        Ok(s) => println!("{s}"),
        Err(e) => eprintln!("serialization failed: {e}"),
    }
    write_json("static_analysis", &value);
}
