//! **Fleet campaign** — Monte Carlo fleet risk across correlated fault
//! domains.
//!
//! The other campaigns evaluate one detector on one memory system; this
//! one asks the deployment question: across a fleet of machines — each a
//! channel × DIMM topology of independently supervised protection
//! domains, each DIMM with its own sampled weak-cell population and its
//! own audited guarantee envelope — what risk does the configuration
//! carry per machine-year when *correlated* faults hit whole machines at
//! once? Machine outages take every domain (and the attacker) down
//! together; machine-wide PMU loss blinds every detector at once while a
//! cross-domain attacker locks onto one victim domain; shared refresh
//! controllers postpone refresh for a whole channel; torn checkpoint
//! writes corrupt recovery state. Each domain answers by walking the
//! graceful-degradation ladder (hardened → sample-survival → blanket
//! refresh → quarantine) and earning its way back up under exponential
//! promotion backoff.
//!
//! The campaign gates on three claims:
//!
//! * **zero undeclared flips** — outside the declared PMU-blind exposure
//!   windows, no bit flips anywhere in the fleet;
//! * **bounded recovery** — every domain's worst crash-to-resume gap
//!   stays inside its own envelope-derived downtime budget;
//! * **no dead cells** — every machine simulation completes (a panic is
//!   recorded as typed data and fails the gate).
//!
//! One machine is one pure cell of `(config, machine_index)`, so
//! `results/fleet.json` is byte-for-byte identical at any `--threads`.
//!
//! ```bash
//! cargo run --release -p anvil-bench --bin fleet                  # full (48 machines)
//! cargo run --release -p anvil-bench --bin fleet -- --smoke       # CI subset
//! cargo run --release -p anvil-bench --bin fleet -- --machines 8 --domains 8 --seed 7
//! ```

use anvil_bench::{campaigns, write_json, CampaignArgs, Table};
use anvil_fleet::FleetConfig;
use anvil_mem::DomainTopology;
use anvil_runtime::install_quiet_panic_hook;

/// Default campaign seed; override with `--seed N`.
const DEFAULT_SEED: u64 = 0xF1EE7;

/// Full-campaign fleet size.
const FULL_MACHINES: u64 = 48;

/// Full-campaign windows per machine (~24 simulated seconds each).
const FULL_WINDOWS: u64 = 4_000;

/// Smoke fleet size, sized for CI byte-compare runs.
const SMOKE_MACHINES: u64 = 12;

/// Smoke windows per machine.
const SMOKE_WINDOWS: u64 = 1_500;

fn main() {
    // Injected detector crashes inside every supervised domain would
    // otherwise each print a panic report.
    install_quiet_panic_hook();
    let args = CampaignArgs::from_env();
    let seed = args.seed_or(DEFAULT_SEED);
    let machines = args.machines.unwrap_or(if args.smoke {
        SMOKE_MACHINES
    } else {
        FULL_MACHINES
    });
    let windows = args.windows.unwrap_or(if args.smoke {
        SMOKE_WINDOWS
    } else {
        FULL_WINDOWS
    });
    let mut cfg = FleetConfig::standard(machines, windows, seed);
    if let Some(n) = args.domains {
        // Keep the dual-channel shape when the requested domain count
        // splits evenly; fall back to one channel otherwise.
        cfg.topology = if n % 2 == 0 {
            DomainTopology {
                channels: 2,
                dimms_per_channel: (n / 2) as u32,
            }
        } else {
            DomainTopology {
                channels: 1,
                dimms_per_channel: n as u32,
            }
        };
    }

    eprintln!(
        "fleet: {machines} machines × {} domains ({}ch × {}d), {windows} windows, seed {seed:#x}",
        cfg.topology.domains(),
        cfg.topology.channels,
        cfg.topology.dimms_per_channel
    );
    let out = campaigns::fleet(&cfg, args.smoke, args.threads);
    let r = &out.risk;

    let mut table = Table::new(
        "Fleet campaign: Monte Carlo risk under correlated fault domains",
        &["Metric", "Value"],
    );
    table.row(&[
        "fleet".into(),
        format!(
            "{} machines × {} domains, {} windows",
            r.machines,
            cfg.topology.domains(),
            r.windows
        ),
    ]);
    table.row(&[
        "machine-years (accelerated)".into(),
        format!("{:.6}", r.machine_years),
    ]);
    table.row(&["machine outages".into(), r.outages.to_string()]);
    table.row(&["PMU-loss episodes".into(), r.pmu_episodes.to_string()]);
    table.row(&["PMU-blind windows".into(), r.blind_windows.to_string()]);
    table.row(&["refresh postponements".into(), r.refresh_delays.to_string()]);
    table.row(&[
        "degraded domain-windows".into(),
        r.degraded_domain_windows.to_string(),
    ]);
    table.row(&[
        "demotions / promotions".into(),
        format!("{} / {}", r.demotions, r.promotions),
    ]);
    table.row(&[
        "quarantined / sub-envelope domains".into(),
        format!("{} / {}", r.quarantined_domains, r.sub_envelope_domains),
    ]);
    table.row(&[
        "recovery gap p50/p90/p99/max".into(),
        format!(
            "{} / {} / {} / {} cycles",
            r.recovery_gaps.p50, r.recovery_gaps.p90, r.recovery_gaps.p99, r.recovery_gaps.max
        ),
    ]);
    table.row(&[
        "downtime-budget violations".into(),
        r.budget_violations.to_string(),
    ]);
    table.row(&[
        "exposure flips (declared windows)".into(),
        r.exposure_flips.to_string(),
    ]);
    table.row(&[
        "flips / machine-year".into(),
        format!("{:.3}", r.flips_per_machine_year),
    ]);
    table.row(&[
        "flips / million machine-years".into(),
        format!("{:.0}", r.flips_per_million_machine_years),
    ]);
    table.row(&["dead machine cells".into(), r.cell_panics.to_string()]);
    table.row(&["UNDECLARED FLIPS".into(), r.undeclared_flips.to_string()]);
    table.print();

    println!(
        "{}",
        if r.holds() {
            "ZERO UNDECLARED FLIPS across the fleet: every flip the attacker\n\
             managed landed inside a declared PMU-blind exposure window, every\n\
             recovery gap stayed inside its domain's downtime budget, and\n\
             every machine cell completed."
        } else {
            "WARNING: the fleet gate failed (an undeclared flip, an\n\
             over-budget recovery gap, or a dead machine cell)."
        }
    );

    write_json("fleet", &out.json);
    if !r.holds() {
        std::process::exit(1);
    }
}
