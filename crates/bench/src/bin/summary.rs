//! Aggregates all `results/*.json` records into one pass/fail scorecard
//! against the paper's headline claims. Run the individual experiments
//! first (or `for b in table1 table3 ...; do cargo run --bin $b; done`).

use anvil_bench::Table;
use serde_json::Value;
use std::fs;

fn load(name: &str) -> Option<Value> {
    let text = fs::read_to_string(format!("results/{name}.json")).ok()?;
    serde_json::from_str(&text).ok()
}

fn main() {
    let mut table = Table::new(
        "Reproduction scorecard (see EXPERIMENTS.md for the full comparison)",
        &["Claim", "Source", "Status"],
    );
    let mut add = |claim: &str, source: &str, ok: Option<bool>| {
        table.row(&[
            claim.into(),
            source.into(),
            match ok {
                Some(true) => "REPRODUCED".into(),
                Some(false) => "DIVERGES (see EXPERIMENTS.md)".into(),
                None => "not run".into(),
            },
        ]);
    };

    add(
        "220K/400K access minimums, flips in 15-60 ms",
        "Table 1",
        load("table1").map(|v| {
            v["rows"].as_array().is_some_and(|rows| {
                rows.iter()
                    .all(|r| r["min_row_accesses"].as_u64().is_some())
            })
        }),
    );
    add(
        "doubled (32 ms) refresh defeated",
        "refresh_sweep",
        load("refresh_sweep").map(|v| {
            v["rows"].as_array().is_some_and(|rows| {
                rows.iter()
                    .any(|r| r["refresh_ms"] == 32.0 && r["flipped"] == true)
            })
        }),
    );
    add(
        "2-miss eviction pattern, >110K hammers/64 ms",
        "eviction_pattern",
        load("eviction_pattern").map(|v| {
            v["pattern_below"]["misses_per_iter"]
                .as_f64()
                .unwrap_or(99.0)
                <= 2.5
                && v["hammers_per_64ms"].as_u64().unwrap_or(0) > 110_000
        }),
    );
    add(
        "all attacks detected under ANVIL, zero flips",
        "table3",
        load("table3").map(|v| {
            v["rows"].as_array().is_some_and(|rows| {
                rows.iter()
                    .all(|r| r["flips"] == 0 && !r["avg_detect_ms"].is_null())
            })
        }),
    );
    add(
        "false positives <= ~1/s, bzip2/gcc highest",
        "table4",
        load("table4").map(|v| {
            v["rows"].as_array().is_some_and(|rows| {
                rows.iter()
                    .all(|r| r["measured_refreshes_per_sec"].as_f64().unwrap_or(99.0) < 3.0)
            })
        }),
    );
    add(
        "ANVIL average slowdown ~1%",
        "figure3",
        load("figure3").map(|v| {
            let avg = v["anvil_average"].as_f64().unwrap_or(9.0);
            (1.0..1.03).contains(&avg)
        }),
    );
    add(
        "zero false negatives across config matrix",
        "detection_matrix",
        load("detection_matrix").map(|v| v["misses"] == 0),
    );
    add(
        "only ANVIL is both deployable and effective",
        "mitigation_compare",
        load("mitigation_compare").map(|v| {
            v["rows"].as_array().is_some_and(|rows| {
                rows.iter()
                    .any(|r| r["defense"] == "ANVIL (software)" && r["flipped"] == false)
                    && rows
                        .iter()
                        .any(|r| r["defense"] == "Doubled refresh (32 ms)" && r["flipped"] == true)
            })
        }),
    );
    add(
        "lifecycle soak: zero flips, recovery inside downtime budget",
        "soak",
        load("soak").map(|v| {
            v["holds"] == true
                && v["summary"]["worst_recovery_gap"]
                    .as_u64()
                    .unwrap_or(u64::MAX)
                    <= v["summary"]["downtime_budget"].as_u64().unwrap_or(0)
        }),
    );
    add(
        "pagemap hardening bypassed by timing attack",
        "pagemap_hardening",
        load("pagemap_hardening").map(|v| {
            v["rows"].as_array().is_some_and(|rows| {
                rows.iter().any(|r| {
                    r["attack"] == "timing-clflush-free"
                        && r["allocation"] == "contiguous"
                        && r["flipped"] == true
                })
            })
        }),
    );

    table.print();
}
