//! **Perf trajectory** — measured simulator throughput, committed as a
//! regression baseline.
//!
//! Times each optimized hot-path layer (cache access, DRAM
//! activate+disturb, the epoch-skipping closed forms, platform step,
//! full detector window) and the end-to-end soak workload — serial and
//! fanned through [`anvil_bench::run_cells`] — then writes
//! `results/BENCH_hotpath.json` so later PRs can compare against this
//! PR's numbers instead of re-deriving them.
//!
//! The end-to-end headline is the **benign-dominated soak cell** under
//! the event-driven engine: no adversary pacing, so nearly every window
//! is quiet and the epoch-skipping fast path carries the loop. The
//! adversary-paced cell (the previous headline protocol) is recorded
//! alongside it — epoch skipping cannot help when 40%+ of windows trip
//! stage-1, and the record keeps both so regressions in either regime
//! are visible.
//!
//! Unlike the campaign records, this file is a *measurement* — it varies
//! with the machine and is regenerated, not byte-compared. Each run
//! appends an entry to the `trajectory` array (carried over from the
//! previously committed file), stamped with `--git-sha <sha>` and
//! `--stamp <date>` when provided. The binary exits non-zero when the
//! headline serial throughput falls below the absolute floor
//! ([`FLOOR_WINDOWS_PER_SEC`]) **or** below [`REGRESSION_FRACTION`] of
//! the last committed trajectory entry, which is what the CI
//! `bench-smoke` job gates on: the relative gate catches a real
//! regression against the committed history while the generous fraction
//! absorbs machine-to-machine variance.
//!
//! ```bash
//! cargo run --release -p anvil-bench --bin perfbench             # full
//! cargo run --release -p anvil-bench --bin perfbench -- --quick  # CI
//! cargo run --release -p anvil-bench --bin perfbench -- \
//!     --git-sha "$(git rev-parse --short HEAD)" --stamp 2026-08-08
//! ```

use anvil_bench::{run_cells, write_json, CampaignArgs};
use anvil_cache::{CacheHierarchy, HierarchyConfig};
use anvil_core::{AnvilConfig, Platform, PlatformConfig};
use anvil_dram::{
    BankId, DisturbanceConfig, DisturbanceTracker, DramConfig, DramModule, DramTiming,
    RefreshSchedule, RowId,
};
use anvil_runtime::{install_quiet_panic_hook, soak, Engine, SoakConfig, SoakSummary};
use anvil_workloads::SpecBenchmark;
use serde_json::json;
use std::hint::black_box;
use std::time::Instant;

/// Headline serial throughput floor (windows/sec) below which the binary
/// exits non-zero. The benign-dominated cell runs in the millions of
/// windows/sec, so this absolute floor only trips on a catastrophic
/// (100x-plus) regression, not on a slow CI machine.
const FLOOR_WINDOWS_PER_SEC: f64 = 10_000.0;

/// The committed per-op serial baseline this PR was measured against:
/// `results/BENCH_hotpath.json` recorded 364,633 windows/sec for the
/// per-op engine immediately before the event-driven core landed. The
/// acceptance target for the epoch-skipping engine is 10x this number
/// on the benign-dominated cell.
const BASELINE_SERIAL_WINDOWS_PER_SEC: f64 = 364_633.2;

/// Relative regression gate: the measured headline must reach at least
/// this fraction of the last committed `trajectory` entry. 0.25 leaves
/// 4x headroom for slower CI machines while still catching regressions
/// far smaller than the absolute floor (which sits ~500x below the
/// committed headline) ever could.
const REGRESSION_FRACTION: f64 = 0.25;

/// Activations folded into one closed-form epoch in the layer
/// micro-benchmarks (roughly the activation budget of one quiet 6 ms
/// window on the paper's DDR3 timing).
const EPOCH_OPS: u64 = 4_096;

/// Times `op` and returns its mean cost in ns: calibrates the iteration
/// count until a batch is long enough to time reliably, then measures
/// for roughly `budget_ms`.
fn ns_per_op(budget_ms: f64, mut op: impl FnMut()) -> f64 {
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            op();
        }
        let elapsed = start.elapsed();
        if elapsed.as_millis() >= 5 || iters >= 1 << 30 {
            let per = elapsed.as_nanos() as f64 / iters as f64;
            let need = ((budget_ms * 1e6 / per).max(1.0)) as u64;
            let start = Instant::now();
            for _ in 0..need {
                op();
            }
            return start.elapsed().as_nanos() as f64 / need as f64;
        }
        iters *= 8;
    }
}

/// Rounds to one decimal for the committed record (keeps diffs small and
/// avoids implying nanosecond-precision reproducibility).
fn round1(x: f64) -> f64 {
    (x * 10.0).round() / 10.0
}

/// Rounds to three decimals — the closed-form epoch layers amortize to
/// well under a nanosecond per accounted op.
fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// The soak smoke lifecycle (matching the `soak --smoke` campaign: crash
/// rate scaled up so the absolute crash count stays meaningful at small
/// window counts). `adversary: false` selects the benign-dominated cell.
fn soak_cfg(windows: u64, seed: u64, adversary: bool) -> SoakConfig {
    let mut cfg = if adversary {
        SoakConfig::standard(windows, seed)
    } else {
        SoakConfig::benign(windows, seed)
    };
    cfg.lifecycle.crash_rate = 5e-3;
    cfg.reload_every = 20_000;
    cfg
}

/// Runs `cells` soak cells of `windows` each across `threads` workers
/// under `engine` and returns aggregate windows/sec.
fn soak_windows_per_sec(
    cells: usize,
    windows: u64,
    threads: usize,
    engine: Engine,
    adversary: bool,
) -> f64 {
    let jobs: Vec<Box<dyn FnOnce() -> SoakSummary + Send>> = (0..cells)
        .map(|i| {
            let seed = 0x50AC + i as u64;
            Box::new(move || soak::run_with_engine(&soak_cfg(windows, seed, adversary), engine))
                as _
        })
        .collect();
    let start = Instant::now();
    let results = run_cells(threads, jobs);
    let elapsed = start.elapsed().as_secs_f64();
    let total: u64 = results.iter().map(|s| s.windows).sum();
    total as f64 / elapsed
}

/// Looks up the value following `flag` in the raw argument list (the
/// trajectory stamps are perfbench-local and not part of
/// [`CampaignArgs`]).
fn raw_arg(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Loads the `trajectory` array from the previously committed
/// `results/BENCH_hotpath.json`, if any — the new run appends to it.
fn committed_trajectory() -> Vec<serde_json::Value> {
    std::fs::read_to_string("results/BENCH_hotpath.json")
        .ok()
        .and_then(|s| serde_json::from_str::<serde_json::Value>(&s).ok())
        .and_then(|v| v.get("trajectory").cloned())
        .and_then(|t| t.as_array().cloned())
        .unwrap_or_default()
}

fn main() {
    install_quiet_panic_hook();
    let args = CampaignArgs::from_env();
    let budget_ms = if args.quick { 60.0 } else { 300.0 };
    let git_sha = raw_arg("--git-sha").unwrap_or_else(|| "unknown".into());
    let stamp = raw_arg("--stamp").unwrap_or_else(|| "unstamped".into());

    eprintln!("perfbench: per-layer timings ({budget_ms:.0} ms budget per layer)");

    // Cache: L1-resident loop through the scratch-buffer entry point.
    let mut h = CacheHierarchy::new(HierarchyConfig::sandy_bridge_i5_2540m());
    let (mut wb, mut pf) = (Vec::new(), Vec::new());
    let mut addr = 0u64;
    let cache_hot = ns_per_op(budget_ms, || {
        addr = (addr + 64) & 0x3fff;
        wb.clear();
        pf.clear();
        black_box(h.access_into(black_box(addr), false, &mut wb, &mut pf));
    });

    let mut h = CacheHierarchy::new(HierarchyConfig::sandy_bridge_i5_2540m());
    let (mut wb, mut pf) = (Vec::new(), Vec::new());
    let mut addr = 0u64;
    let cache_streaming = ns_per_op(budget_ms, || {
        addr = (addr + 64) & ((1 << 30) - 1);
        wb.clear();
        pf.clear();
        black_box(h.access_into(black_box(addr), false, &mut wb, &mut pf));
    });

    // Epoch skipping, cache layer: one closed-form charge covering
    // EPOCH_OPS resident hits, reported per call (per accounted access it
    // amortizes to well under a picosecond).
    let mut h = CacheHierarchy::new(HierarchyConfig::sandy_bridge_i5_2540m());
    let cache_epoch = ns_per_op(budget_ms, || {
        h.charge_epoch(black_box(EPOCH_OPS));
    });

    // DRAM: double-sided hammer (dense-arena disturbance on every
    // activate) and a wide sweep (lazy row initialization).
    let mut dram = DramModule::new(DramConfig::paper_ddr3());
    let (mut now, mut i) = (0u64, 0u64);
    let dram_hammer = ns_per_op(budget_ms, || {
        i += 1;
        now += 200;
        let a = if i % 2 == 0 { 0x22000 } else { 0x66000 };
        black_box(dram.access(black_box(a), now));
    });

    let mut dram = DramModule::new(DramConfig::paper_ddr3());
    let (mut now, mut addr) = (0u64, 0u64);
    let dram_sweep = ns_per_op(budget_ms, || {
        addr = (addr + 8192) & ((4 << 30) - 1);
        now += 200;
        black_box(dram.access(black_box(addr), now));
    });

    // Epoch skipping, DRAM layer: EPOCH_OPS same-row activations folded
    // into one closed-form call vs. the per-op loop it replaces, both
    // reported per activation.
    let timing = DramTiming::default();
    let sched = RefreshSchedule::new(&timing, 32_768);
    let aggressor = RowId::new(BankId(0), 0x80);
    let mut t = DisturbanceTracker::new(DisturbanceConfig::paper_ddr3(), 8192, 32_768);
    let mut now = 0u64;
    let dram_epoch = ns_per_op(budget_ms, || {
        now += 200;
        t.activate_epoch(black_box(aggressor), EPOCH_OPS, now, &sched);
        black_box(t.drain_flips());
    }) / EPOCH_OPS as f64;
    let mut t = DisturbanceTracker::new(DisturbanceConfig::paper_ddr3(), 8192, 32_768);
    let mut now = 0u64;
    let dram_epoch_per_op = ns_per_op(budget_ms, || {
        now += 200;
        for _ in 0..EPOCH_OPS {
            t.on_activation(black_box(aggressor), now, &sched);
        }
        black_box(t.drain_flips());
    }) / EPOCH_OPS as f64;

    // Platform: one batched core op under the baseline detector, and a
    // full 6 ms stage-1 window.
    let mut p = Platform::new(PlatformConfig::with_anvil(AnvilConfig::baseline()));
    let pid = p
        .add_workload(SpecBenchmark::Mcf.build(1))
        .expect("workload loads on fresh platform");
    let step = ns_per_op(budget_ms, || {
        p.run_core_ops(black_box(pid), 1).expect("step completes");
    });

    let mut p = Platform::new(PlatformConfig::with_anvil(AnvilConfig::baseline()));
    p.add_workload(SpecBenchmark::Mcf.build(1))
        .expect("workload loads on fresh platform");
    let window = ns_per_op(budget_ms.max(200.0), || {
        p.run_ms(black_box(6.0)).expect("window completes");
    });

    eprintln!(
        "  cache hot {cache_hot:.1} ns (epoch {cache_epoch:.1} ns/call), \
         streaming {cache_streaming:.1} ns; \
         dram hammer {dram_hammer:.1} ns, sweep {dram_sweep:.1} ns, \
         epoch {dram_epoch:.3} ns vs per-op {dram_epoch_per_op:.1} ns; \
         step {step:.1} ns, window {:.1} us",
        window / 1e3
    );

    // End-to-end soak. The headline is the benign-dominated cell under
    // the event engine; the per-op engine on the same cell isolates the
    // epoch-skipping speedup, and the adversary-paced cell records the
    // trip-heavy regime where the fallback path dominates. Benign cells
    // are ~20x cheaper per window, so they run more windows to keep the
    // measurement interval meaningful.
    let windows = if args.quick { 20_000 } else { 120_000 };
    let benign_windows = windows * 10;
    let cells = args.threads.max(2);
    eprintln!(
        "perfbench: soak end-to-end (benign {benign_windows} windows/cell, \
         adversary {windows} windows/cell, {cells} cells parallel)"
    );
    let serial = soak_windows_per_sec(1, benign_windows, 1, Engine::Event, false);
    let serial_per_op = soak_windows_per_sec(1, benign_windows, 1, Engine::PerOp, false);
    let adversary_serial = soak_windows_per_sec(1, windows, 1, Engine::Event, true);
    let parallel = soak_windows_per_sec(cells, benign_windows, args.threads, Engine::Event, false);
    let speedup = serial / BASELINE_SERIAL_WINDOWS_PER_SEC;
    let engine_speedup = serial / serial_per_op;
    eprintln!(
        "  benign serial: event {serial:.0} windows/s vs per-op {serial_per_op:.0} \
         ({engine_speedup:.1}x engine speedup, {speedup:.1}x committed baseline); \
         adversary serial {adversary_serial:.0}; parallel {parallel:.0} windows/s"
    );

    let mut trajectory = committed_trajectory();
    let prior_headline = trajectory
        .last()
        .and_then(|e| e.get("serial_windows_per_sec"))
        .and_then(serde_json::Value::as_f64);
    trajectory.push(json!({
        "git_sha": git_sha,
        "stamp": stamp,
        "quick": args.quick,
        "cell": "benign",
        "engine": "event",
        "serial_windows_per_sec": round1(serial),
        "parallel_windows_per_sec": round1(parallel),
    }));

    write_json(
        "BENCH_hotpath",
        &json!({
            "experiment": "perf_hotpath",
            "quick": args.quick,
            "threads": args.threads,
            "layers_ns_per_op": {
                "cache_access_hot": round1(cache_hot),
                "cache_access_streaming": round1(cache_streaming),
                "dram_activate_disturb_hammer": round1(dram_hammer),
                "dram_activate_disturb_sweep": round1(dram_sweep),
                "platform_step": round1(step),
                "detector_window_us": round1(window / 1e3),
                "epoch_skip": {
                    "epoch_ops": EPOCH_OPS,
                    "cache_charge_epoch_call": round3(cache_epoch),
                    "dram_activate_epoch_per_activation": round3(dram_epoch),
                    "dram_activate_per_op_per_activation": round1(dram_epoch_per_op),
                    "soak_window_benign_event_ns": round1(1e9 / serial),
                    "soak_window_benign_per_op_ns": round1(1e9 / serial_per_op),
                },
            },
            "end_to_end": {
                "cell": "benign-dominated soak (adversary pacing off)",
                "engine": "event",
                "soak_windows_per_cell": benign_windows,
                "serial_windows_per_sec": round1(serial),
                "serial_per_op_windows_per_sec": round1(serial_per_op),
                "engine_speedup": round1(engine_speedup),
                "adversary_windows_per_cell": windows,
                "adversary_serial_windows_per_sec": round1(adversary_serial),
                "parallel_cells": cells,
                "parallel_windows_per_sec": round1(parallel),
                "baseline_serial_windows_per_sec": BASELINE_SERIAL_WINDOWS_PER_SEC,
                "speedup_vs_baseline": round1(speedup),
                "floor_windows_per_sec": FLOOR_WINDOWS_PER_SEC,
                "regression_fraction": REGRESSION_FRACTION,
            },
            "trajectory": trajectory,
        }),
    );
    if serial < FLOOR_WINDOWS_PER_SEC {
        eprintln!(
            "perfbench: FAIL — serial soak {serial:.0} windows/s is below the \
             {FLOOR_WINDOWS_PER_SEC:.0} windows/s floor"
        );
        std::process::exit(1);
    }
    if let Some(prior) = prior_headline {
        let gate = prior * REGRESSION_FRACTION;
        if serial < gate {
            eprintln!(
                "perfbench: FAIL — serial soak {serial:.0} windows/s regressed below \
                 {REGRESSION_FRACTION}x the last committed trajectory entry \
                 ({prior:.0} windows/s)"
            );
            std::process::exit(1);
        }
        eprintln!(
            "perfbench: trajectory gate OK ({serial:.0} >= {gate:.0} windows/s, \
             last committed {prior:.0})"
        );
    }
}
