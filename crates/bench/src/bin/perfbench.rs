//! **Perf trajectory** — measured simulator throughput, committed as a
//! regression baseline.
//!
//! Times each optimized hot-path layer (cache access, DRAM
//! activate+disturb, platform step, full detector window) and the
//! end-to-end soak workload, serial and fanned through
//! [`anvil_bench::run_cells`], then writes `results/BENCH_hotpath.json`
//! so later PRs can compare against this PR's numbers instead of
//! re-deriving them.
//!
//! Unlike the campaign records, this file is a *measurement* — it varies
//! with the machine and is regenerated, not byte-compared. The binary
//! exits non-zero when serial soak throughput falls below a generous
//! floor ([`FLOOR_WINDOWS_PER_SEC`]), which is what the CI `bench-smoke`
//! job gates on: it catches order-of-magnitude regressions without
//! flaking on machine noise.
//!
//! ```bash
//! cargo run --release -p anvil-bench --bin perfbench             # full
//! cargo run --release -p anvil-bench --bin perfbench -- --quick  # CI
//! ```

use anvil_bench::{run_cells, write_json, CampaignArgs};
use anvil_cache::{CacheHierarchy, HierarchyConfig};
use anvil_core::{AnvilConfig, Platform, PlatformConfig};
use anvil_dram::{DramConfig, DramModule};
use anvil_runtime::{install_quiet_panic_hook, soak, SoakConfig, SoakSummary};
use anvil_workloads::SpecBenchmark;
use serde_json::json;
use std::hint::black_box;
use std::time::Instant;

/// Serial soak throughput floor (windows/sec) below which the binary
/// exits non-zero. The pre-PR serial baseline was ~63K windows/sec and
/// the optimized path runs several times faster, so this only trips on
/// an order-of-magnitude regression, not on a slow CI machine.
const FLOOR_WINDOWS_PER_SEC: f64 = 10_000.0;

/// The pre-optimization serial baseline this PR was measured against:
/// the 120K-window soak smoke ran in 1.90 s (~63K windows/sec) on the
/// same container immediately before the hot-path pass landed.
const PRE_PR_SERIAL_WINDOWS_PER_SEC: f64 = 63_000.0;

/// Times `op` and returns its mean cost in ns: calibrates the iteration
/// count until a batch is long enough to time reliably, then measures
/// for roughly `budget_ms`.
fn ns_per_op(budget_ms: f64, mut op: impl FnMut()) -> f64 {
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            op();
        }
        let elapsed = start.elapsed();
        if elapsed.as_millis() >= 5 || iters >= 1 << 30 {
            let per = elapsed.as_nanos() as f64 / iters as f64;
            let need = ((budget_ms * 1e6 / per).max(1.0)) as u64;
            let start = Instant::now();
            for _ in 0..need {
                op();
            }
            return start.elapsed().as_nanos() as f64 / need as f64;
        }
        iters *= 8;
    }
}

/// Rounds to one decimal for the committed record (keeps diffs small and
/// avoids implying nanosecond-precision reproducibility).
fn round1(x: f64) -> f64 {
    (x * 10.0).round() / 10.0
}

/// The soak smoke lifecycle (matching the `soak --smoke` campaign: crash
/// rate scaled up so the absolute crash count stays meaningful at small
/// window counts).
fn soak_cfg(windows: u64, seed: u64) -> SoakConfig {
    let mut cfg = SoakConfig::standard(windows, seed);
    cfg.lifecycle.crash_rate = 5e-3;
    cfg.reload_every = 20_000;
    cfg
}

/// Runs `cells` soak cells of `windows` each across `threads` workers
/// and returns aggregate windows/sec.
fn soak_windows_per_sec(cells: usize, windows: u64, threads: usize) -> f64 {
    let jobs: Vec<Box<dyn FnOnce() -> SoakSummary + Send>> = (0..cells)
        .map(|i| {
            let seed = 0x50AC + i as u64;
            Box::new(move || soak::run(&soak_cfg(windows, seed))) as _
        })
        .collect();
    let start = Instant::now();
    let results = run_cells(threads, jobs);
    let elapsed = start.elapsed().as_secs_f64();
    let total: u64 = results.iter().map(|s| s.windows).sum();
    total as f64 / elapsed
}

fn main() {
    install_quiet_panic_hook();
    let args = CampaignArgs::from_env();
    let budget_ms = if args.quick { 60.0 } else { 300.0 };

    eprintln!("perfbench: per-layer timings ({budget_ms:.0} ms budget per layer)");

    // Cache: L1-resident loop through the scratch-buffer entry point.
    let mut h = CacheHierarchy::new(HierarchyConfig::sandy_bridge_i5_2540m());
    let (mut wb, mut pf) = (Vec::new(), Vec::new());
    let mut addr = 0u64;
    let cache_hot = ns_per_op(budget_ms, || {
        addr = (addr + 64) & 0x3fff;
        wb.clear();
        pf.clear();
        black_box(h.access_into(black_box(addr), false, &mut wb, &mut pf));
    });

    let mut h = CacheHierarchy::new(HierarchyConfig::sandy_bridge_i5_2540m());
    let (mut wb, mut pf) = (Vec::new(), Vec::new());
    let mut addr = 0u64;
    let cache_streaming = ns_per_op(budget_ms, || {
        addr = (addr + 64) & ((1 << 30) - 1);
        wb.clear();
        pf.clear();
        black_box(h.access_into(black_box(addr), false, &mut wb, &mut pf));
    });

    // DRAM: double-sided hammer (dense-arena disturbance on every
    // activate) and a wide sweep (lazy row initialization).
    let mut dram = DramModule::new(DramConfig::paper_ddr3());
    let (mut now, mut i) = (0u64, 0u64);
    let dram_hammer = ns_per_op(budget_ms, || {
        i += 1;
        now += 200;
        let a = if i % 2 == 0 { 0x22000 } else { 0x66000 };
        black_box(dram.access(black_box(a), now));
    });

    let mut dram = DramModule::new(DramConfig::paper_ddr3());
    let (mut now, mut addr) = (0u64, 0u64);
    let dram_sweep = ns_per_op(budget_ms, || {
        addr = (addr + 8192) & ((4 << 30) - 1);
        now += 200;
        black_box(dram.access(black_box(addr), now));
    });

    // Platform: one batched core op under the baseline detector, and a
    // full 6 ms stage-1 window.
    let mut p = Platform::new(PlatformConfig::with_anvil(AnvilConfig::baseline()));
    let pid = p
        .add_workload(SpecBenchmark::Mcf.build(1))
        .expect("workload loads on fresh platform");
    let step = ns_per_op(budget_ms, || {
        p.run_core_ops(black_box(pid), 1).expect("step completes");
    });

    let mut p = Platform::new(PlatformConfig::with_anvil(AnvilConfig::baseline()));
    p.add_workload(SpecBenchmark::Mcf.build(1))
        .expect("workload loads on fresh platform");
    let window = ns_per_op(budget_ms.max(200.0), || {
        p.run_ms(black_box(6.0)).expect("window completes");
    });

    eprintln!(
        "  cache hot {cache_hot:.1} ns, streaming {cache_streaming:.1} ns; \
         dram hammer {dram_hammer:.1} ns, sweep {dram_sweep:.1} ns; \
         step {step:.1} ns, window {:.1} us",
        window / 1e3
    );

    // End-to-end soak: the acceptance metric. Serial is one cell (the
    // same protocol the pre-PR baseline was measured with); parallel
    // fans independent cells through run_cells.
    let windows = if args.quick { 20_000 } else { 120_000 };
    let cells = args.threads.max(2);
    eprintln!("perfbench: soak end-to-end ({windows} windows/cell, {cells} cells parallel)");
    let serial = soak_windows_per_sec(1, windows, 1);
    let parallel = soak_windows_per_sec(cells, windows, args.threads);
    let speedup = serial.max(parallel) / PRE_PR_SERIAL_WINDOWS_PER_SEC;
    eprintln!(
        "  serial {serial:.0} windows/s, parallel {parallel:.0} windows/s \
         ({speedup:.1}x pre-PR serial baseline)"
    );

    write_json(
        "BENCH_hotpath",
        &json!({
            "experiment": "perf_hotpath",
            "quick": args.quick,
            "threads": args.threads,
            "layers_ns_per_op": {
                "cache_access_hot": round1(cache_hot),
                "cache_access_streaming": round1(cache_streaming),
                "dram_activate_disturb_hammer": round1(dram_hammer),
                "dram_activate_disturb_sweep": round1(dram_sweep),
                "platform_step": round1(step),
                "detector_window_us": round1(window / 1e3),
            },
            "end_to_end": {
                "soak_windows_per_cell": windows,
                "serial_windows_per_sec": round1(serial),
                "parallel_cells": cells,
                "parallel_windows_per_sec": round1(parallel),
                "pre_pr_serial_windows_per_sec": PRE_PR_SERIAL_WINDOWS_PER_SEC,
                "speedup_vs_pre_pr": round1(speedup),
                "floor_windows_per_sec": FLOOR_WINDOWS_PER_SEC,
            },
        }),
    );
    if serial < FLOOR_WINDOWS_PER_SEC {
        eprintln!(
            "perfbench: FAIL — serial soak {serial:.0} windows/s is below the \
             {FLOOR_WINDOWS_PER_SEC:.0} windows/s floor"
        );
        std::process::exit(1);
    }
}
