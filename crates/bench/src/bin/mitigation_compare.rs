//! **Section 5.2** ablation — ANVIL vs. the mitigation landscape.
//!
//! The paper surveys the deployed and proposed defenses: doubled refresh
//! (deployed, broken — Section 2.1), CLFLUSH restriction (deployed, broken
//! — Section 2.2), PARA and counter-based TRR (proposed, need new
//! hardware), and ANVIL (software, deployable today). This experiment runs
//! the double-sided CLFLUSH attack against each and reports whether bits
//! flip and what the defense costs.

use anvil_attacks::{hammer_until_flip, StandaloneHarness};
use anvil_bench::{detection_run, vulnerable_pair_index, write_json, AttackKind, Scale, Table};
use anvil_core::AnvilConfig;
use anvil_dram::MitigationKind;
use anvil_mem::{AllocationPolicy, MemoryConfig};
use serde_json::json;

/// Hammers a vulnerable victim on a module configured with `mitigation`.
fn hammer_against(mitigation: MitigationKind, refresh_ms: Option<f64>, pair: usize) -> (bool, u64) {
    let mut config = MemoryConfig::paper_platform();
    if let Some(ms) = refresh_ms {
        config.dram = config.dram.with_refresh_ms(config.clock, ms);
    }
    config.dram = config.dram.with_mitigation(mitigation);
    let mut harness = StandaloneHarness::new(config, AllocationPolicy::Contiguous);
    let mut attack = AttackKind::DoubleSided.build(pair);
    harness.prepare(attack.as_mut()).expect("open platform");
    let r = hammer_until_flip(attack.as_mut(), &mut harness, 300_000);
    (r.flipped, harness.sys.dram().stats().mitigation_refreshes)
}

fn main() {
    let scale = Scale::from_args();
    let pair = vulnerable_pair_index(AttackKind::DoubleSided, MemoryConfig::paper_platform(), 24)
        .expect("vulnerable pair");

    let mut table = Table::new(
        "Section 5.2: Double-sided CLFLUSH attack vs. the mitigation landscape",
        &[
            "Defense",
            "Deployable on existing HW?",
            "Bits flip?",
            "Notes",
        ],
    );
    let mut records = Vec::new();
    let mut push = |table: &mut Table,
                    name: &str,
                    deployable: &str,
                    flipped: bool,
                    notes: String| {
        table.row(&[
            name.to_string(),
            deployable.to_string(),
            if flipped { "YES (defeated)" } else { "no" }.to_string(),
            notes.clone(),
        ]);
        records.push(json!({ "defense": name, "deployable": deployable, "flipped": flipped, "notes": notes }));
    };

    let (flipped, _) = hammer_against(MitigationKind::None, None, pair);
    push(
        &mut table,
        "None (64 ms refresh)",
        "-",
        flipped,
        "the unprotected baseline".into(),
    );

    let (flipped, _) = hammer_against(MitigationKind::None, Some(32.0), pair);
    push(
        &mut table,
        "Doubled refresh (32 ms)",
        "yes (BIOS update)",
        flipped,
        "attack lands in ~15 ms (Section 2.1)".into(),
    );

    let (flipped, refreshes) = hammer_against(MitigationKind::Para { p: 0.001 }, None, pair);
    push(
        &mut table,
        "PARA (p=0.001)",
        "no (new controller)",
        flipped,
        format!("{refreshes} neighbor refreshes issued"),
    );

    let (flipped, refreshes) = hammer_against(
        MitigationKind::Trr {
            table_size: 32,
            threshold: 50_000,
        },
        None,
        pair,
    );
    push(
        &mut table,
        "TRR (counter table)",
        "no (new DRAM/controller)",
        flipped,
        format!("{refreshes} targeted refreshes issued"),
    );

    let s = detection_run(
        AttackKind::DoubleSided,
        AnvilConfig::baseline(),
        false,
        scale.ms(150.0).max(80.0),
        5,
    );
    push(
        &mut table,
        "ANVIL (software)",
        "YES (kernel module)",
        s.flips > 0,
        format!(
            "detected at {:.1} ms, {:.1} refreshes/64 ms",
            s.detect_ms.unwrap_or(f64::NAN),
            s.refreshes_per_window
        ),
    );

    table.print();
    println!(
        "Takeaway (paper Section 5.2): only ANVIL both stops the attack and deploys\n\
         on existing systems; PARA/TRR also stop it but require new hardware."
    );
    write_json(
        "mitigation_compare",
        &json!({ "experiment": "mitigation_compare", "rows": records }),
    );
}
