//! **Self-defense campaign** — ANVIL's own state under rowhammer attack.
//!
//! Every other campaign assumes the detector's bookkeeping is sound and
//! attacks the data it protects. This one points the hammer at the
//! defense itself: the stage-1 EWMA carry, the phase-jitter stream, and
//! the window scale live in DRAM rows like everything else, and a
//! templating attacker (Flip-Feng-Shui style) can land their victim
//! structure next to an aggressor pair. The adversary paces below the
//! raw stage-1 trip so every detection must flow through the carry —
//! exactly the word its weak cell corrupts — while the pair's
//! single-sided splash quietly accumulates on a co-located data victim.
//!
//! Each trial runs the identical attack against two arms:
//!
//! * **unguarded** — raw replica-0 reads, no scrubbing, naive layout
//!   with all replicas in one row. Expected to go blind: zero carry
//!   detections, undeclared data-victim flips, every state flip
//!   silently absorbed.
//! * **guarded** — checksummed triple replicas interleaved 512 rows
//!   apart, majority-vote repair on every read, incremental supervisor
//!   scrub, and escalation to a cold checkpoint restart when a
//!   correlated strike defeats the majority.
//!
//! The merge gate (see `SelfDefenseVerdict::holds`): the baseline
//! demonstrably loses detections and data; the guarded arm out-detects
//! it with zero undeclared flips; and every injected corruption is
//! repaired or escalated — never silently absorbed — with all declared
//! outages inside the envelope's downtime budget.
//!
//! One `(trial, arm)` pair is one pure cell, so
//! `results/selfdefense.json` is byte-for-byte identical at any
//! `--threads`.
//!
//! ```bash
//! cargo run --release -p anvil-bench --bin selfdefense             # full (3 trials × 420 windows)
//! cargo run --release -p anvil-bench --bin selfdefense -- --smoke  # CI subset (2 × 160)
//! cargo run --release -p anvil-bench --bin selfdefense -- --seed 7 --threads 4
//! ```

use anvil_bench::{campaigns, write_json, CampaignArgs, Table};
use anvil_runtime::install_quiet_panic_hook;

/// Default campaign seed; override with `--seed N`.
const DEFAULT_SEED: u64 = 0x5E1F;

fn main() {
    install_quiet_panic_hook();
    let args = CampaignArgs::from_env();
    let seed = args.seed_or(DEFAULT_SEED);

    eprintln!(
        "selfdefense: {} trials × 2 arms, seed {seed:#x}",
        if args.smoke { 2 } else { 3 }
    );
    let out = campaigns::selfdefense(args.smoke, seed, args.threads);
    let v = &out.verdict;

    let mut table = Table::new(
        "Self-defense campaign: the detector's own state under attack",
        &["Metric", "Unguarded baseline", "Guarded detector"],
    );
    table.row(&[
        "stage-2 detections".into(),
        v.baseline_detections.to_string(),
        v.guarded_detections.to_string(),
    ]);
    table.row(&[
        "state flips silently absorbed".into(),
        v.baseline_absorbed.to_string(),
        v.guarded_absorbed.to_string(),
    ]);
    table.row(&[
        "corruptions repaired (declared)".into(),
        "0".into(),
        v.guarded_repaired.to_string(),
    ]);
    table.row(&[
        "corruptions escalated (declared)".into(),
        "0".into(),
        v.guarded_escalated.to_string(),
    ]);
    table.row(&[
        "state flips injected (guarded)".into(),
        "-".into(),
        v.guarded_injected.to_string(),
    ]);
    table.row(&[
        "recovery gaps within budget".into(),
        "-".into(),
        if v.within_budget { "yes" } else { "NO" }.into(),
    ]);
    table.row(&[
        "dead cells".into(),
        v.cell_panics.to_string(),
        String::new(),
    ]);
    table.row(&[
        "UNDECLARED DATA FLIPS".into(),
        v.baseline_undeclared.to_string(),
        v.guarded_undeclared.to_string(),
    ]);
    table.print();

    println!(
        "{}",
        if v.holds() {
            "SELF-INTEGRITY HOLDS: the state-targeting attack blinds the\n\
             unguarded baseline (absorbed state flips, undeclared data flips),\n\
             while the guarded detector keeps detecting, declares every\n\
             corruption as repaired or escalated, and stays inside its\n\
             downtime budget with zero undeclared flips."
        } else {
            "WARNING: the self-defense gate failed (a silently absorbed\n\
             corruption, an undeclared data flip, a missing policy arm, an\n\
             over-budget recovery, or a dead cell)."
        }
    );

    write_json("selfdefense", &out.json);
    if !v.holds() {
        std::process::exit(1);
    }
}
