//! **Ablation** — PEBS sampling rate.
//!
//! ANVIL samples at 5000/s (≈30 samples per 6 ms window). Fewer samples
//! are cheaper but noisier (slower detection under load); more samples
//! cost overhead. This sweep quantifies both sides.

use anvil_bench::{detection_run, normalized_time_target, write_json, AttackKind, Scale, Table};
use anvil_core::{AnvilConfig, PlatformConfig};
use anvil_workloads::SpecBenchmark;
use serde_json::json;

fn main() {
    let scale = Scale::from_args();
    let det_ms = scale.ms(250.0).max(120.0);
    let target_ms = scale.ms(150.0).max(60.0);

    let rates = [1_000u64, 2_500, 5_000, 10_000, 20_000];
    let mut table = Table::new(
        "Ablation: sampling rate (CLFLUSH-free detection under heavy load; mcf overhead)",
        &["Samples/sec", "Detect (heavy) ms", "Flips", "mcf slowdown"],
    );
    let mut records = Vec::new();
    for rate in rates {
        let mut cfg = AnvilConfig::baseline();
        cfg.sampling.interval = 2_600_000_000 / rate;
        let det = detection_run(AttackKind::ClflushFree, cfg, true, det_ms, 7);
        let slowdown = normalized_time_target(
            SpecBenchmark::Mcf,
            PlatformConfig::with_anvil(cfg),
            target_ms,
            7,
        );
        table.row(&[
            rate.to_string(),
            det.detect_ms.map_or("miss".into(), |d| format!("{d:.1}")),
            det.flips.to_string(),
            format!("{slowdown:.4}"),
        ]);
        records.push(json!({
            "samples_per_sec": rate,
            "detect_ms": det.detect_ms,
            "flips": det.flips,
            "mcf_slowdown": slowdown,
        }));
        eprintln!("  [{rate}/s] detect {:?}", det.detect_ms);
    }

    table.print();
    println!(
        "The paper's 5000/s sits at the knee: enough samples for one-window detection\n\
         in the common case, at ~1% overhead for memory-bound programs."
    );
    write_json(
        "ablation_sampling",
        &json!({ "experiment": "ablation_sampling", "rows": records }),
    );
}
