//! **Section 2.1** — The cost of refresh-rate escalation.
//!
//! "Going from a 64ms refresh period to the 15ms required to protect our
//! DRAM requires over a 4x increase in refresh power and throughput
//! overhead." This experiment runs a memory-intensive workload at each
//! refresh period and reports refresh power (from the energy model) and
//! the throughput overhead (refresh-stall cycles), alongside whether the
//! double-sided attack still lands.

use anvil_attacks::{hammer_until_flip, StandaloneHarness};
use anvil_bench::{vulnerable_pair_index, write_json, AttackKind, Table};
use anvil_core::{Platform, PlatformConfig};
use anvil_dram::EnergyModel;
use anvil_mem::{AllocationPolicy, MemoryConfig};
use anvil_workloads::SpecBenchmark;
use serde_json::json;

fn main() {
    let model = EnergyModel::ddr3();
    let pair = vulnerable_pair_index(AttackKind::DoubleSided, MemoryConfig::paper_platform(), 24)
        .unwrap_or(0);

    let mut table = Table::new(
        "Section 2.1: Cost of raising the refresh rate (vs. protection achieved)",
        &[
            "Refresh",
            "Refresh power",
            "vs 64 ms",
            "mcf slowdown",
            "Attack flips?",
        ],
    );
    let mut records = Vec::new();
    let mut base_power = None;
    let mut base_cycles = None;

    for refresh_ms in [64.0, 32.0, 16.0, 15.0, 8.0] {
        let clock = MemoryConfig::paper_platform().clock;
        let mut cfg = MemoryConfig::paper_platform();
        cfg.dram = cfg.dram.with_refresh_ms(clock, refresh_ms);

        // Refresh power (independent of traffic) + mcf throughput.
        let mut p = Platform::new(PlatformConfig {
            memory: cfg,
            ..PlatformConfig::unprotected()
        });
        let pid = p.add_workload(SpecBenchmark::Mcf.build(3)).unwrap();
        p.run_core_ops(pid, 400_000).unwrap();
        let now = p.sys().now();
        let energy = p.sys().dram().energy(&model, now, &clock);
        let power = energy.refresh_mw();
        let cycles = p.core_stats(pid).unwrap().cycles;
        let base_p = *base_power.get_or_insert(power);
        let base_c = *base_cycles.get_or_insert(cycles);

        // Does the attack still land?
        let mut h = StandaloneHarness::new(cfg, AllocationPolicy::Contiguous);
        let mut attack = AttackKind::DoubleSided.build(pair);
        h.prepare(attack.as_mut()).expect("open platform");
        let flips = hammer_until_flip(attack.as_mut(), &mut h, 300_000).flipped;

        table.row(&[
            format!("{refresh_ms:.0} ms"),
            format!("{power:.0} mW"),
            format!("{:.2}x", power / base_p),
            format!("{:.4}", cycles as f64 / base_c as f64),
            if flips { "YES" } else { "no" }.into(),
        ]);
        records.push(json!({
            "refresh_ms": refresh_ms,
            "refresh_mw": power,
            "power_ratio": power / base_p,
            "mcf_slowdown": cycles as f64 / base_c as f64,
            "attack_flips": flips,
        }));
    }

    table.print();
    println!(
        "The paper's Section 2.1 claim, quantified: reaching a refresh period that\n\
         actually stops the attack costs >4x the refresh power (plus throughput loss),\n\
         while ANVIL achieves protection at ~1% CPU overhead (Figure 3)."
    );
    write_json(
        "refresh_power",
        &json!({ "experiment": "refresh_power", "rows": records }),
    );
}
