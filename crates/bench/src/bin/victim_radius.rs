//! **Section 3.3 / 4.5** — Widening the victim radius for denser DRAM.
//!
//! "Two potential victim rows are considered for each potential aggressor
//! row: rows that are directly above and below each potential aggressor
//! row (our approach easily extends to N adjacent rows)." On a future
//! device that also disturbs at distance 2 (as later DDR4/LPDDR4 parts
//! do), radius-1 refreshes leave the aggressor's +/-2 rows hammered. The
//! single-sided attack is the separator: its lone aggressor disturbs
//! +/-1 (covered by radius 1) *and* +/-2 (covered only by radius 2) —
//! whereas a double-sided pair's +/-2 rows are already radius-1 neighbors
//! of one of the aggressors. Same attack, same detector; sweep only
//! `victim_radius`.

use anvil_bench::{write_json, AttackKind, Scale, Table};
use anvil_core::{AnvilConfig, Platform, PlatformConfig};
use anvil_dram::DisturbanceConfig;
use serde_json::json;

fn main() {
    let scale = Scale::from_args();
    let run_ms = scale.ms(200.0).max(100.0);

    let mut table = Table::new(
        "Section 3.3: victim radius vs. distance-2 disturbance (future dense DRAM)",
        &["DRAM reach", "victim_radius", "Detected", "Bit flips"],
    );
    let mut records = Vec::new();

    for (reach_label, disturbance) in [
        ("1 (paper's DDR3)", DisturbanceConfig::paper_ddr3()),
        ("2 (future dense)", DisturbanceConfig::future_distance2()),
    ] {
        // Pick an aggressor whose distance-2 neighborhood contains a
        // minimum-threshold row, so the radius difference is observable.
        let mut chosen = 0;
        for i in 0..24 {
            let mut pc = PlatformConfig::unprotected();
            pc.memory.dram.disturbance = disturbance;
            let mut probe = Platform::new(pc);
            let Ok(pid) = probe.add_attack(AttackKind::SingleSided.build(i)) else {
                continue;
            };
            let (aggs, _) = probe.attack_truth(pid);
            let dram = probe.sys().dram();
            let vulnerable_at_2 = [-2i64, 2].iter().any(|&d| {
                dram.mapping()
                    .same_bank_row_offset(aggs[0], d)
                    .is_some_and(|pa| {
                        dram.is_vulnerable_row(dram.mapping().location_of(pa).row_id())
                    })
            });
            if vulnerable_at_2 {
                chosen = i;
                break;
            }
        }
        for radius in [1u32, 2] {
            let mut anvil = AnvilConfig::baseline();
            anvil.victim_radius = radius;
            // Match the detector's rate assumption to the denser device;
            // a lower flip threshold also forces a proportionally lower
            // stage-1 trip point or the guarantee-envelope gate rejects
            // the config (an attacker pacing under the old 20K could
            // reach the denser device's flip count undetected).
            anvil.min_hammer_accesses = disturbance.double_sided_threshold / 2;
            anvil.llc_miss_threshold = (anvil.llc_miss_threshold
                * disturbance.double_sided_threshold
                / DisturbanceConfig::paper_ddr3().double_sided_threshold)
                .max(1);
            let mut pc = PlatformConfig::with_anvil(anvil);
            pc.memory.dram.disturbance = disturbance;
            let mut p = Platform::new(pc);
            p.add_attack(AttackKind::SingleSided.build(chosen))
                .expect("prepares");
            p.run_ms(run_ms).unwrap();
            table.row(&[
                reach_label.into(),
                radius.to_string(),
                p.first_detection_ms()
                    .map_or("no".into(), |t| format!("{t:.1} ms")),
                p.total_flips().to_string(),
            ]);
            records.push(json!({
                "dram_reach": reach_label,
                "victim_radius": radius,
                "detect_ms": p.first_detection_ms(),
                "flips": p.total_flips(),
            }));
            eprintln!(
                "  [{reach_label} / radius {radius}] flips {}",
                p.total_flips()
            );
        }
    }

    table.print();
    println!(
        "Expected: radius 1 suffices on the paper's DDR3; on a distance-2 device the\n\
         +/-2 rows keep charging between refreshes unless the radius widens to 2 —\n\
         the knob the paper's parenthetical promises."
    );
    write_json(
        "victim_radius",
        &json!({ "experiment": "victim_radius", "rows": records }),
    );
}
