//! **Table 4** — Rate of false-positive refreshes.
//!
//! Paper values (refreshes/second under ANVIL-baseline): astar 0.10,
//! bzip2 1.05, gcc 0.71, gobmk 0.19, h264ref 0.00, hmmer 0.00,
//! libquantum 0.06, mcf 0.01, omnetpp 0.02, perlbench 0.00, sjeng 0.00,
//! xalancbmk 0.05. False positives are innocuous — each costs only a few
//! extra DRAM reads.

use anvil_bench::{false_positive_rate, write_json, Scale, Table};
use anvil_core::AnvilConfig;
use anvil_workloads::SpecBenchmark;
use serde_json::json;

fn main() {
    let scale = Scale::from_args();
    let run_ms = scale.ms(2_000.0).max(400.0);

    let paper: &[(&str, f64)] = &[
        ("astar", 0.10),
        ("bzip2", 1.05),
        ("gcc", 0.71),
        ("gobmk", 0.19),
        ("h264ref", 0.00),
        ("hmmer", 0.00),
        ("libquantum", 0.06),
        ("mcf", 0.01),
        ("omnetpp", 0.02),
        ("perlbench", 0.00),
        ("sjeng", 0.00),
        ("xalancbmk", 0.05),
    ];

    let mut table = Table::new(
        "Table 4: Rate of False Positive Refreshes (ANVIL-baseline)",
        &[
            "Benchmark",
            "Refreshes/sec (measured)",
            "Refreshes/sec (paper)",
        ],
    );
    let mut records = Vec::new();
    for bench in SpecBenchmark::all() {
        let rate = false_positive_rate(bench, AnvilConfig::baseline(), run_ms, 17);
        let paper_rate = paper
            .iter()
            .find(|(n, _)| *n == bench.name())
            .map(|(_, r)| *r)
            .unwrap_or(f64::NAN);
        table.row(&[
            bench.name().to_string(),
            format!("{rate:.2}"),
            format!("{paper_rate:.2}"),
        ]);
        records.push(json!({
            "benchmark": bench.name(),
            "measured_refreshes_per_sec": rate,
            "paper_refreshes_per_sec": paper_rate,
            "simulated_ms": run_ms,
        }));
        eprintln!("  [{}] {:.2}/s", bench.name(), rate);
    }

    table.print();
    println!("All rates should be ~1/s or below; bzip2 and gcc the highest (paper).");
    write_json(
        "table4",
        &json!({ "experiment": "table4", "rows": records }),
    );
}
