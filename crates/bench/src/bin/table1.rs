//! **Table 1** — Rowhammer Attack Characteristics.
//!
//! Paper values (4 GB DDR3, Sandy Bridge, 64 ms refresh):
//!
//! | Technique                    | Min row accesses | Time to first flip |
//! |------------------------------|------------------|--------------------|
//! | Single-sided with CLFLUSH    | 400K             | 58 ms              |
//! | Double-sided with CLFLUSH    | 220K             | 15 ms              |
//! | Double-sided without CLFLUSH | 220K             | 45 ms              |
//!
//! Method, mirroring the paper: scan candidate aggressor rows (a real
//! attacker profiles the module the same way), hammer each until the first
//! flip, and report the minimum access count and the wall-clock time.

use anvil_attacks::{hammer_until_flip, StandaloneHarness};
use anvil_bench::{write_json, AttackKind, Scale, Table};
use anvil_mem::{AllocationPolicy, MemoryConfig};
use serde_json::json;

fn main() {
    let scale = Scale::from_args();
    let candidates = scale.ops(16).max(4) as usize;
    let config = MemoryConfig::paper_platform();
    let clock = config.clock;

    let mut table = Table::new(
        "Table 1: Rowhammer Attack Characteristics",
        &[
            "Hammer Technique",
            "Min DRAM Row Accesses",
            "Time to First Bit Flip",
        ],
    );
    let mut records = Vec::new();

    for kind in AttackKind::all() {
        // Profile candidates and keep the best (minimum) result, exactly
        // like `rowhammer-test` scanning a module.
        let mut best: Option<(u64, f64)> = None;
        for pair in 0..candidates {
            let mut harness = StandaloneHarness::new(config, AllocationPolicy::Contiguous);
            let mut attack = kind.build(pair);
            if harness.prepare(attack.as_mut()).is_err() {
                continue;
            }
            // Cap at 1.2x the single-sided minimum: anything slower is not
            // the module minimum.
            let result = hammer_until_flip(attack.as_mut(), &mut harness, 480_000);
            if result.flipped {
                let ms = result.time_to_first_flip_ms(&clock).expect("flipped");
                let better = best.map_or(true, |(acc, _)| result.aggressor_accesses < acc);
                if better {
                    best = Some((result.aggressor_accesses, ms));
                }
            }
        }
        match best {
            Some((accesses, ms)) => {
                table.row(&[
                    kind.label().to_string(),
                    format!("{}K", accesses / 1000),
                    format!("{ms:.0} ms"),
                ]);
                records.push(json!({
                    "attack": kind.label(),
                    "min_row_accesses": accesses,
                    "time_to_first_flip_ms": ms,
                }));
            }
            None => {
                table.row(&[
                    kind.label().to_string(),
                    "no flip".to_string(),
                    "-".to_string(),
                ]);
                records.push(json!({ "attack": kind.label(), "min_row_accesses": null }));
            }
        }
    }

    table.print();
    println!(
        "Paper: 400K/58ms (single-sided), 220K/15ms (double-sided), 220K/45ms (CLFLUSH-free)."
    );
    write_json(
        "table1",
        &json!({ "experiment": "table1", "rows": records }),
    );
}
