//! **Ablation** — the stage-1 LLC-miss threshold.
//!
//! The paper sets `LLC_MISS_THRESHOLD = 20K` per 6 ms from the minimum
//! hammering rate that flips bits (Section 4.2: 220K accesses per 64 ms
//! window → 20.6K per 6 ms). This ablation sweeps the threshold and shows
//! the trade-off: lower thresholds arm the expensive sampling stage more
//! often (overhead ↑), higher thresholds risk missing slow attacks.

use anvil_bench::{normalized_time_target, write_json, Scale, Table};
use anvil_core::{AnvilConfig, Platform, PlatformConfig};
use anvil_workloads::SpecBenchmark;
use serde_json::json;

/// Fraction of stage-1 windows that crossed the threshold for `bench`.
fn crossing_fraction(bench: SpecBenchmark, anvil: AnvilConfig, ms: f64) -> f64 {
    let mut p = Platform::new(PlatformConfig::with_anvil(anvil));
    p.add_workload(bench.build(13)).unwrap();
    p.run_ms(ms).unwrap();
    let s = p.detector_stats().expect("anvil loaded");
    if s.stage1_windows == 0 {
        0.0
    } else {
        s.threshold_crossings as f64 / s.stage1_windows as f64
    }
}

fn main() {
    let scale = Scale::from_args();
    let ms = scale.ms(400.0).max(150.0);
    let target_ms = scale.ms(150.0).max(60.0);

    let thresholds = [5_000u64, 10_000, 20_000, 40_000, 80_000];
    let mut table = Table::new(
        "Ablation: stage-1 miss threshold (mcf: crossings & slowdown; sjeng: crossings)",
        &[
            "Threshold",
            "mcf windows crossed",
            "mcf slowdown",
            "sjeng windows crossed",
        ],
    );
    let mut records = Vec::new();
    for t in thresholds {
        let mut cfg = AnvilConfig::baseline();
        cfg.llc_miss_threshold = t;
        // The guarantee-envelope gate rejects permissive thresholds: an
        // attacker pacing just under them reaches the flip count without
        // ever arming stage 2. Report the rejection instead of running a
        // detector that is unsafe by construction.
        if let Err(e) = cfg.validate() {
            table.row(&[
                format!("{}K", t / 1000),
                "rejected (envelope)".into(),
                "-".into(),
                "-".into(),
            ]);
            records.push(json!({
                "threshold": t,
                "rejected": e.to_string(),
            }));
            eprintln!("  [threshold {t}] rejected: {e}");
            continue;
        }
        let mcf_cross = crossing_fraction(SpecBenchmark::Mcf, cfg, ms);
        let sjeng_cross = crossing_fraction(SpecBenchmark::Sjeng, cfg, ms);
        let slowdown = normalized_time_target(
            SpecBenchmark::Mcf,
            PlatformConfig::with_anvil(cfg),
            target_ms,
            13,
        );
        table.row(&[
            format!("{}K", t / 1000),
            format!("{:.0}%", mcf_cross * 100.0),
            format!("{slowdown:.4}"),
            format!("{:.0}%", sjeng_cross * 100.0),
        ]);
        records.push(json!({
            "threshold": t,
            "mcf_crossing_fraction": mcf_cross,
            "mcf_slowdown": slowdown,
            "sjeng_crossing_fraction": sjeng_cross,
        }));
        eprintln!("  [threshold {t}] mcf {:.0}% crossed", mcf_cross * 100.0);
    }

    table.print();
    println!(
        "Paper (Section 4.3): memory-intensive benchmarks cross the 20K threshold in\n\
         95-99% of windows; compute-bound ones in <10% — sampling cost tracks that."
    );
    write_json(
        "ablation_threshold",
        &json!({ "experiment": "ablation_threshold", "rows": records }),
    );
}
