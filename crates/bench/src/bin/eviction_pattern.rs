//! **Section 2.2** — Cost of the CLFLUSH-free eviction pattern.
//!
//! The paper estimates the tuned per-set pattern at `29*20 + 2*150 = 880`
//! cycles (~338 ns), allowing "up to 190K double-sided hammers within a
//! 64 ms refresh period", with "only two addresses (A0 and X11) missing
//! for each iteration". This experiment builds a real eviction set on the
//! simulated machine, scores every candidate template, and reports the
//! steady-state miss counts and the achievable hammer rate.

use anvil_attacks::{measure_hammer_rate, ClflushFreeDoubleSided, StandaloneHarness};
use anvil_bench::{write_json, Table};
use anvil_cache::CacheHierarchy;
use anvil_mem::{AllocationPolicy, MemoryConfig};
use serde_json::json;

fn main() {
    let config = MemoryConfig::paper_platform();
    let clock = config.clock;

    // Prepare the attack: this builds eviction sets and scores templates.
    let mut harness = StandaloneHarness::new(config, AllocationPolicy::Contiguous);
    let mut attack = ClflushFreeDoubleSided::new();
    harness.prepare(&mut attack).expect("open platform");
    let (pat_a, pat_b) = {
        let (a, b) = attack.patterns().expect("prepared");
        (a.clone(), b.clone())
    };

    let mut table = Table::new(
        "Section 2.2: Discovered eviction patterns (per aggressor set)",
        &[
            "Set",
            "Template",
            "Accesses/iter",
            "LLC misses/iter",
            "Aggressor miss rate",
            "Est. cycles/iter",
        ],
    );
    for (name, p) in [("X (below)", &pat_a), ("Y (above)", &pat_b)] {
        table.row(&[
            name.to_string(),
            format!("{:?}", p.template),
            p.sequence.len().to_string(),
            format!("{:.2}", p.misses_per_iteration),
            format!("{:.2}", p.aggressor_miss_rate),
            format!("{:.0}", p.est_cycles_per_iteration),
        ]);
    }
    table.print();

    // Measure the achieved hammer rate end-to-end on the machine.
    let ops_per_iter = (pat_a.sequence.len() + pat_b.sequence.len()) as u64;
    let iters = 20_000u64;
    let (aggressor_accesses, cycles) =
        measure_hammer_rate(&mut attack, &mut harness, iters * ops_per_iter);
    let hammers = aggressor_accesses / 2; // one access to each aggressor per hammer
    let cycles_per_hammer = cycles as f64 / hammers.max(1) as f64;
    let ns_per_hammer = clock.cycles_to_ns(cycles_per_hammer as u64);
    let hammers_per_64ms = (clock.ms_to_cycles(64.0) as f64 / cycles_per_hammer) as u64;

    let mut t2 = Table::new(
        "Section 2.2: End-to-end hammer rate (both sets interleaved)",
        &["Metric", "Measured", "Paper"],
    );
    t2.row(&[
        "cycles per double-sided hammer".into(),
        format!("{cycles_per_hammer:.0}"),
        "~880 x 2 sets (estimate)".into(),
    ]);
    t2.row(&[
        "ns per double-sided hammer".into(),
        format!("{ns_per_hammer:.0}"),
        "~338 per set".into(),
    ]);
    t2.row(&[
        "max double-sided hammers / 64 ms".into(),
        format!("{}K", hammers_per_64ms / 1000),
        "up to 190K".into(),
    ]);
    t2.row(&["needed for a flip".into(), "110K".into(), "110K".into()]);
    t2.print();

    // Sanity: the pattern's aggressor misses dominate an actual hierarchy.
    let h = CacheHierarchy::new(config.hierarchy);
    println!(
        "LLC: {} ways x {} sets/slice x {} slices (inclusive, Bit-PLRU)",
        h.llc_ways(),
        config.hierarchy.l3.sets() / config.hierarchy.l3_slices,
        config.hierarchy.l3_slices,
    );
    println!(
        "Verdict: {} — the CLFLUSH-free pattern sustains enough hammers per refresh window.",
        if hammers_per_64ms > 110_000 {
            "ATTACK FEASIBLE"
        } else {
            "attack infeasible"
        }
    );

    write_json(
        "eviction_pattern",
        &json!({
            "experiment": "eviction_pattern",
            "pattern_below": {
                "template": format!("{:?}", pat_a.template),
                "accesses_per_iter": pat_a.sequence.len(),
                "misses_per_iter": pat_a.misses_per_iteration,
                "aggressor_miss_rate": pat_a.aggressor_miss_rate,
                "est_cycles_per_iter": pat_a.est_cycles_per_iteration,
            },
            "pattern_above": {
                "template": format!("{:?}", pat_b.template),
                "accesses_per_iter": pat_b.sequence.len(),
                "misses_per_iter": pat_b.misses_per_iteration,
                "aggressor_miss_rate": pat_b.aggressor_miss_rate,
                "est_cycles_per_iter": pat_b.est_cycles_per_iteration,
            },
            "cycles_per_hammer": cycles_per_hammer,
            "hammers_per_64ms": hammers_per_64ms,
        }),
    );
}
