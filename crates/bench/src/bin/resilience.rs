//! **Fault campaign** — detector resilience under a degraded substrate.
//!
//! ANVIL's no-flip guarantee rests on a measurement pipeline that real
//! hardware degrades in well-documented ways: PEBS debug-store buffers
//! overflow, PMIs are held off by interrupt-masked sections, pagemap
//! walks race with migration, the kernel thread is preempted, and DDR3
//! controllers legally postpone refresh. This bench sweeps every built-in
//! [`anvil_faults::FaultScenario`] across the attack matrix and fault
//! intensities and reports, per cell: detection latency, bit flips, and
//! degraded-mode engagement. A cell counts as *protected* when no bit
//! flipped and either a detection fired or the degraded fallback visibly
//! engaged.
//!
//! A second, smaller matrix crosses the faults with the *adaptive*
//! adversaries from `anvil-adversary`: the hardened detector on future
//! DRAM must keep its no-flip record even when the substrate degrades
//! while the attacker is actively dodging the measurement pipeline.
//!
//! The campaign seed is recorded in `results/resilience.json`, so any
//! failing cell reproduces byte-for-byte with the same binary; the cells
//! are independent, so `--threads N` fans them across cores without
//! changing a byte of the record:
//!
//! ```bash
//! cargo run --release -p anvil-bench --bin resilience            # full sweep
//! cargo run --release -p anvil-bench --bin resilience -- --smoke # CI subset
//! cargo run --release -p anvil-bench --bin resilience -- --seed 7 --threads 4
//! ```

use anvil_bench::{campaigns, write_json, CampaignArgs, Table};

/// Default campaign seed; override with `--seed N`.
const DEFAULT_SEED: u64 = 0xA_11CE;

fn main() {
    let args = CampaignArgs::from_env();
    let seed = args.seed_or(DEFAULT_SEED);
    // Long enough for the slowest in-matrix detection (CLFLUSH-free needs
    // most of a refresh window) plus slack for fault-delayed windows.
    // `--windows N` overrides the duration directly (6 ms per stage-1
    // window).
    let run_ms = args.windows.map_or(
        if args.smoke {
            70.0
        } else {
            args.scale().ms(120.0).max(70.0)
        },
        |w| w as f64 * 6.0,
    );
    let out = campaigns::resilience(args.smoke, run_ms, seed, args.threads);

    let mut table = Table::new(
        "Fault campaign: protection under a degraded substrate",
        &[
            "Scenario",
            "Attack",
            "Intensity",
            "Detected at",
            "Degraded",
            "Flips",
            "Protected",
        ],
    );
    for s in &out.cells {
        table.row(&[
            s.scenario.clone(),
            s.attack.clone(),
            format!("{:.1}", s.intensity),
            s.detect_ms.map_or("never".into(), |d| format!("{d:.1} ms")),
            s.degraded_windows.to_string(),
            s.flips.to_string(),
            if s.protected { "yes" } else { "NO" }.to_string(),
        ]);
    }
    let mut cross_table = Table::new(
        "Fault x evasion: adaptive adversaries on a degraded substrate (hardened, future DRAM)",
        &[
            "Scenario",
            "Adversary",
            "Detected at",
            "Degraded",
            "Flips",
            "Protected",
        ],
    );
    for s in &out.cross_cells {
        cross_table.row(&[
            s.scenario.clone(),
            s.attack.clone(),
            s.detect_ms.map_or("never".into(), |d| format!("{d:.1} ms")),
            s.degraded_windows.to_string(),
            s.flips.to_string(),
            if s.protected { "yes" } else { "NO" }.to_string(),
        ]);
    }

    table.print();
    cross_table.print();
    println!(
        "{}",
        if out.unprotected == 0 {
            "ZERO FLIPS in every cell — the no-flip guarantee holds under every\n\
             built-in fault scenario (degraded-mode engagements count as\n\
             protection and are visible in the Degraded column)."
        } else {
            "WARNING: some cells flipped bits or showed no protection signal."
        }
    );
    for p in &out.panics {
        eprintln!("resilience: {p}");
    }
    write_json("resilience", &out.json);
    if out.unprotected > 0 {
        std::process::exit(1);
    }
}
