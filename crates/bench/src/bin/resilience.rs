//! **Fault campaign** — detector resilience under a degraded substrate.
//!
//! ANVIL's no-flip guarantee rests on a measurement pipeline that real
//! hardware degrades in well-documented ways: PEBS debug-store buffers
//! overflow, PMIs are held off by interrupt-masked sections, pagemap
//! walks race with migration, the kernel thread is preempted, and DDR3
//! controllers legally postpone refresh. This bench sweeps every built-in
//! [`FaultScenario`] across the attack matrix and fault intensities and
//! reports, per cell: detection latency, bit flips, and degraded-mode
//! engagement. A cell counts as *protected* when no bit flipped and
//! either a detection fired or the degraded fallback visibly engaged.
//!
//! A second, smaller matrix crosses the faults with the *adaptive*
//! adversaries from `anvil-adversary`: the hardened detector on future
//! DRAM must keep its no-flip record even when the substrate degrades
//! while the attacker is actively dodging the measurement pipeline.
//!
//! The campaign seed is recorded in `results/resilience.json`, so any
//! failing cell reproduces byte-for-byte with the same binary:
//!
//! ```bash
//! cargo run --release -p anvil-bench --bin resilience            # full sweep
//! cargo run --release -p anvil-bench --bin resilience -- --smoke # CI subset
//! cargo run --release -p anvil-bench --bin resilience -- --seed 7
//! ```

use anvil_adversary::{DistributedManySided, DutyCycleHammer};
use anvil_attacks::Attack;
use anvil_bench::{
    evasion_resilience_run, resilience_run, windows_from_args, write_json, AttackKind, Scale, Table,
};
use anvil_core::AnvilConfig;
use anvil_faults::FaultScenario;
use serde_json::json;

/// Default campaign seed; override with `--seed N`.
const DEFAULT_SEED: u64 = 0xA_11CE;

fn seed_from_args() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = Scale::from_args();
    let seed = seed_from_args();
    // Long enough for the slowest in-matrix detection (CLFLUSH-free needs
    // most of a refresh window) plus slack for fault-delayed windows.
    // `--windows N` overrides the duration directly (6 ms per stage-1
    // window).
    let run_ms = windows_from_args().map_or(
        if smoke {
            70.0
        } else {
            scale.ms(120.0).max(70.0)
        },
        |w| w as f64 * 6.0,
    );
    let intensities: &[f64] = if smoke { &[1.0] } else { &[0.5, 1.0] };
    let attacks: Vec<AttackKind> = if smoke {
        vec![AttackKind::DoubleSided]
    } else {
        AttackKind::all().to_vec()
    };

    let mut table = Table::new(
        "Fault campaign: protection under a degraded substrate",
        &[
            "Scenario",
            "Attack",
            "Intensity",
            "Detected at",
            "Degraded",
            "Flips",
            "Protected",
        ],
    );
    let mut cells = Vec::new();
    let mut unprotected = 0u32;

    for scenario in FaultScenario::ALL {
        for &intensity in intensities {
            for &kind in &attacks {
                let s = resilience_run(
                    scenario,
                    intensity,
                    kind,
                    AnvilConfig::baseline(),
                    run_ms,
                    seed,
                );
                if !s.protected {
                    unprotected += 1;
                }
                table.row(&[
                    s.scenario.clone(),
                    s.attack.clone(),
                    format!("{intensity:.1}"),
                    s.detect_ms.map_or("never".into(), |d| format!("{d:.1} ms")),
                    s.degraded_windows.to_string(),
                    s.flips.to_string(),
                    if s.protected { "yes" } else { "NO" }.to_string(),
                ]);
                eprintln!(
                    "  [{} / {} / {intensity:.1}] detect {:?}, degraded {}, flips {}",
                    s.scenario, s.attack, s.detect_ms, s.degraded_windows, s.flips
                );
                cells.push(serde_json::to_value(&s));
            }
        }
    }

    // Fault × evasion cross-matrix: adaptive adversaries while the
    // substrate degrades, against the hardened detector on future DRAM.
    // PEBS overflow starves exactly the stage-2 evidence the hardened
    // countermeasures (ledger, sticky sampling) feed on; the combined
    // scenario stacks every fault class at once.
    let cross_scenarios: &[FaultScenario] = if smoke {
        &[FaultScenario::PebsOverflow]
    } else {
        &[FaultScenario::PebsOverflow, FaultScenario::Combined]
    };
    let evaders: &[fn() -> Box<dyn Attack>] = if smoke {
        &[|| Box::new(DutyCycleHammer::new())]
    } else {
        &[
            || Box::new(DutyCycleHammer::new()),
            || Box::new(DistributedManySided::new()),
        ]
    };
    let mut cross_table = Table::new(
        "Fault x evasion: adaptive adversaries on a degraded substrate (hardened, future DRAM)",
        &[
            "Scenario",
            "Adversary",
            "Detected at",
            "Degraded",
            "Flips",
            "Protected",
        ],
    );
    let mut cross_cells = Vec::new();
    for &scenario in cross_scenarios {
        for build in evaders {
            let s = evasion_resilience_run(
                scenario,
                1.0,
                build(),
                AnvilConfig::hardened(),
                run_ms,
                seed,
            );
            if !s.protected {
                unprotected += 1;
            }
            cross_table.row(&[
                s.scenario.clone(),
                s.attack.clone(),
                s.detect_ms.map_or("never".into(), |d| format!("{d:.1} ms")),
                s.degraded_windows.to_string(),
                s.flips.to_string(),
                if s.protected { "yes" } else { "NO" }.to_string(),
            ]);
            eprintln!(
                "  [cross: {} / {}] detect {:?}, degraded {}, flips {}",
                s.scenario, s.attack, s.detect_ms, s.degraded_windows, s.flips
            );
            cross_cells.push(serde_json::to_value(&s));
        }
    }

    table.print();
    cross_table.print();
    println!(
        "{}",
        if unprotected == 0 {
            "ZERO FLIPS in every cell — the no-flip guarantee holds under every\n\
             built-in fault scenario (degraded-mode engagements count as\n\
             protection and are visible in the Degraded column)."
        } else {
            "WARNING: some cells flipped bits or showed no protection signal."
        }
    );
    write_json(
        "resilience",
        &json!({
            "experiment": "resilience",
            "seed": seed,
            "run_ms": run_ms,
            "smoke": smoke,
            "unprotected": unprotected,
            "cells": cells,
            "cross_cells": cross_cells,
        }),
    );
    if unprotected > 0 {
        std::process::exit(1);
    }
}
