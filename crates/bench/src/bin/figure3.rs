//! **Figure 3** — ANVIL's impact on non-malicious programs.
//!
//! Normalized execution time of the SPEC2006-int models under (a)
//! ANVIL-baseline and (b) the vendors' doubled DRAM refresh rate, both
//! relative to an unprotected 64 ms-refresh system. Paper: ANVIL averages
//! ~1.01 with a 1.032 peak; double refresh is comparable on average but
//! hits memory-intensive programs (mcf) hardest.

use anvil_bench::{double_refresh_platform, normalized_time_target, write_json, Scale, Table};
use anvil_core::{AnvilConfig, PlatformConfig};
use anvil_workloads::SpecBenchmark;
use serde_json::json;

fn main() {
    let scale = Scale::from_args();
    // Enough simulated time to span many detector windows for every model.
    let target_ms = scale.ms(250.0).max(80.0);

    let mut table = Table::new(
        "Figure 3: Normalized Execution Time (1.00 = unprotected, 64 ms refresh)",
        &["Benchmark", "ANVIL", "Double Refresh"],
    );
    let mut records = Vec::new();
    let mut anvil_sum = 0.0;
    let mut anvil_peak: f64 = 0.0;
    let mut dbl_sum = 0.0;

    for bench in SpecBenchmark::all() {
        let anvil = normalized_time_target(
            bench,
            PlatformConfig::with_anvil(AnvilConfig::baseline()),
            target_ms,
            5,
        );
        let dbl = normalized_time_target(bench, double_refresh_platform(), target_ms, 5);
        anvil_sum += anvil;
        anvil_peak = anvil_peak.max(anvil);
        dbl_sum += dbl;
        table.row(&[
            bench.name().to_string(),
            format!("{anvil:.4}"),
            format!("{dbl:.4}"),
        ]);
        records.push(json!({
            "benchmark": bench.name(),
            "anvil": anvil,
            "double_refresh": dbl,
            "target_ms": target_ms,
        }));
        eprintln!(
            "  [{}] anvil {:.4}, double-refresh {:.4}",
            bench.name(),
            anvil,
            dbl
        );
    }

    let n = SpecBenchmark::all().len() as f64;
    table.row(&[
        "AVERAGE".to_string(),
        format!("{:.4}", anvil_sum / n),
        format!("{:.4}", dbl_sum / n),
    ]);
    table.print();
    println!(
        "Paper: ANVIL average 1.0117, peak 1.0318; double refresh similar on average\n\
         but worst for memory-intensive benchmarks (mcf)."
    );
    write_json(
        "figure3",
        &json!({
            "experiment": "figure3",
            "rows": records,
            "anvil_average": anvil_sum / n,
            "anvil_peak": anvil_peak,
            "double_refresh_average": dbl_sum / n,
        }),
    );
}
