//! **Symbolic verification campaign** — abstract interpretation over the
//! detector × attack IR, with replayable counterexamples.
//!
//! For every adversary archetype of the guarantee envelope (sustained
//! pacing, boundary straddling, camouflage, distributed many-sided),
//! the `anvil-analyze` verifier abstract-interprets the detector's pure
//! transition functions over the family's *entire parameter box* and
//! derives a sound upper bound on undetectable activations per aggressor
//! pair per refresh interval. Each bound is cross-checked against the
//! closed-form [`anvil_core::GuaranteeEnvelope`] audit (a sound
//! over-approximation must dominate it) and judged against two flip
//! thresholds: the paper's 220K design point and the future
//! half-threshold DRAM generation.
//!
//! * **proved** — the bound stays under the threshold: no member of the
//!   family can flip a bit undetected, and the remaining margin is
//!   converted into a detector-downtime budget in cycles.
//! * **refuted** — the bound clears the threshold *and* a concrete
//!   family member extracted from the box replays through the full
//!   dynamic simulator to a real missed detection (flips, no alarm).
//!   The witness is recorded in `results/verifier.json` with everything
//!   needed to reproduce it byte-for-byte.
//! * **unconfirmed** — the bound is too loose to prove safety but no
//!   tried family member evades: the over-approximation, not the
//!   detector, is the limit.
//!
//! The campaign exits non-zero when any bound undercuts its audit
//! budget, a refutation contradicts an envelope that the audit says
//! holds, a refutation's witness fails to replay, a hardened
//! design-threshold cell escapes its proof obligation, or no refutation
//! demonstrates the counterexample machinery at all.
//!
//! The campaign seed is threaded through the DRAM fault map and the
//! hardened window-phase schedule, so `results/verifier.json`
//! reproduces byte-for-byte with the same binary and seed — at any
//! `--threads` count, since the cells are independent:
//!
//! ```bash
//! cargo run --release -p anvil-bench --bin verify            # full matrix
//! cargo run --release -p anvil-bench --bin verify -- --smoke # CI subset
//! cargo run --release -p anvil-bench --bin verify -- --seed 7 --threads 4
//! ```

use anvil_bench::{campaigns, write_json, CampaignArgs, Table};

/// Default campaign seed; override with `--seed N`. Matches the evasion
/// campaign so witnesses line up with `results/evasion.json` cells.
const DEFAULT_SEED: u64 = 0xE5A51;

fn main() {
    let args = CampaignArgs::from_env();
    let seed = args.seed_or(DEFAULT_SEED);
    // Witness replays share the evasion campaign's horizon: long enough
    // for the slowest confirmed flip in the matrix. `--windows N`
    // overrides the duration directly (6 ms per stage-1 window).
    let run_ms = args
        .windows
        .map_or(args.scale().ms(80.0).max(70.0), |w| w as f64 * 6.0);
    let out = campaigns::verify(args.smoke, run_ms, seed, args.threads);

    let mut table = Table::new(
        "Symbolic guarantee verifier: abstract bounds vs replayable witnesses",
        &[
            "Archetype",
            "Detector",
            "Flip@",
            "Bound",
            "Audit",
            "Sound",
            "Verdict",
            "Witness",
            "Downtime budget",
        ],
    );
    for c in &out.cells {
        table.row(&[
            c.archetype.to_string(),
            c.detector.to_string(),
            c.flip_threshold.to_string(),
            c.bound.bound.to_string(),
            c.bound.audit_budget.to_string(),
            if c.bound.sound_wrt_audit { "yes" } else { "NO" }.to_string(),
            c.verdict.to_string(),
            c.witness.as_ref().map_or_else(
                || "-".to_string(),
                |w| {
                    format!(
                        "{}{}",
                        w.spec.label(),
                        if c.witness_confirmed {
                            " (replays)"
                        } else {
                            " (STALE)"
                        }
                    )
                },
            ),
            if c.downtime_budget_cycles > 0 {
                format!("{} cy", c.downtime_budget_cycles)
            } else {
                "-".to_string()
            },
        ]);
    }
    table.print();

    println!(
        "{}",
        if out.violations == 0 && out.demonstrated {
            "VERIFIER SOUND AND SHARP: every abstract bound dominates its\n\
             audit budget, every hardened design-threshold claim is proved,\n\
             and every refutation ships a witness that replays to a real\n\
             missed detection."
        } else if out.violations > 0 {
            "FAILURE: a symbolic bound undercut its audit budget, a\n\
             refutation contradicted a holding envelope or lost its\n\
             witness, or a hardened design-threshold proof obligation\n\
             failed."
        } else {
            "FAILURE: no refutation carried a confirmed witness — the\n\
             counterexample machinery demonstrated nothing."
        }
    );
    write_json("verifier", &out.json);
    if out.violations > 0 || !out.demonstrated {
        std::process::exit(1);
    }
}
