//! **Soak campaign** — detector lifecycle resilience over millions of
//! windows.
//!
//! The other campaigns measure the detector over a handful of refresh
//! intervals; this one runs it for simulated *hours* under the
//! supervised runtime (`anvil-runtime`): mixed benign + paced-adversary
//! traffic, a seeded schedule of injected detector crashes, service
//! stalls and checkpoint corruptions, and periodic hot reloads. The
//! restart-aware adversary hammers flat out into every injected
//! downtime gap.
//!
//! The campaign gates on three claims:
//!
//! * **zero flips** — accumulated aggressor evidence plus the worst gap
//!   burst never reaches the flip threshold before a refresh lands;
//! * **bounded recovery** — the worst observed crash-to-resume gap stays
//!   inside the guarantee envelope's downtime budget;
//! * **the supervisor never gives up** — the restart budget is never
//!   exhausted.
//!
//! The seed is recorded in `results/soak.json`; the same seed reproduces
//! the identical summary byte-for-byte.
//!
//! ```bash
//! cargo run --release -p anvil-bench --bin soak                  # full (2M windows)
//! cargo run --release -p anvil-bench --bin soak -- --smoke       # CI subset
//! cargo run --release -p anvil-bench --bin soak -- --windows 500000 --seed 7
//! cargo run --release -p anvil-bench --bin soak -- --engine per-op  # reference core
//! ```
//!
//! `--engine per-op|event` selects the simulation core (default:
//! `event`, the epoch-skipping engine). `results/soak.json` is
//! byte-identical either way; CI diffs both on every push.

use anvil_bench::{campaigns, write_json, CampaignArgs, Table};
use anvil_runtime::{install_quiet_panic_hook, SoakConfig};

/// Default campaign seed; override with `--seed N`.
const DEFAULT_SEED: u64 = 0x50AC;

/// Full-campaign window count (~3.5 simulated hours at 6 ms/window).
const FULL_WINDOWS: u64 = 2_000_000;

/// Smoke window count, sized to finish in tens of seconds in CI while
/// still injecting hundreds of crashes and several reloads.
const SMOKE_WINDOWS: u64 = 120_000;

fn main() {
    // Thousands of injected detector crashes would otherwise each print
    // a panic report.
    install_quiet_panic_hook();
    let args = CampaignArgs::from_env();
    let seed = args.seed_or(DEFAULT_SEED);
    let windows = args.windows.unwrap_or(if args.smoke {
        SMOKE_WINDOWS
    } else {
        FULL_WINDOWS
    });
    let mut cfg = SoakConfig::standard(windows, seed);
    if args.smoke {
        // Keep the absolute crash/reload counts meaningful at the
        // smaller scale.
        cfg.lifecycle.crash_rate = 5e-3;
        cfg.reload_every = 20_000;
    }

    eprintln!(
        "soak: {windows} windows, seed {seed:#x}, crash rate {}, reload every {}, engine {}",
        cfg.lifecycle.crash_rate,
        cfg.reload_every,
        args.engine.as_str()
    );
    let out = campaigns::soak_with_engine(&cfg, seed, args.smoke, args.threads, args.engine);
    let Some(s) = &out.summary else {
        // The soak cell itself died: the panic is recorded as typed data
        // in the JSON record instead of aborting the campaign binary.
        for p in &out.panics {
            eprintln!("soak: {p}");
        }
        write_json("soak", &out.json);
        std::process::exit(1);
    };

    let mut table = Table::new(
        "Soak campaign: supervised lifetime under crash/stall/corruption faults",
        &["Metric", "Value"],
    );
    table.row(&["windows".into(), s.windows.to_string()]);
    table.row(&["simulated".into(), format!("{:.1} s", s.simulated_ms / 1e3)]);
    table.row(&["stage-1 trips".into(), s.threshold_crossings.to_string()]);
    table.row(&["stage-2 windows".into(), s.stage2_windows.to_string()]);
    table.row(&["detections".into(), s.detections.to_string()]);
    table.row(&[
        "selective refreshes".into(),
        s.selective_refreshes.to_string(),
    ]);
    table.row(&["degraded windows".into(), s.degraded_windows.to_string()]);
    table.row(&[
        "crashes / restarts".into(),
        format!("{} / {}", s.crashes, s.restarts),
    ]);
    table.row(&["cold starts".into(), s.cold_starts.to_string()]);
    table.row(&[
        "checkpoints (written / corrupted / rejected)".into(),
        format!(
            "{} / {} / {}",
            s.checkpoints_written, s.checkpoints_corrupted, s.checkpoint_rejections
        ),
    ]);
    table.row(&[
        "hot reloads (applied / deferred)".into(),
        format!("{} / {}", s.reloads, s.reloads_deferred),
    ]);
    table.row(&["stalled services".into(), s.stalled_services.to_string()]);
    table.row(&[
        "worst recovery gap".into(),
        format!(
            "{} cycles (budget {})",
            s.worst_recovery_gap, s.downtime_budget
        ),
    ]);
    table.row(&[
        "total downtime".into(),
        format!("{} cycles", s.total_downtime),
    ]);
    table.row(&["FLIPS".into(), s.flips.to_string()]);
    table.print();

    println!(
        "{}",
        if s.holds() {
            "ZERO FLIPS across the campaign: every crash recovered inside the\n\
             envelope's downtime budget, corrupted checkpoints fell back to\n\
             cold starts, and hot reloads never lost ledger evidence."
        } else {
            "WARNING: the lifecycle gate failed (flips, an over-budget recovery\n\
             gap, or an exhausted restart budget)."
        }
    );

    write_json("soak", &out.json);
    if !out.holds() {
        std::process::exit(1);
    }
}
