//! **Ablation** — where ANVIL's ~1% goes.
//!
//! Decomposes the measured slowdown of each benchmark into the detector's
//! cost components (PMIs, PEBS samples, stage-2 arming, analysis,
//! selective-refresh reads), computed from the detector's own activity
//! counters times the configured cycle costs, and checks the decomposition
//! against the end-to-end measurement. Explains the paper's Section 4.3
//! observation that "sampling of addresses in the second stage of the
//! detection phase contributes to almost all of the performance overhead."

use anvil_bench::{write_json, Scale, Table};
use anvil_core::{AnvilConfig, Platform, PlatformConfig};
use anvil_workloads::SpecBenchmark;
use serde_json::json;

fn main() {
    let scale = Scale::from_args();
    let ms = scale.ms(400.0).max(150.0);

    let mut table = Table::new(
        "Ablation: ANVIL overhead decomposition (cycles per second of execution)",
        &[
            "Benchmark",
            "samples",
            "PMIs+arming",
            "analysis",
            "refreshes",
            "total %",
        ],
    );
    let mut records = Vec::new();

    for bench in [
        SpecBenchmark::Mcf,
        SpecBenchmark::Libquantum,
        SpecBenchmark::Bzip2,
        SpecBenchmark::Gobmk,
        SpecBenchmark::H264ref,
    ] {
        let anvil = AnvilConfig::baseline();
        let mut p = Platform::new(PlatformConfig::with_anvil(anvil));
        let pid = p.add_workload(bench.build(31)).unwrap();
        p.run_ms(ms).unwrap();
        let stats = *p.detector_stats().expect("anvil loaded");
        let costs = anvil.costs;
        let samples_cy = p.pmu().samples_taken() * costs.sample;
        let pmi_cy = (stats.stage1_windows + stats.stage2_windows) * costs.pmi
            + stats.threshold_crossings * costs.stage2_arm;
        let analysis_cy = stats.stage2_windows * costs.analysis;
        let refresh_cy = stats.selective_refreshes * costs.refresh_read;
        let total_cy = samples_cy + pmi_cy + analysis_cy + refresh_cy;
        let elapsed = p.core_stats(pid).expect("added").cycles;
        let pct = 100.0 * total_cy as f64 / elapsed as f64;
        let per_s = |cy: u64| format!("{:.0}K", cy as f64 / (elapsed as f64 / 2.6e9) / 1e3);
        table.row(&[
            bench.name().into(),
            per_s(samples_cy),
            per_s(pmi_cy),
            per_s(analysis_cy),
            per_s(refresh_cy),
            format!("{pct:.2}%"),
        ]);
        records.push(json!({
            "benchmark": bench.name(),
            "samples_cycles": samples_cy,
            "pmi_arm_cycles": pmi_cy,
            "analysis_cycles": analysis_cy,
            "refresh_cycles": refresh_cy,
            "total_pct": pct,
        }));
        eprintln!("  [{}] {pct:.2}%", bench.name());
    }
    table.print();
    println!(
        "Sampling dominates for memory-bound benchmarks (the paper's Section 4.3\n\
         finding); compute-bound ones pay only the 6 ms stage-1 heartbeat."
    );
    write_json(
        "overhead_breakdown",
        &json!({ "experiment": "overhead_breakdown", "rows": records }),
    );
}
