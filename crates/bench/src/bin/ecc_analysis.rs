//! **Section 1.2** — Would ECC scrubbing stop rowhammer?
//!
//! "An emerging defense ... is that increasing ECC scrub rates could be a
//! rowhammer protection mechanism. But, prior work shows multiple
//! bit-flips per word when executing rowhammer attacks, making this
//! approach of questionable value." This experiment hammers many victim
//! rows past their thresholds and classifies the flips per 64-bit word:
//! SECDED ECC corrects single-bit words, *detects but cannot correct*
//! double-bit words, and silently miscorrects (or misses) beyond that.

use anvil_attacks::{hammer_until_flip, StandaloneHarness};
use anvil_bench::{write_json, AttackKind, Scale, Table};
use anvil_mem::{AllocationPolicy, MemoryConfig};
use serde_json::json;
use std::collections::HashMap;

fn main() {
    let scale = Scale::from_args();
    let victims = scale.ops(40).max(12) as usize;

    // Hammer many different victim rows well past the minimum so that the
    // harder (secondary) weak cells flip too, and histogram flips/word.
    // u64 tallies: a scaled-up campaign hammers enough rows that u32
    // word counts can wrap.
    let mut flips_per_word: HashMap<u64, u64> = HashMap::new();
    let mut rows_flipped = 0u64;
    for pair in 0..victims {
        let mut harness =
            StandaloneHarness::new(MemoryConfig::paper_platform(), AllocationPolicy::Contiguous);
        let mut attack = AttackKind::DoubleSided.build(pair);
        if harness.prepare(attack.as_mut()).is_err() {
            continue;
        }
        // Keep hammering past the first flip: 440K accesses ~ 2x the
        // single-sided minimum, enough for the clustered secondary cells.
        let mut r = hammer_until_flip(attack.as_mut(), &mut harness, 440_000);
        if r.flipped {
            rows_flipped = rows_flipped.saturating_add(1);
            // Continue after the first flip to trigger the rest.
            let r2 = hammer_until_flip(attack.as_mut(), &mut harness, 440_000);
            r.flips.extend(r2.flips);
        }
        for f in &r.flips {
            let w = flips_per_word.entry(f.paddr & !7).or_insert(0);
            *w = w.saturating_add(1);
        }
    }

    let mut histogram: HashMap<u64, u64> = HashMap::new();
    for &n in flips_per_word.values() {
        let h = histogram.entry(n).or_insert(0);
        *h = h.saturating_add(1);
    }
    let mut table = Table::new(
        "Section 1.2: Flips per 64-bit word under sustained hammering",
        &["Flips in word", "Words", "SECDED ECC outcome"],
    );
    let mut keys: Vec<u64> = histogram.keys().copied().collect();
    keys.sort();
    for k in &keys {
        let outcome = match k {
            1 => "corrected",
            2 => "detected, NOT corrected (machine check)",
            _ => "potentially silent corruption",
        };
        table.row(&[k.to_string(), histogram[k].to_string(), outcome.to_string()]);
    }
    table.print();

    let multi: u64 = keys.iter().filter(|&&k| k >= 2).map(|k| histogram[k]).sum();
    let total: u64 = histogram.values().sum();
    println!(
        "{rows_flipped} victim rows flipped; {total} corrupted words, {multi} with multiple flips\n\
         ({:.0}%). The paper's conclusion: ECC turns rowhammer into denial-of-service at\n\
         best (machine-check storms) and silent corruption at worst — not a defense.",
        100.0 * multi as f64 / total.max(1) as f64
    );
    write_json(
        "ecc_analysis",
        &json!({
            "experiment": "ecc_analysis",
            "rows_flipped": rows_flipped,
            "words_corrupted": total,
            "multi_bit_words": multi,
            "histogram": keys.iter().map(|k| json!({"flips": k, "words": histogram[k]})).collect::<Vec<_>>(),
        }),
    );
}
