//! **Extension** — row-buffer policy and the hammering attack surface.
//!
//! The paper's bank-locality insight (Section 3.1) rests on the open-page
//! row buffer: "a rowhammer attack involves repeatedly accessing at least
//! two rows within the same bank — otherwise the row buffer would prevent
//! the rowhammering." A *closed-page* controller (common in servers)
//! precharges after every access, so that premise — and the minimum attack
//! footprint — changes: a single-address loop becomes a hammer. This
//! experiment measures both sides and checks ANVIL still detects the
//! degenerate attack (its row-locality signal is even stronger).

use anvil_attacks::{hammer_until_flip, Attack, AttackEnv, AttackOp, StandaloneHarness};
use anvil_bench::{write_json, Table};
use anvil_core::{AnvilConfig, Platform, PlatformConfig};
use anvil_dram::RowBufferPolicy;
use anvil_mem::{AccessKind, AllocationPolicy, MemoryConfig};
use serde_json::json;

/// The degenerate single-address hammer: one load + CLFLUSH, no conflict
/// address at all. Useless on open-page DRAM, lethal on closed-page.
#[derive(Debug)]
struct SingleAddressHammer {
    va: Option<u64>,
    pa: Option<u64>,
    flush_next: bool,
}

impl Attack for SingleAddressHammer {
    fn name(&self) -> &str {
        "single-address-hammer"
    }
    fn prepare(&mut self, env: &mut AttackEnv<'_>) -> Result<(), anvil_attacks::AttackError> {
        let va = env.process.mmap(1 << 20, env.frames)? + 4096;
        self.va = Some(va);
        self.pa = env.process.translate(va);
        Ok(())
    }
    fn next_op(&mut self) -> AttackOp {
        let va = self.va.expect("prepared");
        self.flush_next = !self.flush_next;
        if self.flush_next {
            AttackOp::Access {
                vaddr: va,
                kind: AccessKind::Read,
            }
        } else {
            AttackOp::Clflush { vaddr: va }
        }
    }
    fn aggressor_paddrs(&self) -> Vec<u64> {
        self.pa.into_iter().collect()
    }
    fn victim_paddrs(&self) -> Vec<u64> {
        Vec::new()
    }
}

fn main() {
    let mut table = Table::new(
        "Extension: row-buffer policy vs. the minimum hammer footprint",
        &["Row-buffer policy", "Attack", "Bits flip?", "Notes"],
    );
    let mut records = Vec::new();

    for policy in [RowBufferPolicy::OpenPage, RowBufferPolicy::ClosedPage] {
        for single in [false, true] {
            let mut cfg = MemoryConfig::paper_platform();
            cfg.dram = cfg.dram.with_row_buffer(policy);
            let mut h = StandaloneHarness::new(cfg, AllocationPolicy::Contiguous);
            let (mut attack, label): (Box<dyn Attack>, &str) = if single {
                (
                    Box::new(SingleAddressHammer {
                        va: None,
                        pa: None,
                        flush_next: false,
                    }),
                    "single-address",
                )
            } else {
                // Scan for a flippable victim as usual.
                let mut best: Option<Box<dyn Attack>> = None;
                for i in 0..16 {
                    let mut probe = StandaloneHarness::new(cfg, AllocationPolicy::Contiguous);
                    let mut a =
                        Box::new(anvil_attacks::DoubleSidedClflush::new().with_pair_index(i));
                    if probe.prepare(a.as_mut()).is_err() {
                        continue;
                    }
                    let d = probe.sys.dram();
                    if a.victim_paddrs()
                        .iter()
                        .any(|&v| d.is_vulnerable_row(d.mapping().location_of(v).row_id()))
                    {
                        best = Some(a);
                        break;
                    }
                }
                (best.expect("vulnerable pair"), "double-sided")
            };
            if h.prepare(attack.as_mut()).is_err() {
                continue;
            }
            let r = hammer_until_flip(attack.as_mut(), &mut h, 900_000);
            let policy_label = format!("{policy:?}");
            table.row(&[
                policy_label.clone(),
                label.into(),
                if r.flipped { "YES" } else { "no" }.into(),
                if r.flipped {
                    format!("{}K aggressor accesses", r.aggressor_accesses / 1000)
                } else {
                    "row buffer / refresh wins".into()
                },
            ]);
            records.push(json!({
                "policy": policy_label, "attack": label,
                "flipped": r.flipped, "accesses": r.aggressor_accesses,
            }));
        }
    }
    table.print();

    // ANVIL vs the closed-page single-address hammer — first with the
    // paper's configuration, then with the bank-locality filter disabled.
    let run_anvil = |anvil: AnvilConfig| {
        let mut pc = PlatformConfig::with_anvil(anvil);
        pc.memory.dram = pc.memory.dram.with_row_buffer(RowBufferPolicy::ClosedPage);
        let mut p = Platform::new(pc);
        p.add_attack(Box::new(SingleAddressHammer {
            va: None,
            pa: None,
            flush_next: false,
        }))
        .expect("prepares");
        p.run_ms(100.0).unwrap();
        (p.first_detection_ms(), p.total_flips())
    };
    let (det_paper, flips_paper) = run_anvil(AnvilConfig::baseline());
    let mut policy_aware = AnvilConfig::baseline();
    policy_aware.bank_support_min = 0;
    let (det_aware, flips_aware) = run_anvil(policy_aware);
    println!(
        "ANVIL (paper config)  vs closed-page single-address hammer: detected {}, {} flips.",
        det_paper.map_or("NEVER".into(), |t| format!("at {t:.1} ms")),
        flips_paper
    );
    println!(
        "ANVIL (bank check off) vs the same attack:                  detected {}, {} flips.",
        det_aware.map_or("NEVER".into(), |t| format!("at {t:.1} ms")),
        flips_aware
    );
    println!(
        "FINDING: the paper's bank-locality filter encodes an *open-page* premise\n\
         (\"otherwise the row buffer would prevent the rowhammering\", Section 3.1).\n\
         On a closed-page controller a one-row attack is possible and slips past the\n\
         filter; a policy-aware deployment must relax bank_support_min there — at the\n\
         false-positive cost the bank-check ablation quantifies."
    );
    write_json(
        "row_buffer_policy",
        &json!({ "experiment": "row_buffer_policy", "rows": records }),
    );
}
