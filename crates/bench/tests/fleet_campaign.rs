//! Acceptance gates for the fleet Monte Carlo campaign: thread-count
//! determinism of the JSON record, the zero-undeclared-flip and
//! downtime-budget gates, and the presence of the seeded per-DIMM
//! weak-cell sampling in the record.

use anvil_bench::campaigns;
use anvil_fleet::FleetConfig;
use anvil_runtime::install_quiet_panic_hook;

/// Serializes a campaign record exactly as `write_json` would.
fn bytes(v: &serde_json::Value) -> String {
    serde_json::to_string_pretty(v).expect("campaign records serialize")
}

/// A small fleet with the correlated rates cranked so outages, blind
/// episodes, and ladder traffic all occur within a short run.
fn small_fleet() -> FleetConfig {
    let mut cfg = FleetConfig::standard(4, 700, 0xF1EE7);
    cfg.correlated.machine_outage_rate = 4e-3;
    cfg.correlated.pmu_loss_rate = 6e-3;
    cfg
}

#[test]
fn fleet_campaign_is_thread_count_independent() {
    install_quiet_panic_hook();
    let cfg = small_fleet();
    let runs: Vec<String> = [1usize, 2, 4]
        .iter()
        .map(|&t| bytes(&campaigns::fleet(&cfg, true, t).json))
        .collect();
    assert_eq!(runs[0], runs[1], "1 vs 2 threads diverged");
    assert_eq!(runs[0], runs[2], "1 vs 4 threads diverged");
}

#[test]
fn fleet_gates_hold_and_fault_machinery_engages() {
    install_quiet_panic_hook();
    let cfg = small_fleet();
    let out = campaigns::fleet(&cfg, true, 2);
    let r = &out.risk;

    // The fleet gate: no undeclared flips, no budget violations, no
    // dead cells.
    assert!(r.holds(), "fleet gate failed: {r:?}");
    assert_eq!(r.undeclared_flips, 0);
    assert_eq!(r.budget_violations, 0);
    assert!(out.panics.is_empty());

    // The correlated fault machinery actually fired and drove the
    // ladder — a quiet run would gate vacuously.
    assert!(
        r.outages + r.pmu_episodes > 0,
        "no correlated faults: {r:?}"
    );
    assert!(r.demotions > 0, "faults never demoted a domain: {r:?}");
    assert!(r.degraded_domain_windows > 0);

    // The Monte Carlo summary is populated.
    assert_eq!(r.machines, cfg.machines);
    assert_eq!(r.domains, cfg.machines * u64::from(cfg.topology.domains()));
    assert!(r.machine_years > 0.0);
    assert!(r.flips_per_million_machine_years >= 0.0);
}

#[test]
fn fleet_record_carries_per_dimm_populations_and_verdict() {
    install_quiet_panic_hook();
    let cfg = small_fleet();
    let out = campaigns::fleet(&cfg, true, 2);
    let v = &out.json;

    assert_eq!(v["experiment"], serde_json::json!("fleet"));
    assert_eq!(v["holds"], serde_json::json!(out.risk.holds()));
    let machines = v["machines"].as_array().expect("machine summaries");
    assert_eq!(machines.len() as u64, cfg.machines);
    for m in machines {
        let domains = m["domains"].as_array().expect("domain summaries");
        assert_eq!(domains.len() as u64, u64::from(cfg.topology.domains()));
        for d in domains {
            // Each DIMM's sampled weak-cell population is in the record,
            // inside the configured distribution.
            let thr = d["min_flip_threshold"].as_u64().expect("threshold");
            let weak = d["weak_cells"].as_u64().expect("weak cells");
            assert!(weak >= 1 && weak <= cfg.weak_cells.max_weak_cells);
            if d["sub_envelope"] == serde_json::json!(true) {
                assert!(thr <= cfg.weak_cells.sub_envelope_threshold);
            } else {
                assert!(thr >= cfg.weak_cells.floor);
                assert!(thr <= cfg.weak_cells.floor + cfg.weak_cells.span);
            }
        }
    }
}
