//! Observational equivalence of the event-driven soak engine.
//!
//! The epoch-skipping core ([`Engine::Event`]) is only admissible
//! because it is *observationally equivalent* to the per-op reference
//! core: same summary, same serialized bytes, for every config × fault
//! × schedule box. The unit tests in `anvil-runtime` pin two named
//! campaigns; this suite drives the claim across randomly drawn boxes —
//! detector knobs sampled from the fuzzer's standard domain
//! ([`FuzzDomain::standard`]), lifecycle fault intensities spanning
//! quiet to crash-heavy, reload cadences, and both traffic mixes
//! (adversary-paced and benign-dominated).

use anvil_fuzz::FuzzDomain;
use anvil_runtime::{install_quiet_panic_hook, soak, Engine, SoakConfig};
use proptest::prelude::*;

/// One randomly drawn soak box. Fault rates arrive as per-mille
/// integers (the vendored proptest has no float strategies) and the
/// detector knobs are clamped into the fuzzer's standard domain so
/// every drawn config is one the detector accepts.
#[derive(Debug)]
struct Box_ {
    cfg: SoakConfig,
}

#[allow(clippy::too_many_arguments)]
fn build_box(
    windows: u64,
    seed: u64,
    adversary: bool,
    llc: u64,
    bank_support: u32,
    ledger_min: u32,
    interval: u64,
    crash_pm: u64,
    stall_pm: u64,
    max_stall: u64,
    corrupt_pm: u64,
    reload_every: u64,
) -> Box_ {
    let d = FuzzDomain::standard();
    let mut cfg = if adversary {
        SoakConfig::standard(windows, seed)
    } else {
        SoakConfig::benign(windows, seed)
    };
    cfg.anvil.llc_miss_threshold = llc.clamp(d.llc_range.0, d.llc_range.1);
    cfg.anvil.bank_support_min = bank_support.clamp(d.bank_support_range.0, d.bank_support_range.1);
    cfg.anvil.hardening.ledger_min_windows =
        ledger_min.clamp(d.ledger_min_windows_range.0, d.ledger_min_windows_range.1);
    cfg.anvil.sampling.interval =
        interval.clamp(d.sampling_interval_range.0, d.sampling_interval_range.1);
    #[allow(clippy::cast_precision_loss)]
    {
        cfg.lifecycle.crash_rate = crash_pm as f64 * 1e-3;
        cfg.lifecycle.stall_rate = stall_pm as f64 * 1e-3;
        cfg.lifecycle.corrupt_rate = corrupt_pm as f64 * 1e-3;
    }
    cfg.lifecycle.max_stall = max_stall;
    cfg.reload_every = reload_every;
    Box_ { cfg }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any drawn box, the event engine's summary — and its
    /// serialized bytes, which is what the campaign records commit —
    /// match the per-op reference exactly.
    #[test]
    fn event_driven_matches_per_op(
        windows in 200u64..1_200,
        seed in any::<u64>(),
        adversary in any::<bool>(),
        llc in 4_000u64..40_000,
        bank_support in 0u32..6,
        ledger_min in 0u32..6,
        interval in 100_000u64..3_000_000,
        crash_pm in 0u64..20,
        stall_pm in 0u64..50,
        max_stall in 1u64..50_000,
        corrupt_pm in 0u64..300,
        reload_every in 0u64..2_000,
    ) {
        install_quiet_panic_hook();
        let drawn = build_box(
            windows, seed, adversary, llc, bank_support, ledger_min,
            interval, crash_pm, stall_pm, max_stall, corrupt_pm, reload_every,
        );
        let reference = soak::run_with_engine(&drawn.cfg, Engine::PerOp);
        let event = soak::run_with_engine(&drawn.cfg, Engine::Event);
        prop_assert_eq!(&reference, &event);
        let reference_bytes = serde_json::to_string(&reference).expect("summary serializes");
        let event_bytes = serde_json::to_string(&event).expect("summary serializes");
        prop_assert_eq!(reference_bytes, event_bytes);
    }
}
