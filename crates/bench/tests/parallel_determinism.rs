//! Thread-count determinism of the parallel campaign executor: the same
//! campaign at `--threads 1`, `2`, and N must produce identical JSON
//! bytes, because `run_cells` only changes *when* a cell runs, never
//! *what* it computes or where its result lands.

use anvil_bench::{campaigns, run_cells, CampaignArgs};
use anvil_runtime::{install_quiet_panic_hook, SoakConfig};

/// Serializes a campaign record exactly as `write_json` would.
fn bytes(v: &serde_json::Value) -> String {
    serde_json::to_string_pretty(v).expect("campaign records serialize")
}

#[test]
fn run_cells_preserves_cell_order() {
    for threads in [1, 2, 3, 8] {
        let cells: Vec<_> = (0..17).map(|i| move || i * i).collect();
        let out = run_cells(threads, cells);
        assert_eq!(
            out,
            (0..17).map(|i| i * i).collect::<Vec<_>>(),
            "results out of order at {threads} threads"
        );
    }
}

#[test]
fn resilience_campaign_is_thread_count_independent() {
    // Smoke matrix at a short run: 7 fault cells + 1 cross cell, long
    // enough for detections and degraded-mode engagement to occur.
    let runs: Vec<String> = [1usize, 2, 4]
        .iter()
        .map(|&t| bytes(&campaigns::resilience(true, 36.0, 0xA_11CE, t).json))
        .collect();
    assert_eq!(runs[0], runs[1], "1 vs 2 threads diverged");
    assert_eq!(runs[0], runs[2], "1 vs 4 threads diverged");
}

#[test]
fn verify_campaign_is_thread_count_independent() {
    // Smoke matrix (future threshold only): pure symbolic bounds plus
    // witness hunts, whose replays are seeded per cell up front.
    let runs: Vec<String> = [1usize, 2, 4]
        .iter()
        .map(|&t| bytes(&campaigns::verify(true, 70.0, 0xE5A51, t).json))
        .collect();
    assert_eq!(runs[0], runs[1], "1 vs 2 threads diverged");
    assert_eq!(runs[0], runs[2], "1 vs 4 threads diverged");
}

#[test]
fn soak_campaign_is_thread_count_independent() {
    install_quiet_panic_hook();
    let mut cfg = SoakConfig::standard(4_000, 0x50AC);
    cfg.lifecycle.crash_rate = 5e-3;
    cfg.reload_every = 2_000;
    let runs: Vec<String> = [1usize, 2]
        .iter()
        .map(|&t| bytes(&campaigns::soak(&cfg, 0x50AC, true, t).json))
        .collect();
    assert_eq!(runs[0], runs[1], "soak diverged across thread counts");
}

#[test]
fn campaign_args_parse_flags_and_values() {
    let to_args = |s: &str| s.split_whitespace().map(str::to_string).collect::<Vec<_>>();
    let args = CampaignArgs::parse(to_args("--quick --windows 500 --seed 7 --threads 3"));
    assert!(args.quick);
    assert!(!args.smoke);
    assert_eq!(args.windows, Some(500));
    assert_eq!(args.seed_or(99), 7);
    assert_eq!(args.threads, 3);

    let args = CampaignArgs::parse(to_args("--smoke"));
    assert!(args.smoke);
    assert_eq!(args.windows, None);
    assert_eq!(args.seed_or(99), 99);
    assert!(args.threads >= 1);
}

#[test]
fn campaign_args_reject_malformed_values() {
    // Malformed or zero values warn on stderr and fall back to defaults
    // instead of aborting or being silently misread.
    let to_args = |s: &str| s.split_whitespace().map(str::to_string).collect::<Vec<_>>();
    for bad in ["--windows 0", "--windows nope", "--windows -3", "--windows"] {
        let args = CampaignArgs::parse(to_args(bad));
        assert_eq!(args.windows, None, "{bad:?} must fall back to default");
    }
    let args = CampaignArgs::parse(to_args("--seed twelve"));
    assert_eq!(args.seed_or(42), 42);
    let args = CampaignArgs::parse(to_args("--threads 0"));
    assert!(args.threads >= 1, "zero threads must fall back");
}

#[test]
fn campaign_args_bound_fleet_machine_and_domain_counts() {
    let to_args = |s: &str| s.split_whitespace().map(str::to_string).collect::<Vec<_>>();

    let args = CampaignArgs::parse(to_args("--machines 48 --domains 8"));
    assert_eq!(args.machines, Some(48));
    assert_eq!(args.domains, Some(8));
    assert_eq!(
        CampaignArgs::parse(to_args("--machines 1")).machines,
        Some(1)
    );
    assert_eq!(
        CampaignArgs::parse(to_args("--machines 4096")).machines,
        Some(4096)
    );
    assert_eq!(
        CampaignArgs::parse(to_args("--domains 64")).domains,
        Some(64)
    );

    // Out-of-range, zero, negative, malformed, and missing values all
    // warn (naming the bad value, on stderr) and fall back to None.
    for bad in [
        "--machines 0",
        "--machines 4097",
        "--machines -3",
        "--machines lots",
        "--machines",
    ] {
        let args = CampaignArgs::parse(to_args(bad));
        assert_eq!(args.machines, None, "{bad:?} must fall back to default");
    }
    for bad in ["--domains 0", "--domains 65", "--domains four"] {
        let args = CampaignArgs::parse(to_args(bad));
        assert_eq!(args.domains, None, "{bad:?} must fall back to default");
    }

    // Absent flags stay None so campaigns apply their own defaults.
    let args = CampaignArgs::parse(to_args("--smoke"));
    assert_eq!(args.machines, None);
    assert_eq!(args.domains, None);
}

#[test]
fn fuzz_campaign_is_thread_count_independent() {
    // Candidate batches are generated before dispatch and results fold
    // in submission order, so the whole coverage-guided loop — RNG
    // streams, pool contents, shrink traces — must be identical at any
    // thread count.
    let runs: Vec<String> = [1usize, 2, 4]
        .iter()
        .map(|&t| bytes(&campaigns::fuzz(true, 0xF0229, t).json))
        .collect();
    assert_eq!(runs[0], runs[1], "1 vs 2 threads diverged");
    assert_eq!(runs[0], runs[2], "1 vs 4 threads diverged");
}
