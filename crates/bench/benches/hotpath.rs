//! Criterion benchmarks of the layers optimized by the hot-path pass:
//! cache access through the reusable scratch buffers, DRAM activates
//! driving the dense disturbance arena, a full detector window, and an
//! end-to-end supervised soak slice (windows/sec).
//!
//! `cargo bench --bench hotpath` prints ns/iter per layer; the committed
//! trajectory record lives in `results/BENCH_hotpath.json` (regenerate
//! with `cargo run --release -p anvil-bench --bin perfbench`).

use anvil_cache::{CacheHierarchy, HierarchyConfig};
use anvil_core::{AnvilConfig, Platform, PlatformConfig};
use anvil_dram::{DramConfig, DramModule};
use anvil_runtime::{install_quiet_panic_hook, soak, SoakConfig};
use anvil_workloads::SpecBenchmark;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_cache_access(c: &mut Criterion) {
    // L1-resident loop: the last-level fast paths and the reusable
    // writeback/prefetch scratch buffers (no per-access allocation).
    let mut h = CacheHierarchy::new(HierarchyConfig::sandy_bridge_i5_2540m());
    let (mut wb, mut pf) = (Vec::new(), Vec::new());
    let mut addr = 0u64;
    c.bench_function("hotpath_cache_access_hot_loop", |b| {
        b.iter(|| {
            addr = (addr + 64) & 0x3fff;
            wb.clear();
            pf.clear();
            black_box(h.access_into(black_box(addr), false, &mut wb, &mut pf))
        });
    });

    // Streaming misses: every access walks all three levels, evicts, and
    // appends writebacks into the caller-owned buffers.
    let mut h = CacheHierarchy::new(HierarchyConfig::sandy_bridge_i5_2540m());
    let (mut wb, mut pf) = (Vec::new(), Vec::new());
    let mut addr = 0u64;
    c.bench_function("hotpath_cache_access_streaming", |b| {
        b.iter(|| {
            addr = (addr + 64) & ((1 << 30) - 1);
            wb.clear();
            pf.clear();
            black_box(h.access_into(black_box(addr), false, &mut wb, &mut pf))
        });
    });
}

fn bench_dram_activate_disturb(c: &mut Criterion) {
    // Double-sided hammer: alternating activations in one bank — the
    // row-buffer last-row fast path misses every time and each activate
    // charges disturbance into the dense per-bank arena.
    let mut dram = DramModule::new(DramConfig::paper_ddr3());
    let mut now = 0u64;
    let mut i = 0u64;
    c.bench_function("hotpath_dram_activate_disturb_hammer", |b| {
        b.iter(|| {
            i += 1;
            now += 200;
            let addr = if i.is_multiple_of(2) {
                0x22000
            } else {
                0x66000
            };
            black_box(dram.access(black_box(addr), now))
        });
    });

    // Wide sweep across many rows: exercises the arena's lazy row
    // initialization and slot index instead of a hot pair.
    let mut dram = DramModule::new(DramConfig::paper_ddr3());
    let mut now = 0u64;
    let mut addr = 0u64;
    c.bench_function("hotpath_dram_activate_disturb_sweep", |b| {
        b.iter(|| {
            addr = (addr + 8192) & ((4 << 30) - 1);
            now += 200;
            black_box(dram.access(black_box(addr), now))
        });
    });
}

fn bench_detector_window(c: &mut Criterion) {
    // One full 6 ms stage-1 window of an mcf workload under the baseline
    // detector: batched core stepping + window bookkeeping + (rarely)
    // stage-2 sampling.
    let mut p = Platform::new(PlatformConfig::with_anvil(AnvilConfig::baseline()));
    p.add_workload(SpecBenchmark::Mcf.build(1))
        .expect("workload loads on fresh platform");
    c.bench_function("hotpath_detector_window_6ms", |b| {
        b.iter(|| p.run_ms(black_box(6.0)).expect("window completes"));
    });
}

fn bench_soak_windows(c: &mut Criterion) {
    // End-to-end windows/sec: a 2000-window supervised soak slice with
    // the standard crash/stall/corruption schedule. ns/iter / 2000 is
    // the per-window cost the perfbench floor gates on.
    install_quiet_panic_hook();
    c.bench_function("hotpath_soak_2000_windows", |b| {
        b.iter(|| {
            let cfg = SoakConfig::standard(black_box(2000), 0x50AC);
            black_box(soak::run(&cfg))
        });
    });
}

criterion_group!(
    benches,
    bench_cache_access,
    bench_dram_activate_disturb,
    bench_detector_window,
    bench_soak_windows
);
criterion_main!(benches);
