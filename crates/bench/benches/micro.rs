//! Criterion microbenchmarks of the simulator's hot paths.
//!
//! These do not reproduce paper results — they keep the *simulator* fast
//! enough that the experiment binaries finish in minutes. Rough targets on
//! commodity hardware: DRAM access < 200 ns, hierarchy access < 150 ns,
//! platform step < 1 us.

use anvil_attacks::{Attack, DoubleSidedClflush, StandaloneHarness};
use anvil_cache::{CacheHierarchy, HierarchyConfig};
use anvil_core::{analyze, AnvilConfig, Platform, PlatformConfig, RowSample, FULL_WEIGHT};
use anvil_dram::{BankId, DramConfig, DramModule, RowId};
use anvil_mem::{AccessKind, AllocationPolicy, MemoryConfig, MemorySystem};
use anvil_workloads::SpecBenchmark;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_dram_access(c: &mut Criterion) {
    let mut dram = DramModule::new(DramConfig::paper_ddr3());
    let mut now = 0u64;
    let mut addr = 0u64;
    c.bench_function("dram_access_streaming", |b| {
        b.iter(|| {
            addr = (addr + 8192) & ((4 << 30) - 1);
            now += 200;
            black_box(dram.access(black_box(addr), now))
        })
    });

    let mut dram = DramModule::new(DramConfig::paper_ddr3());
    let mut now = 0u64;
    let mut i = 0u64;
    c.bench_function("dram_access_hammer", |b| {
        b.iter(|| {
            i += 1;
            now += 200;
            let addr = if i % 2 == 0 { 0x22000 } else { 0x66000 };
            black_box(dram.access(black_box(addr), now))
        })
    });
}

fn bench_hierarchy_access(c: &mut Criterion) {
    let mut h = CacheHierarchy::new(HierarchyConfig::sandy_bridge_i5_2540m());
    let mut addr = 0u64;
    c.bench_function("hierarchy_access_hot_loop", |b| {
        b.iter(|| {
            addr = (addr + 64) & 0x3fff; // 16 KB loop: L1-resident
            black_box(h.access(black_box(addr), false))
        })
    });

    let mut h = CacheHierarchy::new(HierarchyConfig::sandy_bridge_i5_2540m());
    let mut addr = 0u64;
    c.bench_function("hierarchy_access_streaming", |b| {
        b.iter(|| {
            addr = (addr + 64) & ((1 << 30) - 1);
            black_box(h.access(black_box(addr), false))
        })
    });
}

fn bench_memory_system(c: &mut Criterion) {
    let mut sys = MemorySystem::new(MemoryConfig::paper_platform());
    let mut addr = 0u64;
    c.bench_function("memory_system_access", |b| {
        b.iter(|| {
            addr = (addr + 64) & ((1 << 28) - 1);
            black_box(sys.access(black_box(addr), AccessKind::Read))
        })
    });
}

fn bench_attack_iteration(c: &mut Criterion) {
    let mut harness =
        StandaloneHarness::new(MemoryConfig::paper_platform(), AllocationPolicy::Contiguous);
    let mut attack = DoubleSidedClflush::new();
    harness.prepare(&mut attack).unwrap();
    c.bench_function("attack_op_execute", |b| {
        b.iter(|| {
            let op = attack.next_op();
            black_box(anvil_attacks::exec_op(
                op,
                &harness.process,
                &mut harness.sys,
            ))
        })
    });
}

fn bench_platform_step(c: &mut Criterion) {
    let mut p = Platform::new(PlatformConfig::with_anvil(AnvilConfig::baseline()));
    let pid = p.add_workload(SpecBenchmark::Mcf.build(1)).unwrap();
    c.bench_function("platform_step_mcf_under_anvil", |b| {
        b.iter(|| p.run_core_ops(black_box(pid), 1).unwrap())
    });
}

fn bench_locality_analysis(c: &mut Criterion) {
    let config = AnvilConfig::baseline();
    let samples: Vec<RowSample> = (0..30)
        .map(|i| RowSample {
            row: RowId::new(BankId((i % 4) as u32), 100 + (i % 7) as u32),
            paddr: i * 8192,
            pid: 1,
            weight: FULL_WEIGHT,
        })
        .collect();
    c.bench_function("detector_locality_analysis", |b| {
        b.iter(|| {
            black_box(analyze(
                &config,
                black_box(&samples),
                80_000,
                15_600_000,
                166_400_000,
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_dram_access,
    bench_hierarchy_access,
    bench_memory_system,
    bench_attack_iteration,
    bench_platform_step,
    bench_locality_analysis
);
criterion_main!(benches);
