//! Counters exported by the DRAM module.

use serde::{Deserialize, Serialize};

/// Aggregate statistics of a [`DramModule`](crate::DramModule).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Total accesses served.
    pub accesses: u64,
    /// Accesses served from an open row buffer.
    pub row_hits: u64,
    /// Accesses that opened an idle bank.
    pub row_opens: u64,
    /// Accesses that closed one row and opened another.
    pub row_conflicts: u64,
    /// Total row activations (opens + conflicts).
    pub activations: u64,
    /// Cycles accesses spent stalled behind refresh commands.
    pub refresh_stall_cycles: u64,
    /// Neighbor refreshes issued by the hardware mitigation (PARA/TRR).
    pub mitigation_refreshes: u64,
    /// Bit flips produced by the disturbance model.
    pub bit_flips: u64,
    /// Whole-bank charge restorations forced by software (ANVIL's
    /// degraded-mode blanket refresh).
    pub forced_bank_refreshes: u64,
}

impl DramStats {
    /// Fraction of accesses that hit the row buffer.
    pub fn row_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero() {
        assert_eq!(DramStats::default().row_hit_rate(), 0.0);
        let s = DramStats {
            accesses: 10,
            row_hits: 4,
            ..Default::default()
        };
        assert!((s.row_hit_rate() - 0.4).abs() < 1e-12);
    }
}
