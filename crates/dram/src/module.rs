//! The top-level DRAM module: address decode, row buffers, refresh,
//! disturbance, and hardware mitigations behind one `access` call.

use crate::bank::{RowBufferOutcome, RowBufferPolicy, RowBuffers};
use crate::disturb::{BitFlip, DisturbanceConfig, DisturbanceTracker};
use crate::geometry::{BankId, DramGeometry, DramLocation, RowId};
use crate::mapping::AddressMapping;
use crate::mitigation::{MitigationKind, MitigationState};
use crate::refresh::RefreshSchedule;
use crate::stats::DramStats;
use crate::time::Cycle;
use anvil_faults::RefreshPostpone;
use serde::{Deserialize, Serialize};

/// Full configuration of a [`DramModule`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Physical organization.
    pub geometry: DramGeometry,
    /// Timing parameters (in CPU cycles).
    pub timing: crate::timing::DramTiming,
    /// Disturbance (bit-flip) physics.
    pub disturbance: DisturbanceConfig,
    /// In-hardware mitigation, if any.
    pub mitigation: MitigationKind,
    /// Row-buffer management policy.
    pub row_buffer: RowBufferPolicy,
    /// Seed for the mitigation's randomness (PARA).
    pub seed: u64,
}

impl DramConfig {
    /// The paper's platform: 4 GB DDR3 at a 64 ms refresh period, no
    /// hardware mitigation.
    pub fn paper_ddr3() -> Self {
        DramConfig {
            geometry: DramGeometry::ddr3_4gb(),
            timing: crate::timing::DramTiming::default(),
            disturbance: DisturbanceConfig::paper_ddr3(),
            mitigation: MitigationKind::None,
            row_buffer: RowBufferPolicy::OpenPage,
            seed: 0xd1a4,
        }
    }

    /// A small, fast module for tests.
    pub fn tiny() -> Self {
        let mut c = Self::paper_ddr3();
        c.geometry = DramGeometry::tiny_16mb();
        c
    }

    /// Returns the config with the vendors' doubled refresh rate applied.
    #[must_use]
    pub fn with_doubled_refresh(mut self) -> Self {
        self.timing = self.timing.with_doubled_refresh();
        self
    }

    /// Returns the config with an arbitrary refresh period in ms.
    #[must_use]
    pub fn with_refresh_ms(mut self, clock: crate::time::CpuClock, ms: f64) -> Self {
        self.timing = crate::timing::DramTiming::ddr3_with_refresh_ms(clock, ms);
        self
    }

    /// Returns the config with the given hardware mitigation.
    #[must_use]
    pub fn with_mitigation(mut self, mitigation: MitigationKind) -> Self {
        self.mitigation = mitigation;
        self
    }

    /// Returns the config with the given row-buffer policy.
    #[must_use]
    pub fn with_row_buffer(mut self, policy: RowBufferPolicy) -> Self {
        self.row_buffer = policy;
        self
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::paper_ddr3()
    }
}

/// Result of one DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramAccess {
    /// Total latency of the access, including refresh stalls.
    pub latency: Cycle,
    /// What happened at the row buffer.
    pub outcome: RowBufferOutcome,
    /// Decoded location of the access.
    pub location: DramLocation,
}

/// A bit flip with its physical address resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramFlip {
    /// The raw flip event.
    pub flip: BitFlip,
    /// Physical address of the flipped byte.
    pub paddr: u64,
}

/// A simulated DRAM module.
///
/// # Examples
///
/// ```
/// use anvil_dram::{DramConfig, DramModule};
///
/// let mut dram = DramModule::new(DramConfig::tiny());
/// let access = dram.access(0x1000, 100);
/// assert!(access.latency > 0);
/// assert_eq!(dram.stats().accesses, 1);
/// ```
#[derive(Debug)]
pub struct DramModule {
    config: DramConfig,
    mapping: AddressMapping,
    buffers: RowBuffers,
    schedule: RefreshSchedule,
    disturb: DisturbanceTracker,
    mitigation: MitigationState,
    stats: DramStats,
    flips: Vec<DramFlip>,
    last_refresh_cmd: u64,
}

impl DramModule {
    /// Creates a module.
    ///
    /// # Panics
    ///
    /// Panics if any part of the configuration fails validation.
    pub fn new(config: DramConfig) -> Self {
        let mapping = AddressMapping::new(config.geometry);
        let schedule = RefreshSchedule::new(&config.timing, config.geometry.rows_per_bank);
        let disturb = DisturbanceTracker::new(
            config.disturbance,
            config.geometry.row_bytes,
            config.geometry.rows_per_bank,
        );
        DramModule {
            mapping,
            buffers: RowBuffers::with_policy(config.geometry.total_banks(), config.row_buffer),
            schedule,
            disturb,
            mitigation: MitigationState::new(
                config.mitigation,
                config.timing.refresh_period,
                config.seed,
            ),
            stats: DramStats::default(),
            flips: Vec::new(),
            last_refresh_cmd: 0,
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// The physical-address mapping of this module.
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    /// The auto-refresh schedule.
    pub fn schedule(&self) -> &RefreshSchedule {
        &self.schedule
    }

    /// Installs (or clears) refresh postponement (see
    /// [`RefreshSchedule::set_postpone`]). The maximum delay is clamped
    /// to half the retention period — far beyond anything a real
    /// controller does, but enough to keep the schedule arithmetic sound
    /// under aggressive fault-intensity sweeps.
    pub fn set_refresh_postpone(&mut self, postpone: Option<RefreshPostpone>) {
        let cap = self.schedule.period() / 2;
        self.schedule.set_postpone(postpone.map(|mut pp| {
            pp.max_postpone = pp.max_postpone.min(cap);
            pp
        }));
    }

    /// Immediately restores the charge of every disturbed row in `bank`
    /// — the blanket refresh ANVIL's degraded mode falls back to when it
    /// cannot resolve victim rows. Charge restoration only: open row
    /// buffers are not disturbed. Returns the number of rows reset.
    pub fn refresh_bank(&mut self, bank: BankId, now: Cycle) -> usize {
        self.stats.forced_bank_refreshes += 1;
        self.disturb.reset_bank(bank, now)
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Serves a memory access to `paddr` at time `now`.
    ///
    /// `now` must be monotonically non-decreasing across calls; the refresh
    /// and disturbance bookkeeping depends on it.
    pub fn access(&mut self, paddr: u64, now: Cycle) -> DramAccess {
        // Refresh commands precharge all banks; apply any that elapsed
        // since the previous access. A postponed command precharges late:
        // until it completes, the cadence counts the previous command.
        let mut cmd = now / self.config.timing.t_refi;
        if let Some(pp) = self.schedule.postpone() {
            if cmd > 0 && now < cmd * self.config.timing.t_refi + pp.delay_for(cmd) {
                cmd -= 1;
            }
        }
        if cmd > self.last_refresh_cmd {
            self.buffers.precharge_all();
            self.last_refresh_cmd = cmd;
        }

        let location = self.mapping.location_of(paddr);
        let stall = self.schedule.blocking_delay(now, self.config.timing.t_rfc);
        let outcome = self.buffers.access(location.bank.0, location.row);
        let service = match outcome {
            RowBufferOutcome::Hit => self.config.timing.row_hit,
            RowBufferOutcome::Opened => self.config.timing.row_open,
            RowBufferOutcome::Conflict => self.config.timing.row_conflict,
        };

        self.stats.accesses += 1;
        self.stats.refresh_stall_cycles += stall;
        match outcome {
            RowBufferOutcome::Hit => self.stats.row_hits += 1,
            RowBufferOutcome::Opened => self.stats.row_opens += 1,
            RowBufferOutcome::Conflict => self.stats.row_conflicts += 1,
        }

        if outcome.activated() {
            self.stats.activations += 1;
            let row = location.row_id();
            self.disturb.on_activation(row, now, &self.schedule);
            for victim in self
                .mitigation
                .on_activation(row, now, &self.config.geometry)
            {
                self.disturb.reset_row(victim, now);
            }
            self.stats.mitigation_refreshes = self.mitigation.neighbor_refreshes();
            self.collect_flips(now);
        }

        DramAccess {
            latency: stall + service,
            outcome,
            location,
        }
    }

    fn collect_flips(&mut self, _now: Cycle) {
        for flip in self.disturb.drain_flips() {
            self.stats.bit_flips += 1;
            let paddr = self.mapping.address_of(DramLocation {
                bank: flip.row.bank,
                row: flip.row.row,
                col: flip.col,
            });
            self.flips.push(DramFlip { flip, paddr });
        }
    }

    /// Drains bit flips produced since the last call. The owner (the
    /// memory system) applies these to its backing store.
    pub fn drain_flips(&mut self) -> Vec<DramFlip> {
        std::mem::take(&mut self.flips)
    }

    /// Total flips ever produced.
    pub fn total_flips(&self) -> u64 {
        self.stats.bit_flips
    }

    /// Marks every flipped cell in the byte at `paddr` repaired (software
    /// rewrote it). Returns the number of cells repaired.
    pub fn repair_at(&mut self, paddr: u64) -> usize {
        let loc = self.mapping.location_of(paddr);
        (0..8)
            .filter(|&bit| self.disturb.repair(loc.row_id(), loc.col, bit))
            .count()
    }

    /// Accumulated effective disturbance of the row containing `paddr`
    /// (diagnostic, used by tests and the experiment harness).
    pub fn disturbance_at(&self, paddr: u64) -> u64 {
        self.disturb
            .disturbance_of(self.mapping.location_of(paddr).row_id())
    }

    /// Whether `row` contains a minimum-threshold cell (see
    /// [`crate::is_vulnerable_row`]).
    pub fn is_vulnerable_row(&self, row: RowId) -> bool {
        crate::disturb::is_vulnerable_row(&self.config.disturbance, row)
    }

    /// Bounds disturbance-tracking memory on long runs; call occasionally
    /// (e.g. once per simulated refresh window).
    pub fn compact(&mut self) {
        self.disturb.compact();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::BankId;
    use crate::is_vulnerable_row;

    fn vulnerable_victim(config: &DramConfig) -> RowId {
        (2..config.geometry.rows_per_bank - 2)
            .map(|r| RowId::new(BankId(0), r))
            .find(|r| is_vulnerable_row(&config.disturbance, *r))
            .expect("vulnerable row")
    }

    /// Hammers both neighbors of `victim` once per iteration, returning the
    /// iteration of the first flip if any.
    fn double_side_hammer(dram: &mut DramModule, victim: RowId, iters: u64) -> Option<u64> {
        let above = dram.mapping.address_of(DramLocation {
            bank: victim.bank,
            row: victim.row + 1,
            col: 0,
        });
        let below = dram.mapping.address_of(DramLocation {
            bank: victim.bank,
            row: victim.row - 1,
            col: 0,
        });
        let mut now = 1000;
        for i in 0..iters {
            now += dram.access(above, now).latency;
            now += dram.access(below, now).latency;
            if dram.total_flips() > 0 {
                return Some(i);
            }
        }
        None
    }

    #[test]
    fn double_sided_hammer_flips_within_one_window() {
        let config = DramConfig::paper_ddr3();
        let victim = vulnerable_victim(&config);
        let mut dram = DramModule::new(config);
        let flipped = double_side_hammer(&mut dram, victim, 130_000);
        let at = flipped.expect("hammer must flip");
        // 220K total accesses = 110K iterations.
        assert!((105_000..=115_000).contains(&at), "flip at iteration {at}");
        let flips = dram.drain_flips();
        assert_eq!(flips[0].flip.row, victim);
    }

    #[test]
    fn hammer_defeated_by_fast_refresh() {
        // With a 4 ms retention window, 110K iterations (~2 x 110K x ~69ns
        // = 15 ms of hammering) span several refreshes: no flip.
        let clock = crate::time::CpuClock::default();
        let config = DramConfig::paper_ddr3().with_refresh_ms(clock, 4.0);
        let victim = vulnerable_victim(&config);
        let mut dram = DramModule::new(config);
        assert_eq!(double_side_hammer(&mut dram, victim, 140_000), None);
    }

    #[test]
    fn para_defeats_the_hammer() {
        let config = DramConfig::paper_ddr3().with_mitigation(MitigationKind::Para { p: 0.001 });
        let victim = vulnerable_victim(&config);
        let mut dram = DramModule::new(config);
        assert_eq!(double_side_hammer(&mut dram, victim, 140_000), None);
        assert!(dram.stats().mitigation_refreshes > 0);
    }

    #[test]
    fn trr_defeats_the_hammer() {
        let config = DramConfig::paper_ddr3().with_mitigation(MitigationKind::Trr {
            table_size: 32,
            threshold: 50_000,
        });
        let victim = vulnerable_victim(&config);
        let mut dram = DramModule::new(config);
        assert_eq!(double_side_hammer(&mut dram, victim, 140_000), None);
        assert!(dram.stats().mitigation_refreshes > 0);
    }

    #[test]
    fn bank_refresh_resets_disturbance_mid_hammer() {
        let config = DramConfig::paper_ddr3();
        let victim = vulnerable_victim(&config);
        let mut dram = DramModule::new(config);
        // Hammer to just below the flip threshold, blanket-refresh the
        // bank, then hammer the same amount again: still no flip.
        assert_eq!(double_side_hammer(&mut dram, victim, 60_000), None);
        let now = 60_000 * 300; // comfortably after the hammer loop
        assert!(dram.refresh_bank(victim.bank, now) > 0);
        assert_eq!(dram.stats().forced_bank_refreshes, 1);
        assert_eq!(double_side_hammer(&mut dram, victim, 60_000), None);
        // Control: without the blanket refresh the same 120K iterations
        // do flip (see double_sided_hammer_flips_within_one_window).
    }

    #[test]
    fn refresh_postponement_stretches_the_window() {
        use anvil_faults::RefreshPostpone;
        let mut dram = DramModule::new(DramConfig::paper_ddr3());
        let period = dram.schedule().period();
        dram.set_refresh_postpone(Some(RefreshPostpone {
            permille: 1000,
            max_postpone: period, // clamped to period / 2
            seed: 5,
        }));
        let pp = dram.schedule().postpone().unwrap();
        assert_eq!(pp.max_postpone, period / 2);
        // The delayed schedule still answers lazily and deterministically.
        let lr = dram.schedule().last_refresh(0, 3 * period);
        assert_eq!(lr, dram.schedule().last_refresh(0, 3 * period));
    }

    #[test]
    fn row_buffer_stats_accumulate() {
        let mut dram = DramModule::new(DramConfig::tiny());
        let a = dram.mapping.address_of(DramLocation {
            bank: BankId(0),
            row: 1,
            col: 0,
        });
        let b = dram.mapping.address_of(DramLocation {
            bank: BankId(0),
            row: 2,
            col: 0,
        });
        dram.access(a, 100);
        dram.access(a, 200);
        dram.access(b, 300);
        let s = dram.stats();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.row_hits, 1);
        assert_eq!(s.row_opens, 1);
        assert_eq!(s.row_conflicts, 1);
        assert_eq!(s.activations, 2);
    }

    #[test]
    fn refresh_commands_precharge_banks() {
        let mut dram = DramModule::new(DramConfig::tiny());
        let a = dram.mapping.address_of(DramLocation {
            bank: BankId(0),
            row: 1,
            col: 0,
        });
        let t_refi = dram.config().timing.t_refi;
        dram.access(a, t_refi + 10);
        // Next access to the same row after a refresh command reopens it.
        let r = dram.access(a, 2 * t_refi + 10);
        assert_eq!(r.outcome, RowBufferOutcome::Opened);
    }

    #[test]
    fn flip_addresses_round_trip() {
        let config = DramConfig::paper_ddr3();
        let victim = vulnerable_victim(&config);
        let mut dram = DramModule::new(config);
        double_side_hammer(&mut dram, victim, 130_000);
        for f in dram.drain_flips() {
            let loc = dram.mapping().location_of(f.paddr);
            assert_eq!(loc.row_id(), f.flip.row);
            assert_eq!(loc.col, f.flip.col);
        }
    }

    #[test]
    fn repair_clears_flip() {
        let config = DramConfig::paper_ddr3();
        let victim = vulnerable_victim(&config);
        let mut dram = DramModule::new(config);
        double_side_hammer(&mut dram, victim, 130_000);
        let flips = dram.drain_flips();
        assert!(!flips.is_empty());
        assert_eq!(dram.repair_at(flips[0].paddr), 1);
        assert_eq!(dram.repair_at(flips[0].paddr), 0);
    }

    #[test]
    fn refresh_stalls_increase_with_doubled_rate() {
        let run = |config: DramConfig| {
            let mut dram = DramModule::new(config);
            let mut now = 0;
            // A streaming pattern touching many rows.
            for i in 0..20_000u64 {
                now += dram.access(i * 8192, now).latency + 50;
            }
            dram.stats().refresh_stall_cycles
        };
        let base = run(DramConfig::paper_ddr3());
        let doubled = run(DramConfig::paper_ddr3().with_doubled_refresh());
        assert!(
            doubled > base,
            "doubled refresh must stall more: {doubled} vs {base}"
        );
    }
}

#[cfg(test)]
mod closed_page_tests {
    use super::*;
    use crate::bank::RowBufferPolicy;
    use crate::geometry::{BankId, RowId};
    use crate::is_vulnerable_row;

    /// On a closed-page controller a *single-address* hammer works: every
    /// access re-activates the aggressor row, so no conflict address or
    /// second aggressor is needed. (Security observation enabled by the
    /// row-buffer-policy extension; the open-page default matches the
    /// paper's platform.)
    #[test]
    fn closed_page_enables_single_address_hammering() {
        let config = DramConfig::paper_ddr3().with_row_buffer(RowBufferPolicy::ClosedPage);
        let victim = (2..30_000u32)
            .map(|r| RowId::new(BankId(0), r))
            .find(|r| is_vulnerable_row(&config.disturbance, *r))
            .unwrap();
        let mut dram = DramModule::new(config);
        let aggressor = dram.mapping().address_of(DramLocation {
            bank: victim.bank,
            row: victim.row + 1,
            col: 0,
        });
        let mut now = 1000u64;
        for _ in 0..410_000u64 {
            now += dram.access(aggressor, now).latency;
        }
        assert!(
            dram.total_flips() > 0,
            "single-address hammer must flip on closed-page DRAM"
        );

        // The same loop on the open-page default is completely harmless:
        // after the first access everything is a row-buffer hit.
        let mut dram = DramModule::new(DramConfig::paper_ddr3());
        let mut now = 1000u64;
        for _ in 0..410_000u64 {
            now += dram.access(aggressor, now).latency;
        }
        assert_eq!(dram.total_flips(), 0);
        assert!(dram.stats().row_hit_rate() > 0.99);
    }
}

impl DramModule {
    /// Energy consumed from boot until `now` under `model` (demand
    /// traffic from the module's counters plus the periodic auto-refresh
    /// of every row). See [`crate::energy_report`].
    pub fn energy(
        &self,
        model: &crate::EnergyModel,
        now: Cycle,
        clock: &crate::CpuClock,
    ) -> crate::EnergyReport {
        crate::energy_report(
            model,
            &self.stats,
            self.config.geometry.total_rows(),
            self.config.timing.refresh_period,
            now,
            clock,
        )
    }
}
