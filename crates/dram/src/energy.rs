//! DRAM energy accounting.
//!
//! Section 2.1 of the paper argues against ever-faster refresh as a
//! defense: "Going from a 64ms refresh period to the 15ms required to
//! protect our DRAM requires over a 4x increase in refresh power and
//! throughput overhead." This module quantifies that claim: per-event
//! energies (activation, read/write burst, per-row refresh) in the range
//! of DDR3 datasheet values, accumulated from the module's counters.

use crate::stats::DramStats;
use crate::time::{CpuClock, Cycle};
use serde::{Deserialize, Serialize};

/// Per-event energy costs, in nanojoules. Defaults approximate a 4 Gb
/// DDR3-1333 device (IDD values folded into per-operation energies).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// One ACT + PRE pair (opening and closing a row).
    pub activate_nj: f64,
    /// One read/write burst from an open row.
    pub access_nj: f64,
    /// Refreshing one row (internally an activation of that row).
    pub refresh_row_nj: f64,
}

impl EnergyModel {
    /// DDR3-class defaults.
    pub fn ddr3() -> Self {
        EnergyModel {
            activate_nj: 20.0,
            access_nj: 6.0,
            refresh_row_nj: 22.0,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::ddr3()
    }
}

/// Energy consumed over an interval, by component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Energy of demand activations (row opens + conflicts), nJ.
    pub activation_nj: f64,
    /// Energy of data bursts, nJ.
    pub access_nj: f64,
    /// Energy of auto-refresh, nJ.
    pub refresh_nj: f64,
    /// Interval length in seconds.
    pub seconds: f64,
}

impl EnergyReport {
    /// Total energy, nJ.
    pub fn total_nj(&self) -> f64 {
        self.activation_nj + self.access_nj + self.refresh_nj
    }

    /// Average refresh power over the interval, in milliwatts.
    pub fn refresh_mw(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.refresh_nj / self.seconds * 1e-6
        }
    }

    /// Refresh's share of total energy, in [0, 1].
    pub fn refresh_share(&self) -> f64 {
        let t = self.total_nj();
        if t <= 0.0 {
            0.0
        } else {
            self.refresh_nj / t
        }
    }
}

/// Computes the energy report for a module that has run until `now` and
/// accumulated `stats`, refreshing all `total_rows` once per
/// `refresh_period`.
pub fn energy_report(
    model: &EnergyModel,
    stats: &DramStats,
    total_rows: u64,
    refresh_period: Cycle,
    now: Cycle,
    clock: &CpuClock,
) -> EnergyReport {
    let periods = now as f64 / refresh_period as f64;
    EnergyReport {
        activation_nj: stats.activations as f64 * model.activate_nj,
        access_nj: stats.accesses as f64 * model.access_nj,
        refresh_nj: periods * total_rows as f64 * model.refresh_row_nj,
        seconds: clock.cycles_to_s(now),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::DramGeometry;
    use crate::timing::DramTiming;

    fn report_for(refresh_ms: f64, seconds: f64) -> EnergyReport {
        let clock = CpuClock::SANDY_BRIDGE_2_6GHZ;
        let geom = DramGeometry::ddr3_4gb();
        let timing = DramTiming::ddr3_with_refresh_ms(clock, refresh_ms);
        let now = clock.ms_to_cycles(seconds * 1e3);
        energy_report(
            &EnergyModel::ddr3(),
            &DramStats::default(),
            geom.total_rows(),
            timing.refresh_period,
            now,
            &clock,
        )
    }

    #[test]
    fn refresh_power_scales_inversely_with_period() {
        // The paper's 4x claim: 64 ms -> 16 ms quadruples refresh power.
        let base = report_for(64.0, 1.0);
        let fast = report_for(16.0, 1.0);
        let ratio = fast.refresh_mw() / base.refresh_mw();
        assert!((3.9..4.1).contains(&ratio), "ratio {ratio}");
        // And 15 ms is "over a 4x increase".
        let paper = report_for(15.0, 1.0);
        assert!(paper.refresh_mw() / base.refresh_mw() > 4.0);
    }

    #[test]
    fn ddr3_refresh_power_is_plausible() {
        // 512Ki rows every 64 ms at ~22 nJ each ~ 180 mW: the right order
        // of magnitude for a 4 GB DDR3 module's refresh power.
        let r = report_for(64.0, 1.0);
        assert!(
            (50.0..500.0).contains(&r.refresh_mw()),
            "refresh power {} mW implausible",
            r.refresh_mw()
        );
    }

    #[test]
    fn demand_energy_accumulates_from_stats() {
        let clock = CpuClock::SANDY_BRIDGE_2_6GHZ;
        let stats = DramStats {
            accesses: 1000,
            activations: 400,
            ..Default::default()
        };
        let r = energy_report(
            &EnergyModel::ddr3(),
            &stats,
            512 * 1024,
            clock.ms_to_cycles(64.0),
            clock.ms_to_cycles(64.0),
            &clock,
        );
        assert!((r.access_nj - 6000.0).abs() < 1e-9);
        assert!((r.activation_nj - 8000.0).abs() < 1e-9);
        assert!(r.refresh_share() > 0.9, "refresh dominates an idle window");
    }

    #[test]
    fn report_handles_zero_interval() {
        let r = report_for(64.0, 0.0);
        assert_eq!(r.refresh_mw(), 0.0);
        assert_eq!(r.refresh_share(), 0.0);
    }
}
