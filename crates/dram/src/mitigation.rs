//! In-DRAM / in-controller hardware mitigations, used as baselines.
//!
//! The paper surveys hardware proposals that require new silicon and
//! therefore cannot protect deployed systems (Section 5.2.2): PARA
//! (probabilistic adjacent row activation, Kim et al.) and the
//! counter-based targeted row refresh (TRR) of LPDDR4/DDR4. Both are
//! implemented here so the benchmark harness can ablate ANVIL against the
//! hardware alternatives it is meant to substitute for.

use crate::geometry::{DramGeometry, RowId};
use crate::time::Cycle;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which hardware mitigation the module implements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum MitigationKind {
    /// Plain DRAM with no in-hardware protection (the deployed baseline).
    #[default]
    None,
    /// PARA: on every activation, refresh each neighbor with probability
    /// `p` (paper reference \[24\]).
    Para {
        /// Per-neighbor refresh probability (typically around 0.001).
        p: f64,
    },
    /// Counter-based targeted row refresh: track per-row activation counts
    /// in a fixed-size table per bank; refresh neighbors once a count
    /// crosses `threshold` within one retention window.
    Trr {
        /// Entries in each bank's counter table.
        table_size: usize,
        /// Activation count that triggers a neighbor refresh.
        threshold: u32,
    },
}

/// Runtime state for the configured mitigation.
#[derive(Debug)]
pub(crate) struct MitigationState {
    kind: MitigationKind,
    rng: SmallRng,
    /// TRR counter tables, one per bank: row -> activation count.
    tables: HashMap<u32, HashMap<u32, u32>>,
    /// Window start per bank, for the TRR periodic reset.
    window_start: HashMap<u32, Cycle>,
    refresh_period: Cycle,
    neighbor_refreshes: u64,
}

impl MitigationState {
    pub(crate) fn new(kind: MitigationKind, refresh_period: Cycle, seed: u64) -> Self {
        if let MitigationKind::Para { p } = kind {
            assert!(
                (0.0..=1.0).contains(&p),
                "PARA probability must be in [0,1]"
            );
        }
        if let MitigationKind::Trr {
            table_size,
            threshold,
        } = kind
        {
            assert!(
                table_size > 0 && threshold > 0,
                "TRR parameters must be non-zero"
            );
        }
        MitigationState {
            kind,
            rng: SmallRng::seed_from_u64(seed),
            tables: HashMap::new(),
            window_start: HashMap::new(),
            refresh_period,
            neighbor_refreshes: 0,
        }
    }

    pub(crate) fn neighbor_refreshes(&self) -> u64 {
        self.neighbor_refreshes
    }

    /// Called on every row activation; returns the neighbor rows the
    /// hardware decided to refresh.
    pub(crate) fn on_activation(
        &mut self,
        row: RowId,
        now: Cycle,
        geometry: &DramGeometry,
    ) -> Vec<RowId> {
        let victims = match self.kind {
            MitigationKind::None => Vec::new(),
            MitigationKind::Para { p } => {
                let mut v = Vec::new();
                if let Some(below) = row.below() {
                    if self.rng.gen_bool(p) {
                        v.push(below);
                    }
                }
                if let Some(above) = row.above(geometry) {
                    if self.rng.gen_bool(p) {
                        v.push(above);
                    }
                }
                v
            }
            MitigationKind::Trr {
                table_size,
                threshold,
            } => {
                let bank = row.bank.0;
                let start = self.window_start.entry(bank).or_insert(now);
                let table = self.tables.entry(bank).or_default();
                if now.saturating_sub(*start) >= self.refresh_period {
                    table.clear();
                    *start = now;
                }
                // Misra-Gries style bounded table: decrement all on
                // overflow, so heavy hitters survive.
                if !table.contains_key(&row.row) && table.len() >= table_size {
                    table.retain(|_, c| {
                        *c -= 1;
                        *c > 0
                    });
                }
                let count = table.entry(row.row).or_insert(0);
                *count += 1;
                if *count >= threshold {
                    *count = 0;
                    row.neighbors(1, geometry)
                } else {
                    Vec::new()
                }
            }
        };
        self.neighbor_refreshes += victims.len() as u64;
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::BankId;

    fn geom() -> DramGeometry {
        DramGeometry::ddr3_4gb()
    }

    #[test]
    fn none_never_refreshes() {
        let mut m = MitigationState::new(MitigationKind::None, 1_000_000, 1);
        for i in 0..10_000 {
            assert!(m
                .on_activation(RowId::new(BankId(0), 10), i, &geom())
                .is_empty());
        }
        assert_eq!(m.neighbor_refreshes(), 0);
    }

    #[test]
    fn para_refresh_rate_tracks_probability() {
        let mut m = MitigationState::new(MitigationKind::Para { p: 0.01 }, 1_000_000, 42);
        let n = 100_000u64;
        for i in 0..n {
            m.on_activation(RowId::new(BankId(0), 100), i, &geom());
        }
        let rate = m.neighbor_refreshes() as f64 / (2.0 * n as f64);
        assert!((0.008..0.012).contains(&rate), "rate {rate}");
    }

    #[test]
    fn para_protects_with_high_cumulative_probability() {
        // With p = 0.001 and 110K activations per aggressor, the chance a
        // victim is never refreshed is (1-p)^110000 ~ e^-110: effectively
        // zero. Verify a refresh fires well before the hammer threshold.
        let mut m = MitigationState::new(MitigationKind::Para { p: 0.001 }, u64::MAX / 2, 7);
        let agg = RowId::new(BankId(0), 500);
        let mut first = None;
        for i in 0..110_000u64 {
            if !m.on_activation(agg, i, &geom()).is_empty() {
                first = Some(i);
                break;
            }
        }
        assert!(first.expect("PARA must fire") < 50_000);
    }

    #[test]
    fn trr_fires_at_threshold() {
        let mut m = MitigationState::new(
            MitigationKind::Trr {
                table_size: 16,
                threshold: 1000,
            },
            u64::MAX / 2,
            1,
        );
        let agg = RowId::new(BankId(2), 50);
        let mut fired_at = None;
        for i in 0..2_000u64 {
            if !m.on_activation(agg, i, &geom()).is_empty() {
                fired_at = Some(i);
                break;
            }
        }
        assert_eq!(fired_at, Some(999));
    }

    #[test]
    fn trr_survives_table_pressure_from_decoys() {
        // A heavy hitter must still be caught even when the attacker
        // sprays accesses over many other rows to evict its counter.
        let mut m = MitigationState::new(
            MitigationKind::Trr {
                table_size: 8,
                threshold: 500,
            },
            u64::MAX / 2,
            1,
        );
        let agg = RowId::new(BankId(0), 1000);
        let mut fired = false;
        for i in 0..40_000u64 {
            // 1 aggressor activation then 1 decoy activation.
            if !m.on_activation(agg, 2 * i, &geom()).is_empty() {
                fired = true;
                break;
            }
            let decoy = RowId::new(BankId(0), 2000 + (i % 64) as u32);
            m.on_activation(decoy, 2 * i + 1, &geom());
        }
        assert!(fired, "TRR lost the heavy hitter under table pressure");
    }

    #[test]
    fn trr_window_reset_clears_counts() {
        let mut m = MitigationState::new(
            MitigationKind::Trr {
                table_size: 16,
                threshold: 1000,
            },
            1_000, // tiny window
            1,
        );
        let agg = RowId::new(BankId(0), 5);
        // 999 activations in one window, then jump past the window: the
        // count restarts, so the next 999 don't fire either.
        for i in 0..999u64 {
            assert!(m.on_activation(agg, i, &geom()).is_empty());
        }
        for i in 0..999u64 {
            assert!(m.on_activation(agg, 10_000 + i, &geom()).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn para_validates_probability() {
        MitigationState::new(MitigationKind::Para { p: 1.5 }, 1, 1);
    }
}
