#![warn(missing_docs)]

//! # anvil-dram
//!
//! Cycle-level DRAM model for the ANVIL (ASPLOS 2016) reproduction:
//! address mapping, per-bank row buffers, round-robin auto-refresh, a
//! calibrated rowhammer disturbance model, and the PARA/TRR hardware
//! mitigation baselines.
//!
//! The paper demonstrates rowhammer attacks and the ANVIL defense on a real
//! 4 GB DDR3 module; this crate is the substitute substrate (see DESIGN.md
//! §1). The disturbance model is calibrated so that the module flips bits
//! at the paper's measured minimums — 400K single-sided and 220K
//! double-sided activations within one 64 ms refresh window (Table 1).
//!
//! ## Quick start
//!
//! ```
//! use anvil_dram::{DramConfig, DramModule, DramLocation, BankId};
//!
//! let mut dram = DramModule::new(DramConfig::paper_ddr3());
//!
//! // Hammer the two rows adjacent to a victim row.
//! let above = dram.mapping().address_of(DramLocation { bank: BankId(0), row: 101, col: 0 });
//! let below = dram.mapping().address_of(DramLocation { bank: BankId(0), row: 99, col: 0 });
//! let mut now = 0;
//! for _ in 0..150_000 {
//!     now += dram.access(above, now).latency;
//!     now += dram.access(below, now).latency;
//! }
//! // Depending on the victim's weak cells, bits may have flipped:
//! let _flips = dram.drain_flips();
//! ```

mod bank;
mod disturb;
mod energy;
mod geometry;
mod mapping;
mod mitigation;
mod module;
mod refresh;
mod stats;
mod time;
mod timing;

pub use bank::{RowBufferOutcome, RowBufferPolicy, RowBuffers};
pub use disturb::{is_vulnerable_row, BitFlip, DisturbanceConfig, DisturbanceTracker};
pub use energy::{energy_report, EnergyModel, EnergyReport};
pub use geometry::{BankId, DramGeometry, DramLocation, RowId};
pub use mapping::{AddressMapping, BankPermutation};
pub use mitigation::MitigationKind;
pub use module::{DramAccess, DramConfig, DramFlip, DramModule};
pub use refresh::RefreshSchedule;
pub use stats::DramStats;
pub use time::{CpuClock, Cycle};
pub use timing::DramTiming;
