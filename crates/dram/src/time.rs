//! Time base shared by the whole simulation.
//!
//! Everything in the ANVIL reproduction is measured in CPU cycles of a
//! fixed-frequency core (the paper's test machine is an Intel i5-2540M at a
//! nominal 2.6 GHz). DRAM timing parameters (tREFI, tRFC, the 64 ms refresh
//! period) are converted into CPU cycles once, at configuration time, so the
//! hot simulation paths only ever do integer cycle arithmetic.

/// A point in time or a duration, in CPU cycles.
///
/// A plain alias rather than a newtype: cycle arithmetic saturates the hot
/// path of the simulator and the ergonomic cost of wrapping every addition
/// outweighs the type-safety benefit inside this workspace. Public APIs that
/// accept wall-clock quantities take explicit `*_ms`/`*_ns` parameters and
/// convert through [`CpuClock`].
pub type Cycle = u64;

/// Converts between wall-clock time and CPU cycles for a fixed-frequency core.
///
/// # Examples
///
/// ```
/// use anvil_dram::CpuClock;
///
/// let clock = CpuClock::new(2_600_000_000);
/// assert_eq!(clock.ms_to_cycles(64.0), 166_400_000);
/// assert!((clock.cycles_to_ms(166_400_000) - 64.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct CpuClock {
    freq_hz: u64,
}

impl CpuClock {
    /// The paper's test machine: Intel Core i5-2540M at a nominal 2.6 GHz.
    pub const SANDY_BRIDGE_2_6GHZ: CpuClock = CpuClock {
        freq_hz: 2_600_000_000,
    };

    /// Creates a clock for a core running at `freq_hz` Hertz.
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz` is zero.
    pub fn new(freq_hz: u64) -> Self {
        assert!(freq_hz > 0, "CPU frequency must be non-zero");
        CpuClock { freq_hz }
    }

    /// The core frequency in Hertz.
    pub fn freq_hz(&self) -> u64 {
        self.freq_hz
    }

    /// Converts milliseconds to cycles (rounded to nearest).
    pub fn ms_to_cycles(&self, ms: f64) -> Cycle {
        (ms * self.freq_hz as f64 / 1e3).round() as Cycle
    }

    /// Converts microseconds to cycles (rounded to nearest).
    pub fn us_to_cycles(&self, us: f64) -> Cycle {
        (us * self.freq_hz as f64 / 1e6).round() as Cycle
    }

    /// Converts nanoseconds to cycles (rounded to nearest).
    pub fn ns_to_cycles(&self, ns: f64) -> Cycle {
        (ns * self.freq_hz as f64 / 1e9).round() as Cycle
    }

    /// Converts cycles to milliseconds.
    pub fn cycles_to_ms(&self, cycles: Cycle) -> f64 {
        cycles as f64 * 1e3 / self.freq_hz as f64
    }

    /// Converts cycles to microseconds.
    pub fn cycles_to_us(&self, cycles: Cycle) -> f64 {
        cycles as f64 * 1e6 / self.freq_hz as f64
    }

    /// Converts cycles to nanoseconds.
    pub fn cycles_to_ns(&self, cycles: Cycle) -> f64 {
        cycles as f64 * 1e9 / self.freq_hz as f64
    }

    /// Converts cycles to seconds.
    pub fn cycles_to_s(&self, cycles: Cycle) -> f64 {
        cycles as f64 / self.freq_hz as f64
    }
}

impl Default for CpuClock {
    fn default() -> Self {
        Self::SANDY_BRIDGE_2_6GHZ
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sandy_bridge() {
        assert_eq!(CpuClock::default().freq_hz(), 2_600_000_000);
    }

    #[test]
    fn ms_round_trip() {
        let c = CpuClock::default();
        for ms in [0.5, 1.0, 6.0, 32.0, 64.0] {
            let cycles = c.ms_to_cycles(ms);
            assert!((c.cycles_to_ms(cycles) - ms).abs() < 1e-6);
        }
    }

    #[test]
    fn us_and_ns_conversions() {
        let c = CpuClock::new(1_000_000_000); // 1 GHz: 1 cycle == 1 ns
        assert_eq!(c.ns_to_cycles(338.0), 338);
        assert_eq!(c.us_to_cycles(7.8), 7800);
        assert_eq!(c.cycles_to_us(7800), 7.8);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_frequency_panics() {
        CpuClock::new(0);
    }

    #[test]
    fn refresh_interval_at_2_6ghz() {
        // The DDR3 refresh command interval of 7.8 us from the paper.
        let c = CpuClock::SANDY_BRIDGE_2_6GHZ;
        assert_eq!(c.us_to_cycles(7.8), 20_280);
    }
}
