//! Auto-refresh scheduling.
//!
//! DDR3 refreshes rows round-robin: a refresh command is issued every tREFI
//! and each command refreshes a fixed group of rows, so every row is
//! refreshed exactly once per retention window (64 ms by default). The
//! simulator never sweeps all rows; instead [`RefreshSchedule`] answers, for
//! any row and point in time, *when that row was last refreshed* — enough to
//! lazily reset disturbance counters.

use crate::time::Cycle;
use crate::timing::DramTiming;
use anvil_faults::RefreshPostpone;
use serde::{Deserialize, Serialize};

/// The deterministic round-robin auto-refresh schedule of one bank.
///
/// Rows are grouped into `slots`; slot `s` is refreshed by the commands at
/// times `(k * slots + s) * t_refi`. All banks refresh in lockstep (as with
/// all-bank auto-refresh on DDR3).
///
/// # Examples
///
/// ```
/// use anvil_dram::{DramTiming, RefreshSchedule};
///
/// let t = DramTiming::default();
/// let sched = RefreshSchedule::new(&t, 32_768);
/// // Row 0 is refreshed by the very first command of each window.
/// let period = sched.period();
/// assert_eq!(sched.last_refresh(0, period + 1), Some(period));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefreshSchedule {
    t_refi: Cycle,
    slots: u64,
    rows_per_slot: u32,
    postpone: Option<RefreshPostpone>,
}

impl RefreshSchedule {
    /// Builds the schedule for a bank with `rows_per_bank` rows under the
    /// given timing.
    ///
    /// # Panics
    ///
    /// Panics if the timing fails [`DramTiming::validate`] or
    /// `rows_per_bank` is zero.
    pub fn new(timing: &DramTiming, rows_per_bank: u32) -> Self {
        timing
            .validate()
            .unwrap_or_else(|e| panic!("invalid DRAM timing: {e}"));
        assert!(rows_per_bank > 0, "bank must have rows");
        let slots = timing.commands_per_period();
        let rows_per_slot = rows_per_bank.div_ceil(slots as u32).max(1);
        // With few rows and many commands, several slots refresh nothing;
        // shrink to the number of occupied slots so every row still gets
        // exactly one refresh per period.
        let slots = (rows_per_bank as u64).div_ceil(rows_per_slot as u64);
        RefreshSchedule {
            t_refi: timing.refresh_period / slots,
            slots,
            rows_per_slot,
            postpone: None,
        }
    }

    /// Installs (or clears) deterministic refresh postponement — the
    /// fault model for a controller that legally delays auto-refresh
    /// commands under load (DDR3 permits up to 8 tREFI). Delays are
    /// clamped below one retention period so the lazy last-refresh
    /// arithmetic stays well-defined.
    pub fn set_postpone(&mut self, postpone: Option<RefreshPostpone>) {
        self.postpone = postpone;
    }

    /// The active postponement parameters, if any.
    pub fn postpone(&self) -> Option<RefreshPostpone> {
        self.postpone
    }

    fn postpone_delay(&self, cmd: u64) -> Cycle {
        self.postpone
            .map_or(0, |pp| pp.delay_for(cmd).min(self.period() - 1))
    }

    /// Number of rows refreshed by each refresh command.
    pub fn rows_per_command(&self) -> u32 {
        self.rows_per_slot
    }

    /// The retention window implied by this schedule.
    pub fn period(&self) -> Cycle {
        self.t_refi * self.slots
    }

    /// The fixed phase (offset within the retention window) at which `row`
    /// is refreshed.
    pub fn phase_of(&self, row: u32) -> Cycle {
        ((row / self.rows_per_slot) as u64 % self.slots) * self.t_refi
    }

    /// The most recent time at or before `now` at which `row` was
    /// auto-refreshed, or `None` if it has not been refreshed yet.
    pub fn last_refresh(&self, row: u32, now: Cycle) -> Option<Cycle> {
        let phase = self.phase_of(row);
        let period = self.period();
        if now < phase {
            return None;
        }
        let nominal = (now - phase) / period * period + phase;
        if self.postpone.is_none() {
            return Some(nominal);
        }
        // The command nominally at `nominal` may have been postponed past
        // `now`; in that case the row was last refreshed by the previous
        // period's (possibly also postponed) command. Delays are clamped
        // below one period, so the previous command always completed.
        let actual = nominal + self.postpone_delay(nominal / self.t_refi);
        if actual <= now {
            Some(actual)
        } else if nominal >= period {
            let prev = nominal - period;
            Some(prev + self.postpone_delay(prev / self.t_refi))
        } else {
            None
        }
    }

    /// The next time strictly after `now` at which `row` will be
    /// auto-refreshed.
    pub fn next_refresh(&self, row: u32, now: Cycle) -> Cycle {
        match self.last_refresh(row, now) {
            None => self.phase_of(row),
            Some(last) => last + self.period(),
        }
    }

    /// Extra latency an access arriving at `now` suffers because the rank
    /// is busy executing a refresh command (tRFC blocking). `t_rfc` is
    /// passed by the caller because the schedule itself is timing-agnostic
    /// beyond the command cadence.
    pub fn blocking_delay(&self, now: Cycle, t_rfc: Cycle) -> Cycle {
        let into = now % self.t_refi;
        t_rfc.saturating_sub(into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::CpuClock;

    fn sched() -> (DramTiming, RefreshSchedule) {
        let t = DramTiming::default();
        (t, RefreshSchedule::new(&t, 32_768))
    }

    #[test]
    fn every_row_refreshed_once_per_period() {
        let (t, s) = sched();
        // 8205-ish commands, 32768 rows -> 4 rows per command.
        assert_eq!(s.rows_per_command(), 4);
        // Period reconstruction is within one command of the nominal window.
        assert!(s.period() <= t.refresh_period);
        assert!(s.period() >= t.refresh_period - t.t_refi);
    }

    #[test]
    fn phases_are_distinct_across_slots_and_shared_within() {
        let (_, s) = sched();
        assert_eq!(s.phase_of(0), s.phase_of(3)); // same slot of 4 rows
        assert_ne!(s.phase_of(0), s.phase_of(4)); // next slot
        assert!(s.phase_of(32_767) < s.period());
    }

    #[test]
    fn last_refresh_monotone_and_periodic() {
        let (_, s) = sched();
        let row = 1234;
        let phase = s.phase_of(row);
        assert_eq!(s.last_refresh(row, phase.saturating_sub(1)), None);
        assert_eq!(s.last_refresh(row, phase), Some(phase));
        assert_eq!(s.last_refresh(row, phase + 10), Some(phase));
        assert_eq!(
            s.last_refresh(row, phase + s.period() + 5),
            Some(phase + s.period())
        );
    }

    #[test]
    fn next_refresh_follows_last() {
        let (_, s) = sched();
        let row = 77;
        let next = s.next_refresh(row, 0);
        assert!(next >= s.phase_of(row));
        let after = s.next_refresh(row, next);
        assert_eq!(after, next + s.period());
    }

    #[test]
    fn blocking_delay_only_inside_rfc_window() {
        let (t, s) = sched();
        assert_eq!(s.blocking_delay(0, t.t_rfc), t.t_rfc);
        assert_eq!(s.blocking_delay(t.t_rfc, t.t_rfc), 0);
        assert_eq!(s.blocking_delay(s.t_refi + 1, t.t_rfc), t.t_rfc - 1);
    }

    #[test]
    fn tiny_bank_with_more_commands_than_rows() {
        let t = DramTiming::ddr3(CpuClock::default());
        let s = RefreshSchedule::new(&t, 512);
        assert_eq!(s.rows_per_command(), 1);
        // All rows must still be refreshed within one period.
        for row in [0u32, 1, 255, 511] {
            assert!(s.phase_of(row) < s.period());
            let lr = s.last_refresh(row, s.period() * 2).unwrap();
            assert!(lr > s.period());
        }
    }

    #[test]
    fn postponement_delays_last_refresh_within_bounds() {
        let (_, mut s) = sched();
        let row = 1234;
        let period = s.period();
        let phase = s.phase_of(row);
        let baseline = s.last_refresh(row, phase + 2 * period + 5).unwrap();
        s.set_postpone(Some(RefreshPostpone {
            permille: 1000, // every command postponed
            max_postpone: 10_000,
            seed: 42,
        }));
        // Query far enough past the nominal time that the delayed command
        // has certainly completed.
        let now = phase + 2 * period + 10_000;
        let delayed = s.last_refresh(row, now).unwrap();
        assert!(delayed >= baseline, "{delayed} < {baseline}");
        assert!(delayed <= baseline + 10_000);
        assert!(delayed <= now);
        // Deterministic.
        assert_eq!(delayed, s.last_refresh(row, now).unwrap());
    }

    #[test]
    fn postponement_falls_back_to_previous_command() {
        let (_, mut s) = sched();
        let row = 0; // phase 0
        let period = s.period();
        s.set_postpone(Some(RefreshPostpone {
            permille: 1000,
            max_postpone: 10_000,
            seed: 42,
        }));
        // Immediately after the second nominal refresh, its delayed
        // command may not have executed yet; the answer must then be the
        // first period's (delayed) command, which is strictly earlier.
        let lr = s.last_refresh(row, 2 * period).unwrap();
        assert!(lr <= 2 * period);
        assert!(lr >= period, "must not skip back more than one period");
    }

    #[test]
    fn doubled_refresh_halves_period() {
        let t = DramTiming::default();
        let d = t.with_doubled_refresh();
        let s = RefreshSchedule::new(&t, 32_768);
        let sd = RefreshSchedule::new(&d, 32_768);
        assert!(sd.period() <= s.period() / 2 + sd.t_refi);
    }
}
