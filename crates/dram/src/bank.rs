//! Per-bank row-buffer state.
//!
//! Each DRAM bank has a single row buffer holding the most recently opened
//! row; an access to the open row is served from the buffer without
//! activating the array. This is why rowhammering "involves repeatedly
//! accessing at least two rows within the same bank — otherwise the row
//! buffer would prevent the rowhammering" (Section 3.1), the property
//! ANVIL's bank-locality check relies on.

use serde::{Deserialize, Serialize};

/// Row-buffer management policy of the memory controller.
///
/// Under the default open-page policy an aggressor row stays open between
/// accesses, so hammering needs a same-bank conflict address (or a second
/// aggressor) to force re-activation. A *closed-page* controller
/// precharges after every access — better for irregular server workloads,
/// but it makes every access an activation, so even a single-address
/// hammer disturbs its neighbors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RowBufferPolicy {
    /// Keep the row open until a conflicting access (desktop default).
    #[default]
    OpenPage,
    /// Precharge immediately after every access.
    ClosedPage,
}

/// Outcome of routing an access through a bank's row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RowBufferOutcome {
    /// The requested row was already open: no activation.
    Hit,
    /// The bank was idle: the row was activated (opened).
    Opened,
    /// A different row was open: precharge then activate.
    Conflict,
}

impl RowBufferOutcome {
    /// Whether this outcome activated (opened) the row — the event that
    /// disturbs neighbors.
    pub fn activated(&self) -> bool {
        !matches!(self, RowBufferOutcome::Hit)
    }
}

/// Sentinel for [`RowBuffers::last`]: no cached hit target.
const NO_LAST: u64 = u64::MAX;

/// Row-buffer state of every bank in the module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowBuffers {
    policy: RowBufferPolicy,
    open: Vec<Option<u32>>,
    /// `(bank << 32) | row` of the most recent open-page access — the
    /// last-row fast path. Streaming and hammering traffic alike hit the
    /// same (bank, row) many times in a row, so the common case returns
    /// [`RowBufferOutcome::Hit`] on a single integer compare without
    /// touching the per-bank table. Invariant: when not [`NO_LAST`], the
    /// encoded row is open in the encoded bank.
    last: u64,
}

impl RowBuffers {
    /// Creates the state for `banks` banks, all initially idle
    /// (precharged), under the open-page policy.
    pub fn new(banks: u32) -> Self {
        Self::with_policy(banks, RowBufferPolicy::OpenPage)
    }

    /// Creates the state with an explicit row-buffer policy.
    pub fn with_policy(banks: u32, policy: RowBufferPolicy) -> Self {
        RowBuffers {
            policy,
            open: vec![None; banks as usize],
            last: NO_LAST,
        }
    }

    /// Routes an access to `row` of `bank`, updating the open row.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn access(&mut self, bank: u32, row: u32) -> RowBufferOutcome {
        let key = (u64::from(bank) << 32) | u64::from(row);
        if key == self.last {
            // Same bank and row as the previous open-page access: the row
            // is still open (only a conflicting access or a precharge
            // closes it, and both invalidate `last`).
            return RowBufferOutcome::Hit;
        }
        let slot = &mut self.open[bank as usize];
        let outcome = match *slot {
            Some(open) if open == row => RowBufferOutcome::Hit,
            Some(_) => {
                *slot = Some(row);
                RowBufferOutcome::Conflict
            }
            None => {
                *slot = Some(row);
                RowBufferOutcome::Opened
            }
        };
        if matches!(self.policy, RowBufferPolicy::ClosedPage) {
            // Auto-precharge: the bank is idle again after the access, so
            // the next access to any row — including the same one — will
            // activate.
            *slot = None;
        } else {
            self.last = key;
        }
        outcome
    }

    /// The row currently open in `bank`, if any.
    pub fn open_row(&self, bank: u32) -> Option<u32> {
        self.open[bank as usize]
    }

    /// Precharges (closes) every bank, as a refresh command does.
    pub fn precharge_all(&mut self) {
        self.open.iter_mut().for_each(|s| *s = None);
        self.last = NO_LAST;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_page_sequence() {
        let mut rb = RowBuffers::new(2);
        assert_eq!(rb.access(0, 5), RowBufferOutcome::Opened);
        assert_eq!(rb.access(0, 5), RowBufferOutcome::Hit);
        assert_eq!(rb.access(0, 9), RowBufferOutcome::Conflict);
        assert_eq!(rb.open_row(0), Some(9));
        // Other banks are independent.
        assert_eq!(rb.access(1, 5), RowBufferOutcome::Opened);
    }

    #[test]
    fn same_row_repeated_access_never_activates() {
        let mut rb = RowBuffers::new(1);
        rb.access(0, 3);
        for _ in 0..100 {
            assert!(!rb.access(0, 3).activated());
        }
    }

    #[test]
    fn alternating_rows_always_activate() {
        // The double-sided hammer pattern: every access is a conflict.
        let mut rb = RowBuffers::new(1);
        rb.access(0, 10);
        for i in 0..100 {
            let row = if i % 2 == 0 { 12 } else { 10 };
            assert!(rb.access(0, row).activated());
        }
    }

    #[test]
    fn closed_page_always_activates() {
        let mut rb = RowBuffers::with_policy(1, RowBufferPolicy::ClosedPage);
        assert_eq!(rb.access(0, 3), RowBufferOutcome::Opened);
        // Even re-accessing the same row re-activates: the hammer needs
        // no conflict address on a closed-page controller.
        assert_eq!(rb.access(0, 3), RowBufferOutcome::Opened);
        assert!(rb.access(0, 3).activated());
        assert_eq!(rb.open_row(0), None);
    }

    #[test]
    fn precharge_closes_everything() {
        let mut rb = RowBuffers::new(3);
        rb.access(2, 7);
        rb.precharge_all();
        assert_eq!(rb.open_row(2), None);
        assert_eq!(rb.access(2, 7), RowBufferOutcome::Opened);
    }
}
