//! The rowhammer disturbance model.
//!
//! Every activation of a row electrically disturbs the two physically
//! adjacent rows; a cell in a victim row flips once the accumulated
//! disturbance since the victim's last refresh crosses the cell's
//! threshold (Kim et al., ISCA'14, the paper's reference [24]).
//!
//! # Calibration
//!
//! The paper's DDR3 module needs a minimum of **400K** aggressor
//! activations for a single-sided flip and **220K** (110K per side) for a
//! double-sided flip (Table 1). We model the double-sided super-linearity
//! with a coupling boost: the effective disturbance of a victim row is
//!
//! ```text
//! D = c_hi + c_lo + 2 * BOOST * min(c_hi, c_lo)
//! ```
//!
//! where `c_hi`/`c_lo` count activations of the two adjacent aggressors
//! since the victim was last refreshed. With `BOOST = Tss/Tds - 1 =
//! 400/220 - 1 ≈ 0.818`, a single-sided attack flips at exactly `Tss`
//! activations and a balanced double-sided attack at `Tds` total — i.e. the
//! model reproduces Table 1 by construction, which is the calibration the
//! substitution rule requires (we cannot measure a real DIMM).
//!
//! Weak cells are sampled deterministically per row from a seed, so runs
//! are reproducible and no per-row state is allocated until a row is
//! actually disturbed.

use crate::geometry::{BankId, RowId};
use crate::refresh::RefreshSchedule;
use crate::time::Cycle;
use serde::{Deserialize, Serialize};

/// Configuration of the disturbance (bit-flip) physics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DisturbanceConfig {
    /// Minimum activations of a single adjacent aggressor that flip the
    /// most vulnerable cells (the paper's 400K).
    pub single_sided_threshold: u64,
    /// Minimum total activations, balanced across both adjacent
    /// aggressors, that flip the most vulnerable cells (the paper's 220K).
    pub double_sided_threshold: u64,
    /// One out of this many rows contains a cell at exactly the minimum
    /// threshold; other rows are uniformly up to `threshold_spread` harder.
    pub vulnerable_row_period: u32,
    /// Maximum fractional increase of the flip threshold for
    /// less-vulnerable rows (e.g. `1.0` means up to 2x the minimum).
    pub threshold_spread: f64,
    /// Average number of weak cells per row (>= 1; extra cells have higher
    /// thresholds and model the multi-bit flips that defeat ECC, Section
    /// 1.2).
    pub weak_cells_per_row: u32,
    /// How many rows on each side an activation disturbs (1 on the
    /// paper's DDR3; denser future devices disturb at distance 2 as well,
    /// the case the paper's "easily extends to N adjacent rows" remark
    /// anticipates).
    pub neighbor_reach: u32,
    /// Relative coupling strength of distance-2 disturbance (only used
    /// when `neighbor_reach >= 2`).
    pub distance2_coupling: f64,
    /// Seed for the deterministic per-row weak-cell sampling.
    pub seed: u64,
}

impl DisturbanceConfig {
    /// The paper's module (Table 1): 400K single-sided / 220K double-sided.
    pub fn paper_ddr3() -> Self {
        DisturbanceConfig {
            single_sided_threshold: 400_000,
            double_sided_threshold: 220_000,
            vulnerable_row_period: 4,
            threshold_spread: 1.0,
            weak_cells_per_row: 3,
            neighbor_reach: 1,
            distance2_coupling: 0.25,
            seed: 0x0a17_51ce_5eed,
        }
    }

    /// The paper's "future DRAM" scenario (Section 4.5): flips with half
    /// the activations (110K double-sided).
    pub fn future_half_threshold() -> Self {
        let mut c = Self::paper_ddr3();
        c.single_sided_threshold /= 2;
        c.double_sided_threshold /= 2;
        c
    }

    /// A denser future device that also disturbs rows at distance 2 — the
    /// scenario in which ANVIL must widen its victim radius ("our
    /// approach easily extends to N adjacent rows", Section 3.3).
    pub fn future_distance2() -> Self {
        let mut c = Self::future_half_threshold();
        c.neighbor_reach = 2;
        // Dense enough that distance-2 coupling is more than half of
        // distance-1: rows two away from a lone aggressor become flippable
        // within a refresh window.
        c.distance2_coupling = 0.6;
        c
    }

    /// An invulnerable module (no cell ever flips); useful as a control.
    pub fn invulnerable() -> Self {
        let mut c = Self::paper_ddr3();
        c.single_sided_threshold = u64::MAX / 4;
        c.double_sided_threshold = u64::MAX / 4;
        c
    }

    /// The double-sided coupling boost implied by the two thresholds (see
    /// module docs).
    pub fn coupling_boost(&self) -> f64 {
        self.single_sided_threshold as f64 / self.double_sided_threshold as f64 - 1.0
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.single_sided_threshold == 0 || self.double_sided_threshold == 0 {
            return Err("thresholds must be non-zero".into());
        }
        if self.double_sided_threshold > self.single_sided_threshold {
            return Err("double-sided threshold cannot exceed single-sided".into());
        }
        if self.vulnerable_row_period == 0 {
            return Err("vulnerable_row_period must be non-zero".into());
        }
        if self.threshold_spread < 0.0 {
            return Err("threshold_spread must be non-negative".into());
        }
        if self.weak_cells_per_row == 0 {
            return Err("weak_cells_per_row must be at least 1".into());
        }
        if !(1..=2).contains(&self.neighbor_reach) {
            return Err("neighbor_reach must be 1 or 2".into());
        }
        if !(0.0..1.0).contains(&self.distance2_coupling) {
            return Err("distance2_coupling must be in [0, 1)".into());
        }
        Ok(())
    }
}

impl Default for DisturbanceConfig {
    fn default() -> Self {
        Self::paper_ddr3()
    }
}

/// A bit flip induced by hammering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitFlip {
    /// The victim row.
    pub row: RowId,
    /// Byte offset of the flipped cell within the row.
    pub col: u32,
    /// Bit index within the byte (0..8).
    pub bit: u8,
    /// Cycle at which the flip occurred.
    pub cycle: Cycle,
}

/// A weak cell within a row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WeakCell {
    col: u32,
    bit: u8,
    threshold: u64,
    flipped: bool,
}

/// Disturbance state of one victim row.
#[derive(Debug, Clone)]
struct RowState {
    /// Activations of the aggressor row above (row + 1) since last refresh.
    c_hi: u64,
    /// Activations of the aggressor row below (row - 1) since last refresh.
    c_lo: u64,
    /// Activations at distance 2 (rows +/- 2), attenuated by
    /// `distance2_coupling`; only populated when `neighbor_reach >= 2`.
    c_far: u64,
    /// When the charge was last restored.
    last_reset: Cycle,
    /// Cheapest weak-cell threshold, for the fast path.
    min_threshold: u64,
    /// Weak cells, materialized only when `min_threshold` is approached.
    cells: Option<Vec<WeakCell>>,
}

/// Which side of the victim the activated aggressor is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    Above,
    Below,
}

/// Dense per-bank storage of [`RowState`]s.
///
/// The disturbance model sits on the per-activation hot path — every DRAM
/// activation updates two to four victim rows — so row state lives in a
/// flat arena indexed by row number instead of a `HashMap<RowId, _>`:
/// `index[row]` holds `slot + 1` into the `slots` arena (0 = no state
/// yet), turning each lookup into two array indexes with no hashing. Both
/// the bank list and each bank's index vector materialize lazily, so an
/// untouched module costs nothing.
#[derive(Debug, Default)]
struct BankSlab {
    /// `row -> slot + 1` (0 = untracked); allocated on the bank's first
    /// disturbance, sized `rows_per_bank`.
    index: Vec<u32>,
    /// Live row states of this bank, in insertion order.
    slots: Vec<RowState>,
    /// `slot -> row` (parallel to `slots`), for bank-wide sweeps.
    rows: Vec<u32>,
}

impl BankSlab {
    /// The state slot for `row`, if tracked.
    fn get(&self, row: u32) -> Option<&RowState> {
        let e = *self.index.get(row as usize)?;
        (e != 0).then(|| &self.slots[(e - 1) as usize])
    }

    /// Mutable variant of [`get`](Self::get).
    fn get_mut(&mut self, row: u32) -> Option<&mut RowState> {
        let e = *self.index.get(row as usize)?;
        (e != 0).then(|| &mut self.slots[(e - 1) as usize])
    }
}

/// Tracks per-row disturbance and produces [`BitFlip`]s.
///
/// Owned by the DRAM module; not meant to be driven directly except in
/// tests. Refreshes are accounted lazily: each time a victim row is
/// touched, any auto-refresh that occurred since its last update resets its
/// counters first.
#[derive(Debug)]
pub struct DisturbanceTracker {
    config: DisturbanceConfig,
    row_bytes: u32,
    rows_per_bank: u32,
    banks: Vec<BankSlab>,
    flips: Vec<BitFlip>,
    total_flips: u64,
}

impl DisturbanceTracker {
    /// Creates a tracker.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`DisturbanceConfig::validate`].
    pub fn new(config: DisturbanceConfig, row_bytes: u32, rows_per_bank: u32) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid disturbance config: {e}"));
        DisturbanceTracker {
            config,
            row_bytes,
            rows_per_bank,
            banks: Vec::new(),
            flips: Vec::new(),
            total_flips: 0,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &DisturbanceConfig {
        &self.config
    }

    /// Records an activation of `row` at `now`, disturbing both adjacent
    /// rows and restoring the activated row's own charge. Newly flipped
    /// bits are appended to the flip log (see [`drain_flips`]).
    ///
    /// [`drain_flips`]: Self::drain_flips
    pub fn on_activation(&mut self, row: RowId, now: Cycle, schedule: &RefreshSchedule) {
        // Opening a row restores its charge: reset its own victim state.
        self.reset_row(row, now);
        if row.row > 0 {
            self.disturb(
                RowId::new(row.bank, row.row - 1),
                Some(Side::Above),
                now,
                schedule,
            );
        }
        if row.row + 1 < self.rows_per_bank {
            self.disturb(
                RowId::new(row.bank, row.row + 1),
                Some(Side::Below),
                now,
                schedule,
            );
        }
        if self.config.neighbor_reach >= 2 {
            if row.row > 1 {
                self.disturb(RowId::new(row.bank, row.row - 2), None, now, schedule);
            }
            if row.row + 2 < self.rows_per_bank {
                self.disturb(RowId::new(row.bank, row.row + 2), None, now, schedule);
            }
        }
    }

    /// Records `n` identical activations of `row` at `now` in closed
    /// form: one dense pass over the (at most four) victim slots instead
    /// of `n` full [`on_activation`](Self::on_activation) walks.
    ///
    /// Observationally identical to calling `on_activation(row, now,
    /// schedule)` `n` times back to back — including the flip log's
    /// order, which replays each flip at the activation index that
    /// crossed its cell's threshold — **provided no other aggressor,
    /// refresh, or repair touches these rows inside the epoch** (the
    /// event-driven engine's closed-form condition; an epoch boundary is
    /// forced at any such site). Counters accumulate on the same
    /// [`BankSlab`] arena slots the per-op path uses.
    pub fn activate_epoch(&mut self, row: RowId, n: u64, now: Cycle, schedule: &RefreshSchedule) {
        if n == 0 {
            return;
        }
        // Opening the row restores its own charge, idempotently per
        // activation: once is enough.
        self.reset_row(row, now);
        // (crossing activation index, flip) pairs, collected per victim
        // in the per-activation disturb order; the stable sort below
        // restores the exact per-op interleaving across victims.
        let mut pending: Vec<(u64, BitFlip)> = Vec::new();
        if row.row > 0 {
            self.disturb_epoch(
                RowId::new(row.bank, row.row - 1),
                Some(Side::Above),
                n,
                now,
                schedule,
                &mut pending,
            );
        }
        if row.row + 1 < self.rows_per_bank {
            self.disturb_epoch(
                RowId::new(row.bank, row.row + 1),
                Some(Side::Below),
                n,
                now,
                schedule,
                &mut pending,
            );
        }
        if self.config.neighbor_reach >= 2 {
            if row.row > 1 {
                self.disturb_epoch(
                    RowId::new(row.bank, row.row - 2),
                    None,
                    n,
                    now,
                    schedule,
                    &mut pending,
                );
            }
            if row.row + 2 < self.rows_per_bank {
                self.disturb_epoch(
                    RowId::new(row.bank, row.row + 2),
                    None,
                    n,
                    now,
                    schedule,
                    &mut pending,
                );
            }
        }
        // Stable by crossing index: within one activation the per-op
        // path visits victims (then cells) in exactly the order pending
        // was filled.
        pending.sort_by_key(|(k, _)| *k);
        for (_, flip) in pending {
            self.total_flips += 1;
            self.flips.push(flip);
        }
    }

    /// Explicitly refreshes `row` (a selective-refresh read, a TRR/PARA
    /// neighbor refresh, or a scrub), resetting its disturbance counters.
    pub fn reset_row(&mut self, row: RowId, now: Cycle) {
        if let Some(s) = self
            .banks
            .get_mut(row.bank.0 as usize)
            .and_then(|slab| slab.get_mut(row.row))
        {
            s.c_hi = 0;
            s.c_lo = 0;
            s.c_far = 0;
            s.last_reset = now;
        }
    }

    /// Refreshes every disturbed row of `bank` at once (ANVIL's
    /// degraded-mode blanket refresh). Rows with no tracked state carry
    /// zero disturbance, so resetting only tracked rows is complete.
    /// Returns the number of rows whose counters were cleared.
    pub fn reset_bank(&mut self, bank: BankId, now: Cycle) -> usize {
        let Some(slab) = self.banks.get_mut(bank.0 as usize) else {
            return 0;
        };
        let mut reset = 0;
        for s in &mut slab.slots {
            if s.c_hi > 0 || s.c_lo > 0 || s.c_far > 0 {
                s.c_hi = 0;
                s.c_lo = 0;
                s.c_far = 0;
                s.last_reset = now;
                reset += 1;
            }
        }
        reset
    }

    /// Repairs a flipped cell (software rewrote the byte). Returns whether
    /// a flipped cell existed at that position.
    pub fn repair(&mut self, row: RowId, col: u32, bit: u8) -> bool {
        if let Some(cells) = self
            .banks
            .get_mut(row.bank.0 as usize)
            .and_then(|slab| slab.get_mut(row.row))
            .and_then(|s| s.cells.as_mut())
        {
            for c in cells.iter_mut() {
                if c.col == col && c.bit == bit && c.flipped {
                    c.flipped = false;
                    return true;
                }
            }
        }
        false
    }

    /// Accumulated effective disturbance of `row` (diagnostic).
    pub fn disturbance_of(&self, row: RowId) -> u64 {
        self.banks
            .get(row.bank.0 as usize)
            .and_then(|slab| slab.get(row.row))
            .map_or(0, |s| {
                effective(
                    s,
                    self.config.coupling_boost(),
                    self.config.distance2_coupling,
                )
            })
    }

    /// Drains bit flips recorded since the last call.
    pub fn drain_flips(&mut self) -> Vec<BitFlip> {
        std::mem::take(&mut self.flips)
    }

    /// Total flips ever produced.
    pub fn total_flips(&self) -> u64 {
        self.total_flips
    }

    /// Number of rows currently carrying disturbance state (diagnostic).
    pub fn tracked_rows(&self) -> usize {
        self.banks.iter().map(|slab| slab.slots.len()).sum()
    }

    /// Drops rows whose disturbance cannot flip anything and whose cells
    /// are pristine, bounding memory on long runs.
    pub fn compact(&mut self) {
        for slab in &mut self.banks {
            if slab.slots.is_empty() {
                continue;
            }
            let slots = std::mem::take(&mut slab.slots);
            let rows = std::mem::take(&mut slab.rows);
            for (s, row) in slots.into_iter().zip(rows) {
                // c_far counts too: on a reach-2 device a row disturbed
                // only at distance 2 still carries real charge loss.
                let keep = s.c_hi > 0
                    || s.c_lo > 0
                    || s.c_far > 0
                    || s.cells
                        .as_ref()
                        .is_some_and(|cells| cells.iter().any(|c| c.flipped));
                if keep {
                    slab.slots.push(s);
                    slab.rows.push(row);
                    slab.index[row as usize] = slab.slots.len() as u32;
                } else {
                    slab.index[row as usize] = 0;
                }
            }
        }
    }

    fn disturb(
        &mut self,
        victim: RowId,
        side: Option<Side>,
        now: Cycle,
        schedule: &RefreshSchedule,
    ) {
        let boost = self.config.coupling_boost();
        let far_coupling = self.config.distance2_coupling;
        let bank = victim.bank.0 as usize;
        if bank >= self.banks.len() {
            self.banks.resize_with(bank + 1, BankSlab::default);
        }
        let slab = &mut self.banks[bank];
        if slab.index.is_empty() {
            slab.index = vec![0; self.rows_per_bank as usize];
        }
        let entry = &mut slab.index[victim.row as usize];
        let slot = if *entry == 0 {
            slab.slots.push(RowState {
                c_hi: 0,
                c_lo: 0,
                c_far: 0,
                last_reset: 0,
                min_threshold: min_threshold_for(&self.config, victim),
                cells: None,
            });
            slab.rows.push(victim.row);
            *entry = slab.slots.len() as u32;
            slab.slots.len() - 1
        } else {
            (*entry - 1) as usize
        };
        let state = &mut slab.slots[slot];

        // Lazy auto-refresh: if the schedule refreshed this row since we
        // last updated it, the charge was restored then.
        if let Some(last) = schedule.last_refresh(victim.row, now) {
            if last > state.last_reset {
                state.c_hi = 0;
                state.c_lo = 0;
                state.c_far = 0;
                state.last_reset = last;
            }
        }

        match side {
            Some(Side::Above) => state.c_hi += 1,
            Some(Side::Below) => state.c_lo += 1,
            None => state.c_far += 1,
        }

        let d = effective(state, boost, far_coupling);
        if d < state.min_threshold {
            return;
        }
        // Materialize the weak cells and flip every cell whose threshold
        // has been crossed.
        if state.cells.is_none() {
            state.cells = Some(sample_cells(&self.config, victim, self.row_bytes));
        }
        let cells = state.cells.as_mut().expect("just materialized");
        for cell in cells.iter_mut() {
            if !cell.flipped && d >= cell.threshold {
                cell.flipped = true;
                self.total_flips += 1;
                self.flips.push(BitFlip {
                    row: victim,
                    col: cell.col,
                    bit: cell.bit,
                    cycle: now,
                });
            }
        }
    }

    /// The closed-form counterpart of [`disturb`](Self::disturb): applies
    /// `n` same-side disturbances at once. Instead of pushing flips
    /// directly it records `(k, flip)` pairs in `pending`, where `k` is
    /// the 1-based activation index whose increment first crossed the
    /// cell's threshold — found by binary search on the monotone
    /// effective-disturbance curve — so the caller can interleave flips
    /// from all victims in exact per-op order.
    fn disturb_epoch(
        &mut self,
        victim: RowId,
        side: Option<Side>,
        n: u64,
        now: Cycle,
        schedule: &RefreshSchedule,
        pending: &mut Vec<(u64, BitFlip)>,
    ) {
        let boost = self.config.coupling_boost();
        let far_coupling = self.config.distance2_coupling;
        let bank = victim.bank.0 as usize;
        if bank >= self.banks.len() {
            self.banks.resize_with(bank + 1, BankSlab::default);
        }
        let slab = &mut self.banks[bank];
        if slab.index.is_empty() {
            slab.index = vec![0; self.rows_per_bank as usize];
        }
        let entry = &mut slab.index[victim.row as usize];
        let slot = if *entry == 0 {
            slab.slots.push(RowState {
                c_hi: 0,
                c_lo: 0,
                c_far: 0,
                last_reset: 0,
                min_threshold: min_threshold_for(&self.config, victim),
                cells: None,
            });
            slab.rows.push(victim.row);
            *entry = slab.slots.len() as u32;
            slab.slots.len() - 1
        } else {
            (*entry - 1) as usize
        };
        let state = &mut slab.slots[slot];

        // Lazy auto-refresh, once up front: the per-op path re-checks on
        // every activation, but all `n` share the same `now`, so after the
        // first check `last > state.last_reset` can never hold again.
        if let Some(last) = schedule.last_refresh(victim.row, now) {
            if last > state.last_reset {
                state.c_hi = 0;
                state.c_lo = 0;
                state.c_far = 0;
                state.last_reset = last;
            }
        }

        let (h0, l0, f0) = (state.c_hi, state.c_lo, state.c_far);
        match side {
            Some(Side::Above) => state.c_hi += n,
            Some(Side::Below) => state.c_lo += n,
            None => state.c_far += n,
        }

        // Effective disturbance as the per-op path would see it after the
        // k-th activation of this epoch; monotone nondecreasing in k.
        let eff_at = |k: u64| match side {
            Some(Side::Above) => effective_counts(h0 + k, l0, f0, boost, far_coupling),
            Some(Side::Below) => effective_counts(h0, l0 + k, f0, boost, far_coupling),
            None => effective_counts(h0, l0, f0 + k, boost, far_coupling),
        };
        let d_final = eff_at(n);
        if d_final < state.min_threshold {
            return;
        }
        // The per-op path materializes cells at the first activation that
        // reaches `min_threshold`; monotonicity makes "materialized by the
        // end of the epoch" the same condition.
        if state.cells.is_none() {
            state.cells = Some(sample_cells(&self.config, victim, self.row_bytes));
        }
        let cells = state.cells.as_mut().expect("just materialized");
        for cell in cells.iter_mut() {
            if !cell.flipped && d_final >= cell.threshold {
                cell.flipped = true;
                // Smallest k in 1..=n with eff_at(k) >= threshold.
                let (mut lo, mut hi) = (1u64, n);
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    if eff_at(mid) >= cell.threshold {
                        hi = mid;
                    } else {
                        lo = mid + 1;
                    }
                }
                pending.push((
                    lo,
                    BitFlip {
                        row: victim,
                        col: cell.col,
                        bit: cell.bit,
                        cycle: now,
                    },
                ));
            }
        }
    }
}

fn effective(s: &RowState, boost: f64, far_coupling: f64) -> u64 {
    effective_counts(s.c_hi, s.c_lo, s.c_far, boost, far_coupling)
}

/// The effective-disturbance formula on raw counter values. Split out of
/// [`effective`] so the epoch path's "what would the counters read after
/// `k` activations" probe uses bit-identical arithmetic (same `f64`
/// truncations) as the per-op path.
fn effective_counts(c_hi: u64, c_lo: u64, c_far: u64, boost: f64, far_coupling: f64) -> u64 {
    let min = c_hi.min(c_lo);
    c_hi + c_lo + (2.0 * boost * min as f64) as u64 + (far_coupling * c_far as f64) as u64
}

/// splitmix64: cheap, well-distributed stateless hash.
fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn row_hash(config: &DisturbanceConfig, row: RowId) -> u64 {
    hash64(config.seed ^ ((row.bank.0 as u64) << 40) ^ row.row as u64)
}

fn row_is_vulnerable(config: &DisturbanceConfig, row: RowId) -> bool {
    row_hash(config, row).is_multiple_of(config.vulnerable_row_period as u64)
}

fn min_threshold_for(config: &DisturbanceConfig, row: RowId) -> u64 {
    let h = row_hash(config, row);
    if row_is_vulnerable(config, row) {
        config.single_sided_threshold
    } else {
        // Uniform in (1, 1 + spread] times the base threshold.
        let frac = ((h >> 16) % 10_000) as f64 / 10_000.0;
        let factor = 1.0 + (0.05 + frac * config.threshold_spread).max(0.05);
        (config.single_sided_threshold as f64 * factor) as u64
    }
}

fn sample_cells(config: &DisturbanceConfig, row: RowId, row_bytes: u32) -> Vec<WeakCell> {
    let base = min_threshold_for(config, row);
    let h = row_hash(config, row);
    let n = 1 + (hash64(h ^ 1) % (2 * config.weak_cells_per_row as u64 - 1)) as u32;
    let mut cells: Vec<WeakCell> = (0..n)
        .map(|i| {
            let hc = hash64(h ^ (0x100 + i as u64));
            let extra = if i == 0 {
                0
            } else {
                // Subsequent cells are progressively harder to flip.
                (base as f64 * 0.08 * i as f64 * (1.0 + (hc % 97) as f64 / 97.0)) as u64
            };
            WeakCell {
                col: (hc >> 8) as u32 % row_bytes,
                bit: (hc % 8) as u8,
                threshold: base + extra,
                flipped: false,
            }
        })
        .collect();
    // Weak cells cluster physically: with some probability a later cell
    // shares the first cell's 64-bit word. This models Kim et al.'s
    // observation — cited by the paper against ECC scrubbing as a defense
    // (Section 1.2) — that hammering produces "multiple bit-flips per
    // word", which SECDED ECC cannot correct.
    for i in 1..cells.len() {
        let hc = hash64(h ^ (0x900 + i as u64));
        if hc.is_multiple_of(4) {
            let anchor_word = cells[0].col & !7;
            cells[i].col = anchor_word + ((hc >> 8) % 8) as u32;
            cells[i].bit = ((hc >> 16) % 8) as u8;
            // Avoid duplicating an existing (col, bit).
            if cells[..i]
                .iter()
                .any(|c| c.col == cells[i].col && c.bit == cells[i].bit)
            {
                cells[i].bit = (cells[i].bit + 1) % 8;
            }
        }
    }
    cells
}

/// Returns whether `row` contains a most-vulnerable cell (threshold exactly
/// at the configured minimum). Exposed so attacks and tests can pick victim
/// rows the way a real attacker scans memory for flippable cells.
pub fn is_vulnerable_row(config: &DisturbanceConfig, row: RowId) -> bool {
    row_is_vulnerable(config, row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::BankId;
    use crate::timing::DramTiming;

    fn harness() -> (DisturbanceTracker, RefreshSchedule) {
        let timing = DramTiming::default();
        let tracker = DisturbanceTracker::new(DisturbanceConfig::paper_ddr3(), 8192, 32_768);
        let sched = RefreshSchedule::new(&timing, 32_768);
        (tracker, sched)
    }

    fn vulnerable_victim(config: &DisturbanceConfig) -> RowId {
        (2..32_000)
            .map(|r| RowId::new(BankId(0), r))
            .find(|r| is_vulnerable_row(config, *r))
            .expect("some vulnerable row exists")
    }

    #[test]
    fn single_sided_flips_at_exactly_the_threshold() {
        let (mut t, s) = harness();
        let victim = vulnerable_victim(t.config());
        let aggressor = RowId::new(victim.bank, victim.row + 1);
        // Hammer within one refresh window, well away from the victim's
        // refresh phase.
        let start = s.last_refresh(victim.row, s.period() * 2).unwrap() + 1;
        let threshold = t.config().single_sided_threshold;
        for i in 0..threshold {
            t.on_activation(aggressor, start + i, &s);
        }
        let flips = t.drain_flips();
        assert!(!flips.is_empty(), "expected a flip at the threshold");
        assert_eq!(flips[0].row, victim);
        // The flip happened exactly at the last activation, not before.
        assert_eq!(flips[0].cycle, start + threshold - 1);
    }

    #[test]
    fn double_sided_flips_at_the_lower_threshold() {
        let (mut t, s) = harness();
        let victim = vulnerable_victim(t.config());
        let above = RowId::new(victim.bank, victim.row + 1);
        let below = RowId::new(victim.bank, victim.row - 1);
        let start = s.last_refresh(victim.row, s.period() * 2).unwrap() + 1;
        let total = t.config().double_sided_threshold;
        for i in 0..total {
            let agg = if i % 2 == 0 { above } else { below };
            t.on_activation(agg, start + i, &s);
        }
        let flips = t.drain_flips();
        assert!(!flips.is_empty(), "double-sided must flip at 220K");
        // Allow the integer rounding of the boost one access of slack.
        assert!(flips[0].cycle <= start + total);
    }

    #[test]
    fn double_sided_does_not_flip_below_threshold() {
        let (mut t, s) = harness();
        let victim = vulnerable_victim(t.config());
        let above = RowId::new(victim.bank, victim.row + 1);
        let below = RowId::new(victim.bank, victim.row - 1);
        let start = s.last_refresh(victim.row, s.period() * 2).unwrap() + 1;
        for i in 0..(t.config().double_sided_threshold - 16) {
            let agg = if i % 2 == 0 { above } else { below };
            t.on_activation(agg, start + i, &s);
        }
        assert!(t.drain_flips().is_empty());
    }

    #[test]
    fn auto_refresh_resets_disturbance() {
        let (mut t, s) = harness();
        let victim = vulnerable_victim(t.config());
        let aggressor = RowId::new(victim.bank, victim.row + 1);
        // Hammer half the threshold before the victim's refresh, half after:
        // no flip, because the refresh resets the counter.
        let refresh_at = s.next_refresh(victim.row, s.period());
        let half = t.config().single_sided_threshold / 2 + 8;
        for i in 0..half {
            t.on_activation(aggressor, refresh_at - half + i, &s);
        }
        for i in 0..half {
            t.on_activation(aggressor, refresh_at + 1 + i, &s);
        }
        assert!(
            t.drain_flips().is_empty(),
            "refresh between the halves must prevent the flip"
        );
        assert!(t.disturbance_of(victim) <= half + 1);
    }

    #[test]
    fn victim_activation_restores_its_own_charge() {
        let (mut t, s) = harness();
        let victim = vulnerable_victim(t.config());
        let aggressor = RowId::new(victim.bank, victim.row + 1);
        let start = s.last_refresh(victim.row, s.period() * 2).unwrap() + 1;
        let half = t.config().single_sided_threshold / 2 + 8;
        for i in 0..half {
            t.on_activation(aggressor, start + i, &s);
        }
        // ANVIL's selective refresh: reading (activating) the victim.
        t.on_activation(victim, start + half, &s);
        for i in 0..half {
            t.on_activation(aggressor, start + half + 1 + i, &s);
        }
        assert!(t.drain_flips().is_empty());
    }

    #[test]
    fn explicit_reset_row_protects() {
        let (mut t, s) = harness();
        let victim = vulnerable_victim(t.config());
        let aggressor = RowId::new(victim.bank, victim.row + 1);
        let start = s.last_refresh(victim.row, s.period() * 2).unwrap() + 1;
        let half = t.config().single_sided_threshold / 2 + 8;
        for i in 0..half {
            t.on_activation(aggressor, start + i, &s);
        }
        t.reset_row(victim, start + half);
        for i in 0..half {
            t.on_activation(aggressor, start + half + 1 + i, &s);
        }
        assert!(t.drain_flips().is_empty());
    }

    #[test]
    fn flips_are_permanent_until_repaired() {
        let (mut t, s) = harness();
        let victim = vulnerable_victim(t.config());
        let aggressor = RowId::new(victim.bank, victim.row + 1);
        let start = s.last_refresh(victim.row, s.period() * 2).unwrap() + 1;
        for i in 0..t.config().single_sided_threshold {
            t.on_activation(aggressor, start + i, &s);
        }
        let flips = t.drain_flips();
        assert!(!flips.is_empty());
        let f = flips[0];
        // A refresh does not heal the flip, and the same cell does not
        // flip twice.
        t.reset_row(victim, start + 500_000);
        assert!(t.drain_flips().is_empty());
        // Repair (software rewrite) clears it.
        assert!(t.repair(f.row, f.col, f.bit));
        assert!(!t.repair(f.row, f.col, f.bit), "already repaired");
    }

    #[test]
    fn non_vulnerable_rows_need_more_activations() {
        let config = DisturbanceConfig::paper_ddr3();
        let hard = (2..32_000)
            .map(|r| RowId::new(BankId(1), r))
            .find(|r| !is_vulnerable_row(&config, *r))
            .unwrap();
        let (mut t, s) = harness();
        let aggressor = RowId::new(hard.bank, hard.row + 1);
        let start = s.last_refresh(hard.row, s.period() * 2).unwrap() + 1;
        for i in 0..config.single_sided_threshold {
            t.on_activation(aggressor, start + i, &s);
        }
        assert!(
            t.drain_flips().is_empty(),
            "non-vulnerable row must not flip at the minimum threshold"
        );
    }

    #[test]
    fn vulnerable_rows_exist_at_expected_density() {
        let config = DisturbanceConfig::paper_ddr3();
        let n = (0..10_000)
            .filter(|&r| is_vulnerable_row(&config, RowId::new(BankId(0), r)))
            .count();
        // 1-in-4 nominal; allow generous sampling slack.
        assert!((1_800..=3_200).contains(&n), "density off: {n}/10000");
    }

    #[test]
    fn compact_retains_flipped_and_dirty_rows() {
        let (mut t, s) = harness();
        let victim = vulnerable_victim(t.config());
        let aggressor = RowId::new(victim.bank, victim.row + 1);
        t.on_activation(aggressor, 1, &s);
        assert!(t.tracked_rows() > 0);
        t.reset_row(victim, 2);
        let before = t.tracked_rows();
        t.compact();
        assert!(t.tracked_rows() < before);
    }

    #[test]
    fn config_validation() {
        let mut c = DisturbanceConfig::paper_ddr3();
        c.validate().unwrap();
        c.double_sided_threshold = c.single_sided_threshold + 1;
        assert!(c.validate().is_err());
        let mut c2 = DisturbanceConfig::paper_ddr3();
        c2.vulnerable_row_period = 0;
        assert!(c2.validate().is_err());
    }

    #[test]
    fn coupling_boost_matches_table1_ratio() {
        let c = DisturbanceConfig::paper_ddr3();
        assert!((c.coupling_boost() - (400.0 / 220.0 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn future_config_halves_thresholds() {
        let f = DisturbanceConfig::future_half_threshold();
        assert_eq!(f.single_sided_threshold, 200_000);
        assert_eq!(f.double_sided_threshold, 110_000);
        f.validate().unwrap();
    }
}

#[cfg(test)]
mod arena_equivalence {
    //! The dense per-bank arena ([`BankSlab`]) replaced a
    //! `HashMap<RowId, RowState>` on the activation hot path. This module
    //! keeps the old storage alive as a reference model and proves the
    //! two observationally identical under arbitrary interleavings of
    //! activations, row/bank resets, compactions, and time jumps.

    use super::*;
    use crate::geometry::BankId;
    use crate::timing::DramTiming;
    use proptest::prelude::*;
    use std::collections::HashMap;

    const BANKS: u32 = 3;
    const ROWS: u32 = 64;

    /// Thresholds small enough that random short sequences actually flip.
    fn tiny_config(reach: u32) -> DisturbanceConfig {
        let mut c = DisturbanceConfig::paper_ddr3();
        c.single_sided_threshold = 40;
        c.double_sided_threshold = 22;
        c.neighbor_reach = reach;
        if reach == 2 {
            c.distance2_coupling = 0.6;
        }
        c
    }

    /// The pre-arena reference: identical physics over the `HashMap`
    /// storage the dense arena replaced.
    struct HashMapModel {
        config: DisturbanceConfig,
        row_bytes: u32,
        rows_per_bank: u32,
        rows: HashMap<RowId, RowState>,
        flips: Vec<BitFlip>,
        total_flips: u64,
    }

    impl HashMapModel {
        fn new(config: DisturbanceConfig, row_bytes: u32, rows_per_bank: u32) -> Self {
            HashMapModel {
                config,
                row_bytes,
                rows_per_bank,
                rows: HashMap::new(),
                flips: Vec::new(),
                total_flips: 0,
            }
        }

        fn on_activation(&mut self, row: RowId, now: Cycle, schedule: &RefreshSchedule) {
            self.reset_row(row, now);
            if row.row > 0 {
                self.disturb(
                    RowId::new(row.bank, row.row - 1),
                    Some(Side::Above),
                    now,
                    schedule,
                );
            }
            if row.row + 1 < self.rows_per_bank {
                self.disturb(
                    RowId::new(row.bank, row.row + 1),
                    Some(Side::Below),
                    now,
                    schedule,
                );
            }
            if self.config.neighbor_reach >= 2 {
                if row.row > 1 {
                    self.disturb(RowId::new(row.bank, row.row - 2), None, now, schedule);
                }
                if row.row + 2 < self.rows_per_bank {
                    self.disturb(RowId::new(row.bank, row.row + 2), None, now, schedule);
                }
            }
        }

        fn reset_row(&mut self, row: RowId, now: Cycle) {
            if let Some(s) = self.rows.get_mut(&row) {
                s.c_hi = 0;
                s.c_lo = 0;
                s.c_far = 0;
                s.last_reset = now;
            }
        }

        fn reset_bank(&mut self, bank: BankId, now: Cycle) -> usize {
            let mut reset = 0;
            for (row, s) in &mut self.rows {
                if row.bank == bank && (s.c_hi > 0 || s.c_lo > 0 || s.c_far > 0) {
                    s.c_hi = 0;
                    s.c_lo = 0;
                    s.c_far = 0;
                    s.last_reset = now;
                    reset += 1;
                }
            }
            reset
        }

        fn disturbance_of(&self, row: RowId) -> u64 {
            self.rows.get(&row).map_or(0, |s| {
                effective(
                    s,
                    self.config.coupling_boost(),
                    self.config.distance2_coupling,
                )
            })
        }

        fn drain_flips(&mut self) -> Vec<BitFlip> {
            std::mem::take(&mut self.flips)
        }

        fn disturb(
            &mut self,
            victim: RowId,
            side: Option<Side>,
            now: Cycle,
            schedule: &RefreshSchedule,
        ) {
            let boost = self.config.coupling_boost();
            let far_coupling = self.config.distance2_coupling;
            let config = self.config;
            let row_bytes = self.row_bytes;
            let state = self.rows.entry(victim).or_insert_with(|| RowState {
                c_hi: 0,
                c_lo: 0,
                c_far: 0,
                last_reset: 0,
                min_threshold: min_threshold_for(&config, victim),
                cells: None,
            });
            if let Some(last) = schedule.last_refresh(victim.row, now) {
                if last > state.last_reset {
                    state.c_hi = 0;
                    state.c_lo = 0;
                    state.c_far = 0;
                    state.last_reset = last;
                }
            }
            match side {
                Some(Side::Above) => state.c_hi += 1,
                Some(Side::Below) => state.c_lo += 1,
                None => state.c_far += 1,
            }
            let d = effective(state, boost, far_coupling);
            if d < state.min_threshold {
                return;
            }
            if state.cells.is_none() {
                state.cells = Some(sample_cells(&config, victim, row_bytes));
            }
            let cells = state.cells.as_mut().expect("just materialized");
            let mut new_flips = Vec::new();
            for cell in cells.iter_mut() {
                if !cell.flipped && d >= cell.threshold {
                    cell.flipped = true;
                    new_flips.push(BitFlip {
                        row: victim,
                        col: cell.col,
                        bit: cell.bit,
                        cycle: now,
                    });
                }
            }
            self.total_flips += new_flips.len() as u64;
            self.flips.append(&mut new_flips);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The dense arena and the `HashMap` reference agree on every
        /// observable — per-row disturbance, the flip log (contents *and*
        /// order), running totals, and bank-reset counts — for arbitrary
        /// op sequences; `compact()` (arena-only) must be invisible.
        ///
        /// Each op is a `(tag, bank, row, jump)` tuple (the vendored
        /// proptest has no `prop_oneof`): tags 0-9 activate (hammering
        /// dominates the mix), 10 resets a row, 11 resets a bank, 12
        /// compacts the arena, 13 jumps time (crossing auto-refreshes).
        #[test]
        fn dense_arena_matches_hashmap_reference(
            ops in prop::collection::vec(
                (0u32..14, 0..BANKS, 0..ROWS, 1u64..5_000_000),
                1..400,
            ),
            reach in 1u32..=2,
        ) {
            let config = tiny_config(reach);
            let timing = DramTiming::default();
            let sched = RefreshSchedule::new(&timing, ROWS);
            let mut arena = DisturbanceTracker::new(config, 256, ROWS);
            let mut reference = HashMapModel::new(config, 256, ROWS);
            let mut now: Cycle = 1;
            for &(tag, b, r, d) in &ops {
                let row = RowId::new(BankId(b), r);
                match tag {
                    0..=9 => {
                        now += 1;
                        arena.on_activation(row, now, &sched);
                        reference.on_activation(row, now, &sched);
                    }
                    10 => {
                        arena.reset_row(row, now);
                        reference.reset_row(row, now);
                    }
                    11 => {
                        prop_assert_eq!(
                            arena.reset_bank(BankId(b), now),
                            reference.reset_bank(BankId(b), now),
                            "bank-reset count diverged"
                        );
                    }
                    12 => arena.compact(),
                    _ => now += d,
                }
            }
            for b in 0..BANKS {
                for r in 0..ROWS {
                    let row = RowId::new(BankId(b), r);
                    prop_assert_eq!(
                        arena.disturbance_of(row),
                        reference.disturbance_of(row),
                        "disturbance diverged at bank {} row {}", b, r
                    );
                }
            }
            prop_assert_eq!(arena.drain_flips(), reference.drain_flips());
            prop_assert_eq!(arena.total_flips(), reference.total_flips);
        }
    }
}

#[cfg(test)]
mod distance2_tests {
    use super::*;
    use crate::geometry::BankId;
    use crate::timing::DramTiming;

    fn harness(config: DisturbanceConfig) -> (DisturbanceTracker, RefreshSchedule) {
        let timing = DramTiming::default();
        (
            DisturbanceTracker::new(config, 8192, 32_768),
            RefreshSchedule::new(&timing, 32_768),
        )
    }

    fn vulnerable(config: &DisturbanceConfig, bank: u32) -> RowId {
        (4..30_000)
            .map(|r| RowId::new(BankId(bank), r))
            .find(|r| is_vulnerable_row(config, *r))
            .unwrap()
    }

    #[test]
    fn distance2_disturbance_accumulates_attenuated() {
        let config = DisturbanceConfig::future_distance2();
        let (mut t, s) = harness(config);
        let victim = vulnerable(&config, 0);
        // Aggressor two rows away: only the far counter moves.
        let aggressor = RowId::new(victim.bank, victim.row + 2);
        let start = s.last_refresh(victim.row, s.period() * 2).unwrap() + 1;
        for i in 0..1_000 {
            t.on_activation(aggressor, start + i, &s);
        }
        let d = t.disturbance_of(victim);
        assert_eq!(d, (1_000.0 * config.distance2_coupling) as u64);
    }

    #[test]
    fn reach1_module_ignores_distance2() {
        let config = DisturbanceConfig::paper_ddr3();
        let (mut t, s) = harness(config);
        let victim = vulnerable(&config, 1);
        let aggressor = RowId::new(victim.bank, victim.row + 2);
        let start = s.last_refresh(victim.row, s.period() * 2).unwrap() + 1;
        for i in 0..10_000 {
            t.on_activation(aggressor, start + i, &s);
        }
        assert_eq!(t.disturbance_of(victim), 0);
    }

    #[test]
    fn distance2_flips_eventually_on_future_device() {
        // Double-sided hammering at +/-1 of row r also disturbs r+2/r-2 at
        // quarter strength; with halved thresholds those flip too if left
        // unrefreshed long enough. Hammer hard and check a +/-2 victim of
        // a vulnerable row accumulates real charge loss.
        let config = DisturbanceConfig::future_distance2();
        let (mut t, s) = harness(config);
        let victim = vulnerable(&config, 2);
        let near = RowId::new(victim.bank, victim.row + 1);
        let start = s.last_refresh(victim.row, s.period() * 2).unwrap() + 1;
        // `near`'s activation disturbs `victim` at distance 1... use an
        // aggressor at distance 2 only: victim.row + 2.
        let far = RowId::new(victim.bank, victim.row + 2);
        let needed = (config.single_sided_threshold as f64 / config.distance2_coupling) as u64;
        for i in 0..needed + 8 {
            t.on_activation(far, start + i, &s);
        }
        let flips = t.drain_flips();
        assert!(
            flips.iter().any(|f| f.row == victim),
            "distance-2 hammering must flip on the dense device"
        );
        let _ = near;
    }

    #[test]
    fn validation_rejects_bad_reach() {
        let mut c = DisturbanceConfig::paper_ddr3();
        c.neighbor_reach = 3;
        assert!(c.validate().is_err());
        c.neighbor_reach = 0;
        assert!(c.validate().is_err());
        let mut c2 = DisturbanceConfig::paper_ddr3();
        c2.distance2_coupling = 1.0;
        assert!(c2.validate().is_err());
    }
}
