//! Physical-address to DRAM-location mapping.
//!
//! Real memory controllers map physical addresses onto
//! (channel, rank, bank, row, column) with undocumented bit shuffles; the
//! paper's attack reverse-engineers enough of the Sandy Bridge mapping to
//! find same-bank adjacent rows, and ANVIL is "pre-configured using a
//! reverse engineered physical address to DRAM row and bank mapping scheme"
//! (Section 3.3). This module implements the mapping used throughout the
//! simulation, plus an optional rank/bank XOR permutation that mimics the
//! bank-interleaving found on real parts.

use crate::geometry::{BankId, DramGeometry, DramLocation};
use serde::{Deserialize, Serialize};

/// Maps physical addresses to DRAM locations and back.
///
/// Bit layout (low to high): column bits, bank bits, rank bits, channel
/// bits, row bits. With [`BankPermutation::XorRowLow`] the bank index is
/// XOR-ed with the low row bits, as on Intel controllers, so that
/// consecutive rows of one bank are not contiguous in physical memory.
///
/// # Examples
///
/// ```
/// use anvil_dram::{AddressMapping, DramGeometry};
///
/// let map = AddressMapping::new(DramGeometry::ddr3_4gb());
/// let loc = map.location_of(0x1234_5678);
/// let pa = map.address_of(loc);
/// assert_eq!(map.location_of(pa), loc);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMapping {
    geometry: DramGeometry,
    permutation: BankPermutation,
    col_bits: u32,
    bank_bits: u32,
    rank_bits: u32,
    channel_bits: u32,
    row_bits: u32,
}

/// How the bank index is permuted by row bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum BankPermutation {
    /// Bank index taken directly from the address bits.
    #[default]
    Identity,
    /// Bank index XOR-ed with the low bits of the row index, as on Intel
    /// Sandy Bridge-era controllers.
    XorRowLow,
}

impl AddressMapping {
    /// Creates the mapping for `geometry` with the default (Intel-style
    /// XOR) bank permutation.
    ///
    /// # Panics
    ///
    /// Panics if the geometry fails [`DramGeometry::validate`].
    pub fn new(geometry: DramGeometry) -> Self {
        Self::with_permutation(geometry, BankPermutation::XorRowLow)
    }

    /// Creates the mapping with an explicit bank permutation.
    ///
    /// # Panics
    ///
    /// Panics if the geometry fails [`DramGeometry::validate`].
    pub fn with_permutation(geometry: DramGeometry, permutation: BankPermutation) -> Self {
        geometry
            .validate()
            .unwrap_or_else(|e| panic!("invalid DRAM geometry: {e}"));
        AddressMapping {
            geometry,
            permutation,
            col_bits: geometry.row_bytes.trailing_zeros(),
            bank_bits: geometry.banks_per_rank.trailing_zeros(),
            rank_bits: geometry.ranks_per_channel.trailing_zeros(),
            channel_bits: geometry.channels.trailing_zeros(),
            row_bits: geometry.rows_per_bank.trailing_zeros(),
        }
    }

    /// The geometry this mapping is defined over.
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    /// Number of address bits this mapping covers.
    pub fn address_bits(&self) -> u32 {
        self.col_bits + self.bank_bits + self.rank_bits + self.channel_bits + self.row_bits
    }

    fn bank_xor(&self, row: u64) -> u64 {
        match self.permutation {
            BankPermutation::Identity => 0,
            BankPermutation::XorRowLow => row & mask(self.bank_bits),
        }
    }

    /// Decodes a physical address into its DRAM location.
    ///
    /// Addresses beyond the module capacity wrap (the high bits are
    /// ignored), which keeps the hot path branch-free; callers that care
    /// should bounds-check against [`DramGeometry::total_bytes`].
    pub fn location_of(&self, paddr: u64) -> DramLocation {
        let mut a = paddr;
        let col = a & mask(self.col_bits);
        a >>= self.col_bits;
        let raw_bank = a & mask(self.bank_bits);
        a >>= self.bank_bits;
        let rank = a & mask(self.rank_bits);
        a >>= self.rank_bits;
        let channel = a & mask(self.channel_bits);
        a >>= self.channel_bits;
        let row = a & mask(self.row_bits);

        let bank_in_rank = raw_bank ^ self.bank_xor(row);
        let global_bank = ((channel * self.geometry.ranks_per_channel as u64 + rank)
            * self.geometry.banks_per_rank as u64)
            + bank_in_rank;
        DramLocation {
            bank: BankId(global_bank as u32),
            row: row as u32,
            col: col as u32,
        }
    }

    /// Encodes a DRAM location back into a physical address.
    ///
    /// Inverse of [`location_of`](Self::location_of).
    ///
    /// # Panics
    ///
    /// Panics if the location is outside the module geometry.
    pub fn address_of(&self, loc: DramLocation) -> u64 {
        let banks_per_rank = self.geometry.banks_per_rank as u64;
        let ranks = self.geometry.ranks_per_channel as u64;
        let global = loc.bank.0 as u64;
        assert!(
            global < self.geometry.total_banks() as u64,
            "bank {global} out of range"
        );
        assert!(
            loc.row < self.geometry.rows_per_bank,
            "row {} out of range",
            loc.row
        );
        assert!(
            loc.col < self.geometry.row_bytes,
            "column {} out of range",
            loc.col
        );
        let bank_in_rank = global % banks_per_rank;
        let rank = (global / banks_per_rank) % ranks;
        let channel = global / (banks_per_rank * ranks);
        let row = loc.row as u64;
        let raw_bank = bank_in_rank ^ self.bank_xor(row);

        let mut a = row;
        a = (a << self.channel_bits) | channel;
        a = (a << self.rank_bits) | rank;
        a = (a << self.bank_bits) | raw_bank;
        a = (a << self.col_bits) | loc.col as u64;
        a
    }

    /// Returns a physical address in the row physically adjacent to the one
    /// containing `paddr` (offset `delta` rows), in the same bank, at the
    /// same column — the address an attacker hammers, or ANVIL reads to
    /// refresh a victim. Returns `None` at bank boundaries.
    pub fn same_bank_row_offset(&self, paddr: u64, delta: i64) -> Option<u64> {
        let loc = self.location_of(paddr);
        let new_row = loc.row as i64 + delta;
        if new_row < 0 || new_row >= self.geometry.rows_per_bank as i64 {
            return None;
        }
        Some(self.address_of(DramLocation {
            bank: loc.bank,
            row: new_row as u32,
            col: loc.col,
        }))
    }
}

fn mask(bits: u32) -> u64 {
    if bits == 0 {
        0
    } else {
        (1u64 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mappings() -> Vec<AddressMapping> {
        vec![
            AddressMapping::new(DramGeometry::ddr3_4gb()),
            AddressMapping::with_permutation(DramGeometry::ddr3_4gb(), BankPermutation::Identity),
            AddressMapping::new(DramGeometry::tiny_16mb()),
        ]
    }

    #[test]
    fn round_trips() {
        for map in mappings() {
            for pa in [0u64, 64, 4096, 0xdead_beef & !0x7, 0xffff_fff8, 123_456_789] {
                let pa = pa % map.geometry().total_bytes();
                let loc = map.location_of(pa);
                assert_eq!(map.address_of(loc), pa, "round trip failed for {pa:#x}");
            }
        }
    }

    #[test]
    fn address_bits_cover_capacity() {
        let map = AddressMapping::new(DramGeometry::ddr3_4gb());
        assert_eq!(1u64 << map.address_bits(), map.geometry().total_bytes());
    }

    #[test]
    fn same_bank_row_offset_changes_only_row() {
        let map = AddressMapping::new(DramGeometry::ddr3_4gb());
        let pa = 0x0123_4560;
        let loc = map.location_of(pa);
        let up = map.same_bank_row_offset(pa, 1).unwrap();
        let up_loc = map.location_of(up);
        assert_eq!(up_loc.bank, loc.bank);
        assert_eq!(up_loc.col, loc.col);
        assert_eq!(up_loc.row, loc.row + 1);
    }

    #[test]
    fn row_offset_none_at_boundary() {
        let map = AddressMapping::new(DramGeometry::tiny_16mb());
        let first_row = map.address_of(DramLocation {
            bank: BankId(0),
            row: 0,
            col: 0,
        });
        assert_eq!(map.same_bank_row_offset(first_row, -1), None);
        let last_row = map.address_of(DramLocation {
            bank: BankId(0),
            row: map.geometry().rows_per_bank - 1,
            col: 0,
        });
        assert_eq!(map.same_bank_row_offset(last_row, 1), None);
    }

    #[test]
    fn xor_permutation_spreads_consecutive_rows() {
        // With the XOR permutation, walking the same physical-address bank
        // bits while incrementing the row flips the actual bank; the
        // inverse mapping must still round-trip.
        let map = AddressMapping::new(DramGeometry::ddr3_4gb());
        let a = map.location_of(0);
        let b = map.location_of(map.geometry().row_bytes as u64 * 8 * 2); // +1 row, same raw bank bits
        assert_eq!(a.col, b.col);
        assert_ne!(a.bank, b.bank, "XOR permutation should flip the bank");
    }

    #[test]
    fn all_banks_reachable() {
        let map = AddressMapping::new(DramGeometry::tiny_16mb());
        let mut seen = std::collections::HashSet::new();
        for pa in (0..map.geometry().total_bytes()).step_by(8192) {
            seen.insert(map.location_of(pa).bank);
        }
        assert_eq!(seen.len(), map.geometry().total_banks() as usize);
    }
}
