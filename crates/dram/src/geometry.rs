//! Physical organization of a DRAM module: channels, ranks, banks, rows.

use serde::{Deserialize, Serialize};

/// Geometry of a DRAM module.
///
/// The default reproduces the paper's test module: a 4 GB DDR3 SO-DIMM with
/// one channel, two ranks, eight banks per rank, 32768 rows per bank and
/// 8 KB rows.
///
/// # Examples
///
/// ```
/// use anvil_dram::DramGeometry;
///
/// let geom = DramGeometry::ddr3_4gb();
/// assert_eq!(geom.total_bytes(), 4 << 30);
/// assert_eq!(geom.total_banks(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramGeometry {
    /// Number of independent memory channels.
    pub channels: u32,
    /// Ranks per channel.
    pub ranks_per_channel: u32,
    /// Banks per rank.
    pub banks_per_rank: u32,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Bytes per row (the row-buffer size).
    pub row_bytes: u32,
}

impl DramGeometry {
    /// The paper's module: 4 GB DDR3, 1 channel x 2 ranks x 8 banks x
    /// 32768 rows x 8 KB rows.
    pub fn ddr3_4gb() -> Self {
        DramGeometry {
            channels: 1,
            ranks_per_channel: 2,
            banks_per_rank: 8,
            rows_per_bank: 32_768,
            row_bytes: 8_192,
        }
    }

    /// A small module useful for fast tests: 16 MB, 1 channel x 1 rank x
    /// 4 banks x 512 rows x 8 KB rows.
    pub fn tiny_16mb() -> Self {
        DramGeometry {
            channels: 1,
            ranks_per_channel: 1,
            banks_per_rank: 4,
            rows_per_bank: 512,
            row_bytes: 8_192,
        }
    }

    /// Total capacity in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_banks() as u64 * self.rows_per_bank as u64 * self.row_bytes as u64
    }

    /// Total number of banks across all channels and ranks.
    pub fn total_banks(&self) -> u32 {
        self.channels * self.ranks_per_channel * self.banks_per_rank
    }

    /// Total number of rows across the module.
    pub fn total_rows(&self) -> u64 {
        self.total_banks() as u64 * self.rows_per_bank as u64
    }

    /// Checks internal consistency (all dimensions non-zero, power-of-two
    /// sizes where the address mapping requires them).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let fields = [
            ("channels", self.channels),
            ("ranks_per_channel", self.ranks_per_channel),
            ("banks_per_rank", self.banks_per_rank),
            ("rows_per_bank", self.rows_per_bank),
            ("row_bytes", self.row_bytes),
        ];
        for (name, v) in fields {
            if v == 0 {
                return Err(format!("{name} must be non-zero"));
            }
            if !v.is_power_of_two() {
                return Err(format!("{name} must be a power of two, got {v}"));
            }
        }
        Ok(())
    }
}

impl Default for DramGeometry {
    fn default() -> Self {
        Self::ddr3_4gb()
    }
}

/// Identifies one bank globally across channels and ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BankId(pub u32);

impl std::fmt::Display for BankId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bank{}", self.0)
    }
}

/// A DRAM row within a specific bank: the granularity at which hammering,
/// refresh, and victim protection operate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RowId {
    /// The bank containing the row.
    pub bank: BankId,
    /// Row index within the bank.
    pub row: u32,
}

impl RowId {
    /// Creates a row identifier.
    pub fn new(bank: BankId, row: u32) -> Self {
        RowId { bank, row }
    }

    /// The physically adjacent row above (next higher index), if it exists.
    pub fn above(&self, geometry: &DramGeometry) -> Option<RowId> {
        if self.row + 1 < geometry.rows_per_bank {
            Some(RowId::new(self.bank, self.row + 1))
        } else {
            None
        }
    }

    /// The physically adjacent row below (next lower index), if it exists.
    pub fn below(&self) -> Option<RowId> {
        self.row.checked_sub(1).map(|r| RowId::new(self.bank, r))
    }

    /// Iterates over the rows within `n` of this one (excluding itself),
    /// clipped to the bank boundaries. These are the potential victims when
    /// this row is an aggressor.
    pub fn neighbors(&self, n: u32, geometry: &DramGeometry) -> Vec<RowId> {
        let lo = self.row.saturating_sub(n);
        let hi = (self.row + n).min(geometry.rows_per_bank - 1);
        (lo..=hi)
            .filter(|&r| r != self.row)
            .map(|r| RowId::new(self.bank, r))
            .collect()
    }
}

impl std::fmt::Display for RowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:row{}", self.bank, self.row)
    }
}

/// Full location of an access within the module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramLocation {
    /// Bank (global across channels and ranks).
    pub bank: BankId,
    /// Row within the bank.
    pub row: u32,
    /// Byte offset within the row.
    pub col: u32,
}

impl DramLocation {
    /// The row identifier for this location.
    pub fn row_id(&self) -> RowId {
        RowId::new(self.bank, self.row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr3_4gb_capacity() {
        let g = DramGeometry::ddr3_4gb();
        assert_eq!(g.total_bytes(), 4 * 1024 * 1024 * 1024);
        assert_eq!(g.total_banks(), 16);
        assert_eq!(g.total_rows(), 16 * 32_768);
        g.validate().unwrap();
    }

    #[test]
    fn tiny_validates() {
        DramGeometry::tiny_16mb().validate().unwrap();
        assert_eq!(DramGeometry::tiny_16mb().total_bytes(), 16 << 20);
    }

    #[test]
    fn validation_rejects_non_power_of_two() {
        let mut g = DramGeometry::ddr3_4gb();
        g.rows_per_bank = 1000;
        assert!(g.validate().unwrap_err().contains("rows_per_bank"));
        g.rows_per_bank = 0;
        assert!(g.validate().unwrap_err().contains("non-zero"));
    }

    #[test]
    fn row_neighbors_clip_at_edges() {
        let g = DramGeometry::tiny_16mb();
        let first = RowId::new(BankId(0), 0);
        assert_eq!(first.below(), None);
        assert_eq!(first.above(&g), Some(RowId::new(BankId(0), 1)));
        assert_eq!(first.neighbors(1, &g), vec![RowId::new(BankId(0), 1)]);

        let last = RowId::new(BankId(0), g.rows_per_bank - 1);
        assert_eq!(last.above(&g), None);
        assert_eq!(
            last.below(),
            Some(RowId::new(BankId(0), g.rows_per_bank - 2))
        );

        let mid = RowId::new(BankId(2), 10);
        let n = mid.neighbors(2, &g);
        assert_eq!(
            n,
            vec![
                RowId::new(BankId(2), 8),
                RowId::new(BankId(2), 9),
                RowId::new(BankId(2), 11),
                RowId::new(BankId(2), 12),
            ]
        );
    }

    #[test]
    fn display_formats() {
        let r = RowId::new(BankId(3), 42);
        assert_eq!(r.to_string(), "bank3:row42");
    }
}
