//! DRAM timing parameters, expressed in CPU cycles.

use crate::time::{CpuClock, Cycle};
use serde::{Deserialize, Serialize};

/// Timing of the DRAM module as seen by the core, in CPU cycles.
///
/// The defaults match the paper's cost model for the 2.6 GHz Sandy Bridge
/// test machine: a DRAM access costs on the order of 150 cycles
/// (Section 2.2), a refresh command is issued every tREFI = 7.8 us
/// (Section 1.1), and every row is refreshed once per 64 ms retention
/// window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramTiming {
    /// Latency of an access that hits the open row in the row buffer.
    pub row_hit: Cycle,
    /// Latency of an access to a closed bank (activate + read).
    pub row_open: Cycle,
    /// Latency of an access that conflicts with a different open row
    /// (precharge + activate + read).
    pub row_conflict: Cycle,
    /// Interval between refresh commands (tREFI).
    pub t_refi: Cycle,
    /// Duration a rank is unavailable while executing a refresh command
    /// (tRFC).
    pub t_rfc: Cycle,
    /// Retention window: every row is refreshed once per this period.
    pub refresh_period: Cycle,
}

impl DramTiming {
    /// DDR3 timing at the given core clock with the standard 64 ms
    /// retention window.
    pub fn ddr3(clock: CpuClock) -> Self {
        Self::ddr3_with_refresh_ms(clock, 64.0)
    }

    /// DDR3 timing with a custom retention window, used to model the
    /// vendors' doubled (32 ms) and quadrupled (16 ms) refresh-rate
    /// mitigations. tREFI scales proportionally, as it does in the BIOS
    /// updates the paper studies (more frequent refresh commands, same
    /// number of rows per command).
    ///
    /// # Panics
    ///
    /// Panics if `refresh_ms` is not strictly positive.
    pub fn ddr3_with_refresh_ms(clock: CpuClock, refresh_ms: f64) -> Self {
        assert!(refresh_ms > 0.0, "refresh period must be positive");
        let scale = refresh_ms / 64.0;
        DramTiming {
            row_hit: clock.ns_to_cycles(38.0),
            row_open: clock.ns_to_cycles(58.0),
            row_conflict: clock.ns_to_cycles(69.0),
            t_refi: clock.us_to_cycles(7.8 * scale),
            t_rfc: clock.ns_to_cycles(260.0),
            refresh_period: clock.ms_to_cycles(refresh_ms),
        }
    }

    /// Halves the retention window (the "double refresh rate" mitigation).
    #[must_use]
    pub fn with_doubled_refresh(mut self) -> Self {
        self.refresh_period /= 2;
        self.t_refi /= 2;
        self
    }

    /// Number of refresh commands per retention window.
    pub fn commands_per_period(&self) -> u64 {
        (self.refresh_period / self.t_refi).max(1)
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.t_refi == 0 || self.refresh_period == 0 {
            return Err("refresh intervals must be non-zero".to_owned());
        }
        if self.t_rfc >= self.t_refi {
            return Err(format!(
                "tRFC ({}) must be smaller than tREFI ({})",
                self.t_rfc, self.t_refi
            ));
        }
        if self.refresh_period < self.t_refi {
            return Err("refresh period must cover at least one command".to_owned());
        }
        if !(self.row_hit <= self.row_open && self.row_open <= self.row_conflict) {
            return Err("expected row_hit <= row_open <= row_conflict".to_owned());
        }
        Ok(())
    }
}

impl Default for DramTiming {
    fn default() -> Self {
        Self::ddr3(CpuClock::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        DramTiming::default().validate().unwrap();
    }

    #[test]
    fn refresh_command_count_matches_ddr3() {
        // 64 ms / 7.8 us = 8205 refresh commands per retention window.
        let t = DramTiming::default();
        let n = t.commands_per_period();
        assert!((8190..=8210).contains(&n), "got {n}");
    }

    #[test]
    fn doubled_refresh_halves_both_intervals() {
        let t = DramTiming::default();
        let d = t.with_doubled_refresh();
        assert_eq!(d.refresh_period, t.refresh_period / 2);
        assert_eq!(d.t_refi, t.t_refi / 2);
        assert_eq!(d.commands_per_period(), t.commands_per_period());
        d.validate().unwrap();
    }

    #[test]
    fn custom_refresh_window() {
        let clock = CpuClock::default();
        let t = DramTiming::ddr3_with_refresh_ms(clock, 16.0);
        assert_eq!(t.refresh_period, clock.ms_to_cycles(16.0));
        t.validate().unwrap();
    }

    #[test]
    fn conflict_latency_near_paper_estimate() {
        // Section 2.2 uses ~150 cycles for a DRAM access at 2.6 GHz.
        let t = DramTiming::default();
        assert!((140..=190).contains(&t.row_conflict), "{}", t.row_conflict);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_refresh_panics() {
        DramTiming::ddr3_with_refresh_ms(CpuClock::default(), 0.0);
    }
}
