//! Property-based tests of the disturbance model's physical invariants.

use anvil_dram::{
    is_vulnerable_row, BankId, DisturbanceConfig, DisturbanceTracker, DramTiming, RefreshSchedule,
    RowId,
};
use proptest::prelude::*;

fn harness() -> (DisturbanceTracker, RefreshSchedule) {
    let timing = DramTiming::default();
    (
        DisturbanceTracker::new(DisturbanceConfig::paper_ddr3(), 8192, 32_768),
        RefreshSchedule::new(&timing, 32_768),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No victim ever flips below the double-sided minimum, regardless of
    /// how the activations are interleaved between the two aggressors.
    #[test]
    fn no_flip_below_minimum(
        row in 2u32..30_000,
        pattern in prop::collection::vec(any::<bool>(), 64),
    ) {
        let (mut t, s) = harness();
        let victim = RowId::new(BankId(0), row);
        let above = RowId::new(victim.bank, victim.row + 1);
        let below = RowId::new(victim.bank, victim.row - 1);
        let start = s.last_refresh(victim.row, s.period() * 2).unwrap() + 1;
        let budget = DisturbanceConfig::paper_ddr3().double_sided_threshold - 100;
        for i in 0..budget {
            let side = pattern[(i % pattern.len() as u64) as usize];
            t.on_activation(if side { above } else { below }, start + i, &s);
        }
        prop_assert_eq!(t.drain_flips().len(), 0, "flip below the minimum");
    }

    /// Single-sided activations never flip before the single-sided
    /// threshold, for any row.
    #[test]
    fn single_sided_threshold_respected(row in 2u32..30_000) {
        let (mut t, s) = harness();
        let victim = RowId::new(BankId(1), row);
        let aggressor = RowId::new(victim.bank, victim.row + 1);
        let start = s.last_refresh(victim.row, s.period() * 2).unwrap() + 1;
        let budget = DisturbanceConfig::paper_ddr3().single_sided_threshold - 1;
        for i in 0..budget {
            t.on_activation(aggressor, start + i, &s);
        }
        let flips = t.drain_flips();
        prop_assert!(
            flips.iter().all(|f| f.row != victim),
            "single-sided flip before the threshold"
        );
    }

    /// A vulnerable victim always flips at the threshold, for any balanced
    /// interleaving that stays within one refresh window.
    #[test]
    fn vulnerable_rows_always_flip_at_threshold(seed in 0u32..500) {
        let config = DisturbanceConfig::paper_ddr3();
        let Some(victim) = (2 + seed * 13..32_000)
            .map(|r| RowId::new(BankId(0), r))
            .find(|r| is_vulnerable_row(&config, *r)) else {
            return Ok(());
        };
        let (mut t, s) = harness();
        let above = RowId::new(victim.bank, victim.row + 1);
        let below = RowId::new(victim.bank, victim.row - 1);
        let start = s.last_refresh(victim.row, s.period() * 2).unwrap() + 1;
        for i in 0..config.double_sided_threshold + 4 {
            let agg = if i % 2 == 0 { above } else { below };
            t.on_activation(agg, start + i, &s);
        }
        let flips = t.drain_flips();
        prop_assert!(
            flips.iter().any(|f| f.row == victim),
            "vulnerable victim did not flip"
        );
    }

    /// The closed-form epoch path is observationally identical to the
    /// per-op path: same flip log (values AND order), same diagnostic
    /// disturbance, same total-flip count — for any aggressor row, epoch
    /// length, and per-op prelude, and regardless of per-op traffic
    /// continuing after the epoch.
    #[test]
    fn activate_epoch_matches_per_op(
        row in 2u32..30_000,
        prelude in 0u64..300,
        n in 1u64..400_000,
        tail in 0u64..300,
    ) {
        let (mut per_op, s) = harness();
        let (mut epoch, _) = harness();
        let aggressor = RowId::new(BankId(0), row);
        let start = s.last_refresh(row, s.period() * 2).unwrap() + 1;
        for i in 0..prelude {
            per_op.on_activation(aggressor, start + i, &s);
            epoch.on_activation(aggressor, start + i, &s);
        }
        let now = start + prelude;
        for _ in 0..n {
            per_op.on_activation(aggressor, now, &s);
        }
        epoch.activate_epoch(aggressor, n, now, &s);
        for i in 0..tail {
            per_op.on_activation(aggressor, now + 1 + i, &s);
            epoch.on_activation(aggressor, now + 1 + i, &s);
        }
        prop_assert_eq!(per_op.drain_flips(), epoch.drain_flips());
        prop_assert_eq!(per_op.total_flips(), epoch.total_flips());
        for d in [-2i64, -1, 1, 2] {
            let v = RowId::new(BankId(0), (row as i64 + d) as u32);
            prop_assert_eq!(per_op.disturbance_of(v), epoch.disturbance_of(v));
        }
    }

    /// Disturbance never goes negative or wraps: the diagnostic is
    /// monotone in activations until a reset.
    #[test]
    fn disturbance_monotone(n in 1u64..5_000) {
        let (mut t, s) = harness();
        let victim = RowId::new(BankId(2), 100);
        let aggressor = RowId::new(victim.bank, victim.row + 1);
        let start = s.last_refresh(victim.row, s.period() * 2).unwrap() + 1;
        let mut last = 0;
        for i in 0..n {
            t.on_activation(aggressor, start + i, &s);
            let d = t.disturbance_of(victim);
            prop_assert!(d >= last);
            last = d;
        }
        t.reset_row(victim, start + n);
        prop_assert_eq!(t.disturbance_of(victim), 0);
    }
}

#[test]
fn activate_epoch_preserves_flip_order_across_reach2_victims() {
    // A reach-2 device gives one aggressor four victims; an epoch long
    // enough to flip several cells on several of them must replay the
    // flips in exactly the per-op interleaving.
    let mut config = DisturbanceConfig::paper_ddr3();
    config.neighbor_reach = 2;
    config.distance2_coupling = 0.4;
    let timing = DramTiming::default();
    let s = RefreshSchedule::new(&timing, 32_768);
    let mk = || DisturbanceTracker::new(config.clone(), 8192, 32_768);
    let (mut per_op, mut epoch) = (mk(), mk());
    let aggressor = RowId::new(BankId(0), 500);
    let start = s.last_refresh(500, s.period() * 4).unwrap() + 1;
    let n = 2_000_000u64;
    for _ in 0..n {
        per_op.on_activation(aggressor, start, &s);
    }
    epoch.activate_epoch(aggressor, n, start, &s);
    let reference = per_op.drain_flips();
    assert!(
        reference.len() >= 2,
        "need multiple flips to exercise ordering, got {}",
        reference.len()
    );
    assert_eq!(reference, epoch.drain_flips());
}

#[test]
fn flips_are_deterministic_across_runs() {
    let run = || {
        let (mut t, s) = harness();
        let above = RowId::new(BankId(0), 501);
        let below = RowId::new(BankId(0), 499);
        let start = s.last_refresh(500, s.period() * 2).unwrap() + 1;
        for i in 0..500_000u64 {
            let agg = if i % 2 == 0 { above } else { below };
            t.on_activation(agg, start + i, &s);
        }
        t.drain_flips()
    };
    assert_eq!(run(), run(), "same seed, same flips");
}

#[test]
fn clustered_weak_cells_produce_multi_bit_words() {
    // The ECC discussion (paper Section 1.2) needs some words with more
    // than one flipped bit. Hammer many rows far past threshold and check
    // the clustering materializes.
    let (mut t, s) = harness();
    let mut per_word: std::collections::HashMap<(RowId, u32), u32> =
        std::collections::HashMap::new();
    for base in (100..8_000u32).step_by(100) {
        let above = RowId::new(BankId(0), base + 1);
        let below = RowId::new(BankId(0), base - 1);
        let start = s.last_refresh(base, s.period() * 4).unwrap() + 1;
        for i in 0..900_000u64 {
            let agg = if i % 2 == 0 { above } else { below };
            t.on_activation(agg, start + i, &s);
        }
        for f in t.drain_flips() {
            *per_word.entry((f.row, f.col & !7)).or_insert(0) += 1;
        }
    }
    assert!(
        per_word.values().any(|&n| n >= 2),
        "no multi-bit words among {} corrupted words",
        per_word.len()
    );
}
