//! Statistical checks that the benchmark models produce the memory
//! behaviour the paper's experiments depend on.

use anvil_mem::{AccessKind, MemoryConfig, MemorySystem};
use anvil_workloads::SpecBenchmark;

/// Runs `bench` alone on the paper platform for ~`ms` of simulated time
/// and returns (LLC misses per 6 ms window, load fraction of misses).
fn profile(bench: SpecBenchmark, ms: f64) -> (f64, f64) {
    let mut sys = MemorySystem::new(MemoryConfig::paper_platform());
    let mut w = bench.build(7);
    // Identity-map the arena at a fixed physical base per benchmark.
    let base = 0x1000_0000u64;
    let end = sys.config().clock.ms_to_cycles(ms);
    while sys.now() < end {
        let op = w.next_op();
        sys.advance(op.compute_cycles);
        sys.access(base + op.offset, op.kind);
    }
    let stats = sys.stats();
    let windows = ms / 6.0;
    (
        stats.llc_misses as f64 / windows,
        stats.llc_miss_loads as f64 / stats.llc_misses.max(1) as f64,
    )
}

#[test]
fn memory_intensive_benchmarks_cross_the_stage1_threshold() {
    // Section 4.3: mcf, libquantum, omnetpp, xalancbmk cross 20K/6ms in
    // 95-99% of windows; their average miss rate must sit well above it.
    for b in [
        SpecBenchmark::Mcf,
        SpecBenchmark::Libquantum,
        SpecBenchmark::Omnetpp,
        SpecBenchmark::Xalancbmk,
    ] {
        let (misses_per_window, _) = profile(b, 48.0);
        assert!(
            misses_per_window > 25_000.0,
            "{b}: {misses_per_window:.0} misses/6ms, expected memory-bound"
        );
    }
}

#[test]
fn compute_bound_benchmarks_stay_below_the_threshold() {
    // Section 4.3: h264ref, sjeng, hmmer cross in <10% of windows.
    for b in [
        SpecBenchmark::H264ref,
        SpecBenchmark::Sjeng,
        SpecBenchmark::Hmmer,
    ] {
        let (misses_per_window, _) = profile(b, 48.0);
        assert!(
            misses_per_window < 10_000.0,
            "{b}: {misses_per_window:.0} misses/6ms, expected cache-resident"
        );
    }
}

#[test]
fn load_fractions_drive_facility_choice() {
    // All models are load-dominated (ANVIL would sample loads or both;
    // none is store-only). Miss loads should be 50-100% of misses.
    for b in SpecBenchmark::all() {
        let (misses, load_fraction) = profile(b, 24.0);
        if misses > 1_000.0 {
            assert!(
                load_fraction > 0.4,
                "{b}: load fraction {load_fraction:.2} implausible"
            );
        }
    }
}

#[test]
fn arenas_are_fully_addressable() {
    for b in SpecBenchmark::all() {
        let mut w = b.build(3);
        let arena = w.arena_bytes();
        let mut max_seen = 0;
        for _ in 0..600_000 {
            let op = w.next_op();
            assert!(op.offset < arena, "{b}: op beyond arena");
            max_seen = max_seen.max(op.offset);
        }
        // Cache-resident models intentionally use a small primary region;
        // every model must still exercise a non-trivial footprint.
        assert!(
            max_seen >= 64 * 1024,
            "{b}: arena barely used ({max_seen} of {arena})"
        );
    }
}

#[test]
fn store_fractions_match_models() {
    for b in SpecBenchmark::all() {
        let mut w = b.build(11);
        let stores = (0..100_000)
            .filter(|_| matches!(w.next_op().kind, AccessKind::Write))
            .count();
        let frac = stores as f64 / 100_000.0;
        assert!(
            (0.02..0.5).contains(&frac),
            "{b}: store fraction {frac:.3} out of modelled range"
        );
    }
}

#[test]
fn miss_rate_ordering_matches_spec_characterization() {
    // The relative ordering that drives every overhead result: mcf-class
    // >> bzip2/gcc-class >> loop-class.
    let (mcf, _) = profile(SpecBenchmark::Mcf, 24.0);
    let (bzip2, _) = profile(SpecBenchmark::Bzip2, 24.0);
    let (h264, _) = profile(SpecBenchmark::H264ref, 24.0);
    assert!(
        mcf > bzip2,
        "mcf ({mcf:.0}) must out-miss bzip2 ({bzip2:.0})"
    );
    assert!(
        bzip2 > h264.max(1.0),
        "bzip2 ({bzip2:.0}) must out-miss h264ref ({h264:.0})"
    );
}
