//! Composable address-pattern generators.
//!
//! Each SPEC-like benchmark model is assembled from these primitives
//! (see `spec.rs`). All generators are deterministic for a fixed seed.

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An address-pattern primitive, parameterized over a region
/// `[base, base + bytes)` of the workload arena.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Pattern {
    /// Sequential scan with the given step, wrapping at the region end.
    /// Models streaming kernels (libquantum's state-vector sweeps).
    Stream {
        /// Bytes between consecutive accesses.
        step: u64,
    },
    /// Uniformly random accesses — pointer chasing over a huge working
    /// set (mcf).
    Chase,
    /// A cyclic scan (thrashes any LRU-family cache once the region
    /// exceeds cache capacity) with a small *hot* sub-region receiving a
    /// fraction of the accesses. Hot lines are evicted by the scan between
    /// revisits, so hot accesses also miss — this is the access shape that
    /// occasionally looks rowhammer-like and produces ANVIL's residual
    /// false positives (Table 4).
    HotScan {
        /// Scan step in bytes.
        step: u64,
        /// Size of the hot sub-region.
        hot_bytes: u64,
        /// Fraction of accesses directed at the hot sub-region, in
        /// per-mille (0..=1000).
        hot_per_mille: u32,
    },
    /// A tight loop over a small region (cache-resident after warmup).
    /// Models compute-bound benchmarks (h264ref, sjeng, hmmer).
    Loop {
        /// Step in bytes.
        step: u64,
    },
}

/// Iterates a [`Pattern`] over a region, producing arena offsets.
#[derive(Debug)]
pub struct PatternState {
    pattern: Pattern,
    base: u64,
    bytes: u64,
    cursor: u64,
}

impl PatternState {
    /// Creates the iterator for `pattern` over `[base, base + bytes)`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero or a pattern parameter is degenerate.
    pub fn new(pattern: Pattern, base: u64, bytes: u64) -> Self {
        assert!(bytes > 0, "pattern region must be non-empty");
        match pattern {
            Pattern::Stream { step } | Pattern::Loop { step } => {
                assert!(step > 0, "step must be non-zero");
            }
            Pattern::HotScan {
                step,
                hot_bytes,
                hot_per_mille,
            } => {
                assert!(step > 0, "step must be non-zero");
                assert!(
                    hot_bytes > 0 && hot_bytes <= bytes,
                    "hot region out of range"
                );
                assert!(hot_per_mille <= 1000, "fraction out of range");
            }
            Pattern::Chase => {}
        }
        PatternState {
            pattern,
            base,
            bytes,
            cursor: 0,
        }
    }

    /// Next arena offset.
    pub fn next_offset(&mut self, rng: &mut SmallRng) -> u64 {
        match self.pattern {
            Pattern::Stream { step } | Pattern::Loop { step } => {
                let off = self.cursor;
                self.cursor = (self.cursor + step) % self.bytes;
                self.base + off
            }
            Pattern::Chase => (self.base + rng.gen::<u64>() % self.bytes) & !7,
            Pattern::HotScan {
                step,
                hot_bytes,
                hot_per_mille,
            } => {
                if rng.gen_range(0..1000u32) < hot_per_mille {
                    // Hot accesses land in the last `hot_bytes` of the
                    // region, at a random aligned word.
                    let hot_base = self.base + self.bytes - hot_bytes;
                    (hot_base + rng.gen::<u64>() % hot_bytes) & !7
                } else {
                    let off = self.cursor;
                    self.cursor = (self.cursor + step) % (self.bytes - hot_bytes);
                    self.base + off
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn stream_wraps() {
        let mut p = PatternState::new(Pattern::Stream { step: 8 }, 100, 24);
        let mut r = rng();
        let offs: Vec<u64> = (0..4).map(|_| p.next_offset(&mut r)).collect();
        assert_eq!(offs, vec![100, 108, 116, 100]);
    }

    #[test]
    fn chase_stays_in_region() {
        let mut p = PatternState::new(Pattern::Chase, 1000, 4096);
        let mut r = rng();
        for _ in 0..1000 {
            let o = p.next_offset(&mut r);
            assert!((1000..1000 + 4096).contains(&o));
        }
    }

    #[test]
    fn hot_scan_mixes_hot_and_cold() {
        let bytes = 1 << 20;
        let hot = 8192;
        let mut p = PatternState::new(
            Pattern::HotScan {
                step: 64,
                hot_bytes: hot,
                hot_per_mille: 300,
            },
            0,
            bytes,
        );
        let mut r = rng();
        let mut hot_hits = 0;
        let n = 10_000;
        for _ in 0..n {
            if p.next_offset(&mut r) >= bytes - hot {
                hot_hits += 1;
            }
        }
        let frac = hot_hits as f64 / n as f64;
        assert!((0.25..0.35).contains(&frac), "hot fraction {frac}");
    }

    #[test]
    fn loop_is_periodic() {
        let mut p = PatternState::new(Pattern::Loop { step: 64 }, 0, 256);
        let mut r = rng();
        let first: Vec<u64> = (0..4).map(|_| p.next_offset(&mut r)).collect();
        let second: Vec<u64> = (0..4).map(|_| p.next_offset(&mut r)).collect();
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_region_panics() {
        PatternState::new(Pattern::Chase, 0, 0);
    }
}
