//! The workload abstraction: a deterministic stream of memory operations.

use anvil_mem::AccessKind;

/// One operation a workload wants to execute next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadOp {
    /// Byte offset within the workload's arena (the platform maps the
    /// arena and adds the base virtual address).
    pub offset: u64,
    /// Load or store.
    pub kind: AccessKind,
    /// Non-memory work preceding the access, in cycles.
    pub compute_cycles: u64,
}

/// A synthetic program: a named arena size plus an endless, deterministic
/// stream of [`WorkloadOp`]s.
///
/// Implementations model the memory behaviour of the SPEC CPU2006 integer
/// benchmarks the paper evaluates with (Section 4.1); the platform runner
/// in `anvil-core` executes them against the simulated memory system.
pub trait Workload: std::fmt::Debug + Send {
    /// Benchmark name (e.g. `"mcf"`).
    fn name(&self) -> &str;

    /// Bytes of memory the workload needs mapped.
    fn arena_bytes(&self) -> u64;

    /// Produces the next operation. Streams are endless; generators wrap.
    fn next_op(&mut self) -> WorkloadOp;
}
