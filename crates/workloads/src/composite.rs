//! Phase-structured workloads built from pattern primitives.

use crate::op::{Workload, WorkloadOp};
use crate::pattern::{Pattern, PatternState};
use anvil_mem::AccessKind;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One phase of a composite workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Operations before moving to the next phase.
    pub ops: u64,
    /// Address pattern.
    pub pattern: Pattern,
    /// Region of the arena the pattern runs over: (base, bytes).
    pub region: (u64, u64),
    /// Store fraction in per-mille.
    pub store_per_mille: u32,
    /// Compute cycles between memory operations.
    pub compute_cycles: u64,
}

/// A benchmark model: a named arena and a cyclic sequence of phases,
/// mirroring how real programs alternate between kernels with different
/// memory behaviour.
#[derive(Debug)]
pub struct CompositeWorkload {
    name: String,
    arena_bytes: u64,
    phases: Vec<Phase>,
    rng: SmallRng,
    current: usize,
    remaining: u64,
    state: PatternState,
}

impl CompositeWorkload {
    /// Creates a workload cycling through `phases` over an arena of
    /// `arena_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty, any phase has zero ops, or a phase
    /// region exceeds the arena.
    pub fn new(name: impl Into<String>, arena_bytes: u64, phases: Vec<Phase>, seed: u64) -> Self {
        assert!(!phases.is_empty(), "workload needs at least one phase");
        for p in &phases {
            assert!(p.ops > 0, "phase must run at least one op");
            assert!(p.store_per_mille <= 1000, "store fraction out of range");
            let (base, bytes) = p.region;
            assert!(
                base + bytes <= arena_bytes,
                "phase region {base}+{bytes} beyond arena {arena_bytes}"
            );
        }
        let first = phases[0];
        CompositeWorkload {
            name: name.into(),
            arena_bytes,
            rng: SmallRng::seed_from_u64(seed),
            current: 0,
            remaining: first.ops,
            state: PatternState::new(first.pattern, first.region.0, first.region.1),
            phases,
        }
    }

    fn advance_phase(&mut self) {
        self.current = (self.current + 1) % self.phases.len();
        let p = self.phases[self.current];
        self.remaining = p.ops;
        self.state = PatternState::new(p.pattern, p.region.0, p.region.1);
    }

    /// Index of the phase currently executing (diagnostic).
    pub fn current_phase(&self) -> usize {
        self.current
    }
}

impl Workload for CompositeWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn arena_bytes(&self) -> u64 {
        self.arena_bytes
    }

    fn next_op(&mut self) -> WorkloadOp {
        if self.remaining == 0 {
            self.advance_phase();
        }
        self.remaining -= 1;
        let p = self.phases[self.current];
        let offset = self.state.next_offset(&mut self.rng);
        let kind = if self.rng.gen_range(0..1000u32) < p.store_per_mille {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        WorkloadOp {
            offset,
            kind,
            compute_cycles: p.compute_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_phase() -> CompositeWorkload {
        CompositeWorkload::new(
            "t",
            1 << 20,
            vec![
                Phase {
                    ops: 3,
                    pattern: Pattern::Stream { step: 8 },
                    region: (0, 1024),
                    store_per_mille: 0,
                    compute_cycles: 5,
                },
                Phase {
                    ops: 2,
                    pattern: Pattern::Loop { step: 64 },
                    region: (4096, 256),
                    store_per_mille: 1000,
                    compute_cycles: 1,
                },
            ],
            42,
        )
    }

    #[test]
    fn phases_cycle() {
        let mut w = two_phase();
        for _ in 0..3 {
            assert_eq!(w.current_phase(), 0);
            let op = w.next_op();
            assert!(op.offset < 1024);
            assert_eq!(op.kind, AccessKind::Read);
            assert_eq!(op.compute_cycles, 5);
        }
        for _ in 0..2 {
            let op = w.next_op();
            assert_eq!(w.current_phase(), 1);
            assert!((4096..4096 + 256).contains(&op.offset));
            assert_eq!(op.kind, AccessKind::Write);
        }
        w.next_op();
        assert_eq!(w.current_phase(), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = two_phase();
        let mut b = two_phase();
        for _ in 0..50 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    #[should_panic(expected = "beyond arena")]
    fn oversized_region_panics() {
        CompositeWorkload::new(
            "bad",
            100,
            vec![Phase {
                ops: 1,
                pattern: Pattern::Chase,
                region: (0, 200),
                store_per_mille: 0,
                compute_cycles: 0,
            }],
            1,
        );
    }
}
