#![warn(missing_docs)]

//! # anvil-workloads
//!
//! SPEC CPU2006-integer-like synthetic workload models for the ANVIL
//! (ASPLOS 2016) reproduction. The paper evaluates ANVIL's slowdown
//! (Figure 3/4) and false-positive rate (Tables 4/5) on the SPEC2006
//! integer suite; these models reproduce each benchmark's last-level-cache
//! miss behaviour, DRAM locality, and load/store mix — the only properties
//! those experiments depend on. See `DESIGN.md` §1 for the substitution
//! rationale.
//!
//! ## Quick start
//!
//! ```
//! use anvil_workloads::SpecBenchmark;
//!
//! let mut mcf = SpecBenchmark::Mcf.build(42);
//! let op = mcf.next_op();
//! assert!(op.offset < mcf.arena_bytes());
//! ```

mod composite;
mod op;
mod pattern;
mod spec;
mod trace;

pub use composite::{CompositeWorkload, Phase};
pub use op::{Workload, WorkloadOp};
pub use pattern::{Pattern, PatternState};
pub use spec::{SpecBenchmark, WorkloadModel};
pub use trace::{record_trace, TraceParseError, TraceWorkload};
