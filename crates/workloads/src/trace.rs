//! Trace-driven workloads: record a run, replay it elsewhere.
//!
//! The paper's methodology leans on trace thinking throughout (hit/miss
//! traces for policy fingerprinting, sampled address traces for
//! detection). This module gives downstream users the same capability for
//! whole workloads: capture any [`Workload`]'s operation stream to a
//! compact text format, or bring their own traces (e.g. converted from a
//! Pin/Valgrind capture) and run them on the simulated platform.
//!
//! # Format
//!
//! One operation per line: `R|W <hex offset> [compute_cycles]`, with `#`
//! comments and blank lines ignored:
//!
//! ```text
//! # my trace
//! R 1f40 3
//! W 2000
//! ```

use crate::op::{Workload, WorkloadOp};
use anvil_mem::AccessKind;
use std::fmt::Write as _;

/// A workload that replays a fixed operation sequence, looping at the end.
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    name: String,
    arena_bytes: u64,
    ops: Vec<WorkloadOp>,
    cursor: usize,
}

impl TraceWorkload {
    /// Creates a trace workload from parsed operations.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    pub fn new(name: impl Into<String>, ops: Vec<WorkloadOp>) -> Self {
        assert!(!ops.is_empty(), "trace must contain at least one op");
        let arena_bytes = ops
            .iter()
            .map(|o| o.offset + 8)
            .max()
            .expect("non-empty")
            .next_power_of_two();
        TraceWorkload {
            name: name.into(),
            arena_bytes,
            ops,
            cursor: 0,
        }
    }

    /// Parses the text trace format.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on malformed input.
    pub fn parse(name: impl Into<String>, text: &str) -> Result<Self, TraceParseError> {
        let mut ops = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fields = line.split_whitespace();
            let err = |what: &str| TraceParseError {
                line: lineno + 1,
                message: what.to_string(),
            };
            let kind = match fields.next() {
                Some("R" | "r") => AccessKind::Read,
                Some("W" | "w") => AccessKind::Write,
                other => return Err(err(&format!("expected R or W, got {other:?}"))),
            };
            let offset = fields
                .next()
                .ok_or_else(|| err("missing offset"))
                .and_then(|s| {
                    u64::from_str_radix(s.trim_start_matches("0x"), 16)
                        .map_err(|e| err(&format!("bad offset: {e}")))
                })?;
            let compute_cycles = match fields.next() {
                None => 0,
                Some(s) => s.parse().map_err(|e| err(&format!("bad cycles: {e}")))?,
            };
            if fields.next().is_some() {
                return Err(err("trailing fields"));
            }
            ops.push(WorkloadOp {
                offset,
                kind,
                compute_cycles,
            });
        }
        if ops.is_empty() {
            return Err(TraceParseError {
                line: 0,
                message: "trace contains no operations".into(),
            });
        }
        Ok(Self::new(name, ops))
    }

    /// Serializes back to the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for op in &self.ops {
            let k = match op.kind {
                AccessKind::Read => 'R',
                AccessKind::Write => 'W',
            };
            if op.compute_cycles == 0 {
                let _ = writeln!(out, "{k} {:x}", op.offset);
            } else {
                let _ = writeln!(out, "{k} {:x} {}", op.offset, op.compute_cycles);
            }
        }
        out
    }

    /// Number of operations before the trace loops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl Workload for TraceWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn arena_bytes(&self) -> u64 {
        self.arena_bytes
    }

    fn next_op(&mut self) -> WorkloadOp {
        let op = self.ops[self.cursor];
        self.cursor = (self.cursor + 1) % self.ops.len();
        op
    }
}

/// Error naming the malformed trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number (0: whole-file problem).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

/// Records the first `n` operations of a workload as a replayable trace.
pub fn record_trace(workload: &mut dyn Workload, n: usize) -> TraceWorkload {
    assert!(n > 0, "record at least one op");
    let ops = (0..n).map(|_| workload.next_op()).collect();
    TraceWorkload::new(format!("{}-trace", workload.name()), ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecBenchmark;

    #[test]
    fn parse_round_trip() {
        let text = "# header\nR 1f40 3\nW 2000\n\nr 0x10\n";
        let t = TraceWorkload::parse("demo", text).unwrap();
        assert_eq!(t.len(), 3);
        let re = TraceWorkload::parse("demo2", &t.to_text()).unwrap();
        assert_eq!(re.len(), 3);
        let mut a = t.clone();
        let mut b = re.clone();
        for _ in 0..9 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn replay_loops() {
        let mut t = TraceWorkload::parse("x", "R 0\nW 8\n").unwrap();
        let o1 = t.next_op();
        let _o2 = t.next_op();
        assert_eq!(t.next_op(), o1);
    }

    #[test]
    fn arena_covers_offsets() {
        let t = TraceWorkload::parse("x", "R ff0\n").unwrap();
        assert!(t.arena_bytes() >= 0xff0 + 8);
    }

    #[test]
    fn parse_errors_name_the_line() {
        let e = TraceWorkload::parse("x", "R 10\nQ 20\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains('Q'));
        let e = TraceWorkload::parse("x", "R zz\n").unwrap_err();
        assert!(e.message.contains("bad offset"));
        let e = TraceWorkload::parse("x", "").unwrap_err();
        assert!(e.message.contains("no operations"));
        let e = TraceWorkload::parse("x", "R 10 5 extra\n").unwrap_err();
        assert!(e.message.contains("trailing"));
    }

    #[test]
    fn records_a_spec_model_faithfully() {
        let mut mcf = SpecBenchmark::Mcf.build(4);
        let mut trace = record_trace(mcf.as_mut(), 500);
        // Replaying reproduces the recorded prefix exactly.
        let mut mcf2 = SpecBenchmark::Mcf.build(4);
        for _ in 0..500 {
            assert_eq!(trace.next_op(), mcf2.next_op());
        }
    }
}
