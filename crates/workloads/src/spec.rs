//! The SPEC CPU2006 integer benchmark models.
//!
//! The paper evaluates ANVIL's overhead and false-positive rate on the
//! SPEC2006 integer suite (Section 4.1). The real binaries and inputs are
//! not redistributable, so each benchmark is modeled as a
//! [`CompositeWorkload`] whose phases reproduce the *memory behaviour*
//! that drives every result in the paper: last-level-cache miss rate
//! (which of ANVIL's stage-1 windows trip), DRAM row/bank locality (which
//! stage-2 analyses count as suspicious), and load/store mix (which
//! sampling facility is armed).
//!
//! Calibration targets, from the paper and the standard SPEC2006
//! characterization literature:
//!
//! * `mcf`, `libquantum`, `omnetpp`, `xalancbmk` cross the 20K-misses/6 ms
//!   threshold in 95–99% of windows (Section 4.3);
//! * `h264ref`, `gobmk`, `sjeng`, `hmmer` cross it in <10% of windows;
//! * residual false-positive rates are ≤ ~1 refresh/s, highest for
//!   `bzip2` and `gcc` (Table 4).
//!
//! Each benchmark's phase list is available without instantiating the
//! generator via [`SpecBenchmark::model`]; the static analyzer in
//! `anvil-analyze` derives per-row activation bounds from it.

use crate::composite::{CompositeWorkload, Phase};
use crate::op::Workload;
use crate::pattern::Pattern;
use serde::{Deserialize, Serialize};

const KB: u64 = 1 << 10;
const MB: u64 = 1 << 20;

/// The twelve SPEC CPU2006 integer benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum SpecBenchmark {
    Astar,
    Bzip2,
    Gcc,
    Gobmk,
    H264ref,
    Hmmer,
    Libquantum,
    Mcf,
    Omnetpp,
    Perlbench,
    Sjeng,
    Xalancbmk,
}

/// The static description of one benchmark model: everything
/// [`SpecBenchmark::build`] feeds the generator, minus the seed.
///
/// This is the workload side of the analysis IR — phase lists are plain
/// data, so per-row activation bounds can be derived from them without
/// running a single simulated access.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WorkloadModel {
    /// Benchmark name as it appears in the paper's tables.
    pub name: &'static str,
    /// Bytes of memory the workload maps.
    pub arena_bytes: u64,
    /// The cyclic phase sequence.
    pub phases: Vec<Phase>,
}

impl WorkloadModel {
    /// Lower bound on the cycles one full rotation through the phase list
    /// takes, charging every operation only its compute cycles plus
    /// `min_op_cycles` (e.g. an L1 hit). Saturates instead of overflowing
    /// for the effectively-infinite single-phase models.
    pub fn rotation_cycles_floor(&self, min_op_cycles: u64) -> u64 {
        self.phases.iter().fold(0u64, |acc, p| {
            acc.saturating_add(p.ops.saturating_mul(p.compute_cycles + min_op_cycles))
        })
    }
}

impl SpecBenchmark {
    /// All twelve benchmarks, in alphabetical order (as in Table 4).
    pub fn all() -> [SpecBenchmark; 12] {
        use SpecBenchmark::{
            Astar, Bzip2, Gcc, Gobmk, H264ref, Hmmer, Libquantum, Mcf, Omnetpp, Perlbench, Sjeng,
            Xalancbmk,
        };
        [
            Astar, Bzip2, Gcc, Gobmk, H264ref, Hmmer, Libquantum, Mcf, Omnetpp, Perlbench, Sjeng,
            Xalancbmk,
        ]
    }

    /// The memory-intensive trio the paper uses as background load for the
    /// "heavy load" detection experiments (Section 4.2): mcf, libquantum
    /// and omnetpp.
    pub fn memory_intensive() -> [SpecBenchmark; 3] {
        [
            SpecBenchmark::Mcf,
            SpecBenchmark::Libquantum,
            SpecBenchmark::Omnetpp,
        ]
    }

    /// The five-benchmark subset of Figure 4 / Table 5, chosen by the
    /// authors as representative of the suite's access characteristics.
    pub fn figure4_subset() -> [SpecBenchmark; 5] {
        [
            SpecBenchmark::Bzip2,
            SpecBenchmark::Gcc,
            SpecBenchmark::Gobmk,
            SpecBenchmark::Libquantum,
            SpecBenchmark::Perlbench,
        ]
    }

    /// Benchmark name as it appears in the paper's tables.
    pub fn name(&self) -> &'static str {
        self.model().name
    }

    /// The static phase-level description of this benchmark.
    pub fn model(&self) -> WorkloadModel {
        match self {
            // Pointer-chasing over a huge sparse graph: misses nearly
            // every access, no row locality at all.
            SpecBenchmark::Mcf => WorkloadModel {
                name: "mcf",
                arena_bytes: 64 * MB,
                phases: vec![Phase {
                    ops: u64::MAX / 2,
                    pattern: Pattern::Chase,
                    region: (0, 64 * MB),
                    store_per_mille: 150,
                    compute_cycles: 2,
                }],
            },

            // Streaming sweeps over the quantum-state vector: one miss per
            // cache line, sequential rows, heavy store traffic.
            SpecBenchmark::Libquantum => WorkloadModel {
                name: "libquantum",
                arena_bytes: 32 * MB,
                phases: vec![Phase {
                    ops: u64::MAX / 2,
                    pattern: Pattern::Stream { step: 8 },
                    region: (0, 32 * MB),
                    store_per_mille: 350,
                    compute_cycles: 2,
                }],
            },

            // Discrete-event simulation: scattered heap traffic with a
            // modest hot event-queue region.
            SpecBenchmark::Omnetpp => WorkloadModel {
                name: "omnetpp",
                arena_bytes: 48 * MB,
                phases: vec![Phase {
                    ops: u64::MAX / 2,
                    pattern: Pattern::HotScan {
                        step: 64,
                        hot_bytes: 256 * KB,
                        hot_per_mille: 200,
                    },
                    region: (0, 48 * MB),
                    store_per_mille: 200,
                    compute_cycles: 3,
                }],
            },

            // XML transformation: alternating tree chases and text
            // streaming.
            SpecBenchmark::Xalancbmk => WorkloadModel {
                name: "xalancbmk",
                arena_bytes: 40 * MB,
                phases: vec![
                    Phase {
                        ops: 60_000,
                        pattern: Pattern::Chase,
                        region: (0, 24 * MB),
                        store_per_mille: 150,
                        compute_cycles: 3,
                    },
                    Phase {
                        ops: 40_000,
                        pattern: Pattern::Stream { step: 16 },
                        region: (24 * MB, 16 * MB),
                        store_per_mille: 150,
                        compute_cycles: 3,
                    },
                ],
            },

            // Path-finding: a map scan with a hot open-list.
            SpecBenchmark::Astar => WorkloadModel {
                name: "astar",
                arena_bytes: 16 * MB,
                phases: vec![Phase {
                    ops: u64::MAX / 2,
                    pattern: Pattern::HotScan {
                        step: 64,
                        hot_bytes: 32 * KB,
                        hot_per_mille: 60,
                    },
                    region: (0, 16 * MB),
                    store_per_mille: 100,
                    compute_cycles: 6,
                }],
            },

            // Compiler: cache-resident passes punctuated by whole-IR walks
            // and a symbol-table-heavy phase with a strongly hot region —
            // the source of gcc's comparatively high false-positive rate.
            SpecBenchmark::Gcc => WorkloadModel {
                name: "gcc",
                arena_bytes: 24 * MB,
                phases: vec![
                    Phase {
                        ops: 250_000,
                        pattern: Pattern::Loop { step: 64 },
                        region: (0, MB),
                        store_per_mille: 250,
                        compute_cycles: 3,
                    },
                    Phase {
                        // Symbol-table pass: random access over a 6 MB
                        // region (few DRAM rows, heavy misses) — gcc's
                        // false-positive source.
                        ops: 60_000,
                        pattern: Pattern::Chase,
                        region: (0, 6 * MB),
                        store_per_mille: 250,
                        compute_cycles: 3,
                    },
                    Phase {
                        ops: 40_000,
                        pattern: Pattern::Chase,
                        region: (0, 24 * MB),
                        store_per_mille: 250,
                        compute_cycles: 3,
                    },
                ],
            },

            // Block compression: streaming input plus sort phases that
            // hammer a small hot table — the suite's highest FP rate.
            SpecBenchmark::Bzip2 => WorkloadModel {
                name: "bzip2",
                arena_bytes: 8 * MB,
                phases: vec![
                    Phase {
                        ops: 150_000,
                        pattern: Pattern::Stream { step: 8 },
                        region: (0, 8 * MB),
                        store_per_mille: 300,
                        compute_cycles: 4,
                    },
                    Phase {
                        // Block-sort phase: random access over one 4 MB
                        // block — slightly bigger than the LLC, so it
                        // misses heavily over only ~512 DRAM rows. The
                        // resulting sample collisions are the source of
                        // bzip2's suite-leading false-positive rate.
                        ops: 150_000,
                        pattern: Pattern::Chase,
                        region: (0, 4 * MB),
                        store_per_mille: 300,
                        compute_cycles: 4,
                    },
                ],
            },

            // Go engine: board evaluation is cache-resident; occasional
            // pattern-library bursts miss.
            SpecBenchmark::Gobmk => WorkloadModel {
                name: "gobmk",
                arena_bytes: 8 * MB,
                phases: vec![
                    Phase {
                        ops: 300_000,
                        pattern: Pattern::Loop { step: 64 },
                        region: (0, 512 * KB),
                        store_per_mille: 150,
                        compute_cycles: 20,
                    },
                    Phase {
                        // Pattern-library burst: random walks over a 4 MB
                        // library — misses concentrate on few rows, the
                        // source of gobmk's occasional false positives.
                        ops: 80_000,
                        pattern: Pattern::Chase,
                        region: (0, 4 * MB),
                        store_per_mille: 150,
                        compute_cycles: 4,
                    },
                ],
            },

            // Video encoder: blocked, cache-resident.
            SpecBenchmark::H264ref => WorkloadModel {
                name: "h264ref",
                arena_bytes: 4 * MB,
                phases: vec![Phase {
                    ops: u64::MAX / 2,
                    pattern: Pattern::Loop { step: 64 },
                    region: (0, 256 * KB),
                    store_per_mille: 200,
                    compute_cycles: 30,
                }],
            },

            // Profile HMM search: small tables, compute-bound.
            SpecBenchmark::Hmmer => WorkloadModel {
                name: "hmmer",
                arena_bytes: 4 * MB,
                phases: vec![Phase {
                    ops: u64::MAX / 2,
                    pattern: Pattern::Loop { step: 8 },
                    region: (0, 128 * KB),
                    store_per_mille: 100,
                    compute_cycles: 25,
                }],
            },

            // Chess engine: hash table fits the LLC.
            SpecBenchmark::Sjeng => WorkloadModel {
                name: "sjeng",
                arena_bytes: 4 * MB,
                phases: vec![Phase {
                    ops: u64::MAX / 2,
                    pattern: Pattern::Loop { step: 64 },
                    region: (0, 1536 * KB),
                    store_per_mille: 150,
                    compute_cycles: 30,
                }],
            },

            // Interpreter: mostly cache-resident with rare heap walks.
            SpecBenchmark::Perlbench => WorkloadModel {
                name: "perlbench",
                arena_bytes: 8 * MB,
                phases: vec![
                    Phase {
                        ops: 800_000,
                        pattern: Pattern::Loop { step: 64 },
                        region: (0, 512 * KB),
                        store_per_mille: 250,
                        compute_cycles: 20,
                    },
                    Phase {
                        ops: 8_000,
                        pattern: Pattern::Chase,
                        region: (0, 4 * MB),
                        store_per_mille: 250,
                        compute_cycles: 5,
                    },
                ],
            },
        }
    }

    /// Instantiates the benchmark model.
    pub fn build(&self, seed: u64) -> Box<dyn Workload> {
        let seed = seed ^ (*self as u64) << 32;
        let m = self.model();
        Box::new(CompositeWorkload::new(
            m.name,
            m.arena_bytes,
            m.phases,
            seed,
        ))
    }
}

impl std::fmt::Display for SpecBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_build_and_generate() {
        for b in SpecBenchmark::all() {
            let mut w = b.build(1);
            assert_eq!(w.name(), b.name());
            for _ in 0..10_000 {
                let op = w.next_op();
                assert!(op.offset < w.arena_bytes(), "{b}: op out of arena");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = SpecBenchmark::Gcc.build(9);
        let mut b = SpecBenchmark::Gcc.build(9);
        for _ in 0..1000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SpecBenchmark::Mcf.build(1);
        let mut b = SpecBenchmark::Mcf.build(2);
        let same = (0..100).filter(|_| a.next_op() == b.next_op()).count();
        assert!(same < 100);
    }

    #[test]
    fn memory_intensive_trio_matches_paper() {
        let names: Vec<&str> = SpecBenchmark::memory_intensive()
            .iter()
            .map(|b| b.name())
            .collect();
        assert_eq!(names, vec!["mcf", "libquantum", "omnetpp"]);
    }

    #[test]
    fn figure4_subset_matches_paper() {
        let names: Vec<&str> = SpecBenchmark::figure4_subset()
            .iter()
            .map(|b| b.name())
            .collect();
        assert_eq!(
            names,
            vec!["bzip2", "gcc", "gobmk", "libquantum", "perlbench"]
        );
    }

    #[test]
    fn compute_bound_models_have_small_regions() {
        // The <10%-of-windows benchmarks must have cache-resident primary
        // phases (under 3 MB of LLC).
        for b in [
            SpecBenchmark::H264ref,
            SpecBenchmark::Hmmer,
            SpecBenchmark::Sjeng,
        ] {
            let w = b.build(1);
            assert!(w.arena_bytes() <= 4 * MB);
        }
    }

    #[test]
    fn model_matches_built_workload() {
        for b in SpecBenchmark::all() {
            let m = b.model();
            let w = b.build(3);
            assert_eq!(m.name, w.name());
            assert_eq!(m.arena_bytes, w.arena_bytes());
            assert!(!m.phases.is_empty());
            for p in &m.phases {
                let (base, bytes) = p.region;
                assert!(base + bytes <= m.arena_bytes);
            }
        }
    }

    #[test]
    fn rotation_floor_saturates_for_endless_models() {
        let m = SpecBenchmark::Mcf.model();
        assert_eq!(m.rotation_cycles_floor(2), u64::MAX);
        let g = SpecBenchmark::Gcc.model();
        // 350K ops at >= 5 cycles each.
        assert!(g.rotation_cycles_floor(2) >= 350_000 * 5);
    }
}
