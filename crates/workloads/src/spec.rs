//! The SPEC CPU2006 integer benchmark models.
//!
//! The paper evaluates ANVIL's overhead and false-positive rate on the
//! SPEC2006 integer suite (Section 4.1). The real binaries and inputs are
//! not redistributable, so each benchmark is modeled as a
//! [`CompositeWorkload`] whose phases reproduce the *memory behaviour*
//! that drives every result in the paper: last-level-cache miss rate
//! (which of ANVIL's stage-1 windows trip), DRAM row/bank locality (which
//! stage-2 analyses count as suspicious), and load/store mix (which
//! sampling facility is armed).
//!
//! Calibration targets, from the paper and the standard SPEC2006
//! characterization literature:
//!
//! * `mcf`, `libquantum`, `omnetpp`, `xalancbmk` cross the 20K-misses/6 ms
//!   threshold in 95–99% of windows (Section 4.3);
//! * `h264ref`, `gobmk`, `sjeng`, `hmmer` cross it in <10% of windows;
//! * residual false-positive rates are ≤ ~1 refresh/s, highest for
//!   `bzip2` and `gcc` (Table 4).

use crate::composite::{CompositeWorkload, Phase};
use crate::op::Workload;
use crate::pattern::Pattern;
use serde::{Deserialize, Serialize};

const KB: u64 = 1 << 10;
const MB: u64 = 1 << 20;

/// The twelve SPEC CPU2006 integer benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum SpecBenchmark {
    Astar,
    Bzip2,
    Gcc,
    Gobmk,
    H264ref,
    Hmmer,
    Libquantum,
    Mcf,
    Omnetpp,
    Perlbench,
    Sjeng,
    Xalancbmk,
}

impl SpecBenchmark {
    /// All twelve benchmarks, in alphabetical order (as in Table 4).
    pub fn all() -> [SpecBenchmark; 12] {
        use SpecBenchmark::*;
        [
            Astar, Bzip2, Gcc, Gobmk, H264ref, Hmmer, Libquantum, Mcf, Omnetpp, Perlbench,
            Sjeng, Xalancbmk,
        ]
    }

    /// The memory-intensive trio the paper uses as background load for the
    /// "heavy load" detection experiments (Section 4.2): mcf, libquantum
    /// and omnetpp.
    pub fn memory_intensive() -> [SpecBenchmark; 3] {
        [SpecBenchmark::Mcf, SpecBenchmark::Libquantum, SpecBenchmark::Omnetpp]
    }

    /// The five-benchmark subset of Figure 4 / Table 5, chosen by the
    /// authors as representative of the suite's access characteristics.
    pub fn figure4_subset() -> [SpecBenchmark; 5] {
        [
            SpecBenchmark::Bzip2,
            SpecBenchmark::Gcc,
            SpecBenchmark::Gobmk,
            SpecBenchmark::Libquantum,
            SpecBenchmark::Perlbench,
        ]
    }

    /// Benchmark name as it appears in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            SpecBenchmark::Astar => "astar",
            SpecBenchmark::Bzip2 => "bzip2",
            SpecBenchmark::Gcc => "gcc",
            SpecBenchmark::Gobmk => "gobmk",
            SpecBenchmark::H264ref => "h264ref",
            SpecBenchmark::Hmmer => "hmmer",
            SpecBenchmark::Libquantum => "libquantum",
            SpecBenchmark::Mcf => "mcf",
            SpecBenchmark::Omnetpp => "omnetpp",
            SpecBenchmark::Perlbench => "perlbench",
            SpecBenchmark::Sjeng => "sjeng",
            SpecBenchmark::Xalancbmk => "xalancbmk",
        }
    }

    /// Instantiates the benchmark model.
    pub fn build(&self, seed: u64) -> Box<dyn Workload> {
        let seed = seed ^ (*self as u64) << 32;
        let w = match self {
            // Pointer-chasing over a huge sparse graph: misses nearly
            // every access, no row locality at all.
            SpecBenchmark::Mcf => CompositeWorkload::new(
                "mcf",
                64 * MB,
                vec![Phase {
                    ops: u64::MAX / 2,
                    pattern: Pattern::Chase,
                    region: (0, 64 * MB),
                    store_per_mille: 150,
                    compute_cycles: 2,
                }],
                seed,
            ),

            // Streaming sweeps over the quantum-state vector: one miss per
            // cache line, sequential rows, heavy store traffic.
            SpecBenchmark::Libquantum => CompositeWorkload::new(
                "libquantum",
                32 * MB,
                vec![Phase {
                    ops: u64::MAX / 2,
                    pattern: Pattern::Stream { step: 8 },
                    region: (0, 32 * MB),
                    store_per_mille: 350,
                    compute_cycles: 2,
                }],
                seed,
            ),

            // Discrete-event simulation: scattered heap traffic with a
            // modest hot event-queue region.
            SpecBenchmark::Omnetpp => CompositeWorkload::new(
                "omnetpp",
                48 * MB,
                vec![Phase {
                    ops: u64::MAX / 2,
                    pattern: Pattern::HotScan {
                        step: 64,
                        hot_bytes: 256 * KB,
                        hot_per_mille: 200,
                    },
                    region: (0, 48 * MB),
                    store_per_mille: 200,
                    compute_cycles: 3,
                }],
                seed,
            ),

            // XML transformation: alternating tree chases and text
            // streaming.
            SpecBenchmark::Xalancbmk => CompositeWorkload::new(
                "xalancbmk",
                40 * MB,
                vec![
                    Phase {
                        ops: 60_000,
                        pattern: Pattern::Chase,
                        region: (0, 24 * MB),
                        store_per_mille: 150,
                        compute_cycles: 3,
                    },
                    Phase {
                        ops: 40_000,
                        pattern: Pattern::Stream { step: 16 },
                        region: (24 * MB, 16 * MB),
                        store_per_mille: 150,
                        compute_cycles: 3,
                    },
                ],
                seed,
            ),

            // Path-finding: a map scan with a hot open-list.
            SpecBenchmark::Astar => CompositeWorkload::new(
                "astar",
                16 * MB,
                vec![Phase {
                    ops: u64::MAX / 2,
                    pattern: Pattern::HotScan {
                        step: 64,
                        hot_bytes: 32 * KB,
                        hot_per_mille: 60,
                    },
                    region: (0, 16 * MB),
                    store_per_mille: 100,
                    compute_cycles: 6,
                }],
                seed,
            ),

            // Compiler: cache-resident passes punctuated by whole-IR walks
            // and a symbol-table-heavy phase with a strongly hot region —
            // the source of gcc's comparatively high false-positive rate.
            SpecBenchmark::Gcc => CompositeWorkload::new(
                "gcc",
                24 * MB,
                vec![
                    Phase {
                        ops: 250_000,
                        pattern: Pattern::Loop { step: 64 },
                        region: (0, MB),
                        store_per_mille: 250,
                        compute_cycles: 3,
                    },
                    Phase {
                        // Symbol-table pass: random access over a 6 MB
                        // region (few DRAM rows, heavy misses) — gcc's
                        // false-positive source.
                        ops: 60_000,
                        pattern: Pattern::Chase,
                        region: (0, 6 * MB),
                        store_per_mille: 250,
                        compute_cycles: 3,
                    },
                    Phase {
                        ops: 40_000,
                        pattern: Pattern::Chase,
                        region: (0, 24 * MB),
                        store_per_mille: 250,
                        compute_cycles: 3,
                    },
                ],
                seed,
            ),

            // Block compression: streaming input plus sort phases that
            // hammer a small hot table — the suite's highest FP rate.
            SpecBenchmark::Bzip2 => CompositeWorkload::new(
                "bzip2",
                8 * MB,
                vec![
                    Phase {
                        ops: 150_000,
                        pattern: Pattern::Stream { step: 8 },
                        region: (0, 8 * MB),
                        store_per_mille: 300,
                        compute_cycles: 4,
                    },
                    Phase {
                        // Block-sort phase: random access over one 4 MB
                        // block — slightly bigger than the LLC, so it
                        // misses heavily over only ~512 DRAM rows. The
                        // resulting sample collisions are the source of
                        // bzip2's suite-leading false-positive rate.
                        ops: 150_000,
                        pattern: Pattern::Chase,
                        region: (0, 4 * MB),
                        store_per_mille: 300,
                        compute_cycles: 4,
                    },
                ],
                seed,
            ),

            // Go engine: board evaluation is cache-resident; occasional
            // pattern-library bursts miss.
            SpecBenchmark::Gobmk => CompositeWorkload::new(
                "gobmk",
                8 * MB,
                vec![
                    Phase {
                        ops: 300_000,
                        pattern: Pattern::Loop { step: 64 },
                        region: (0, 512 * KB),
                        store_per_mille: 150,
                        compute_cycles: 20,
                    },
                    Phase {
                        // Pattern-library burst: random walks over a 4 MB
                        // library — misses concentrate on few rows, the
                        // source of gobmk's occasional false positives.
                        ops: 80_000,
                        pattern: Pattern::Chase,
                        region: (0, 4 * MB),
                        store_per_mille: 150,
                        compute_cycles: 4,
                    },
                ],
                seed,
            ),

            // Video encoder: blocked, cache-resident.
            SpecBenchmark::H264ref => CompositeWorkload::new(
                "h264ref",
                4 * MB,
                vec![Phase {
                    ops: u64::MAX / 2,
                    pattern: Pattern::Loop { step: 64 },
                    region: (0, 256 * KB),
                    store_per_mille: 200,
                    compute_cycles: 30,
                }],
                seed,
            ),

            // Profile HMM search: small tables, compute-bound.
            SpecBenchmark::Hmmer => CompositeWorkload::new(
                "hmmer",
                4 * MB,
                vec![Phase {
                    ops: u64::MAX / 2,
                    pattern: Pattern::Loop { step: 8 },
                    region: (0, 128 * KB),
                    store_per_mille: 100,
                    compute_cycles: 25,
                }],
                seed,
            ),

            // Chess engine: hash table fits the LLC.
            SpecBenchmark::Sjeng => CompositeWorkload::new(
                "sjeng",
                4 * MB,
                vec![Phase {
                    ops: u64::MAX / 2,
                    pattern: Pattern::Loop { step: 64 },
                    region: (0, 1536 * KB),
                    store_per_mille: 150,
                    compute_cycles: 30,
                }],
                seed,
            ),

            // Interpreter: mostly cache-resident with rare heap walks.
            SpecBenchmark::Perlbench => CompositeWorkload::new(
                "perlbench",
                8 * MB,
                vec![
                    Phase {
                        ops: 800_000,
                        pattern: Pattern::Loop { step: 64 },
                        region: (0, 512 * KB),
                        store_per_mille: 250,
                        compute_cycles: 20,
                    },
                    Phase {
                        ops: 8_000,
                        pattern: Pattern::Chase,
                        region: (0, 4 * MB),
                        store_per_mille: 250,
                        compute_cycles: 5,
                    },
                ],
                seed,
            ),
        };
        Box::new(w)
    }
}

impl std::fmt::Display for SpecBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_build_and_generate() {
        for b in SpecBenchmark::all() {
            let mut w = b.build(1);
            assert_eq!(w.name(), b.name());
            for _ in 0..10_000 {
                let op = w.next_op();
                assert!(op.offset < w.arena_bytes(), "{b}: op out of arena");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = SpecBenchmark::Gcc.build(9);
        let mut b = SpecBenchmark::Gcc.build(9);
        for _ in 0..1000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SpecBenchmark::Mcf.build(1);
        let mut b = SpecBenchmark::Mcf.build(2);
        let same = (0..100).filter(|_| a.next_op() == b.next_op()).count();
        assert!(same < 100);
    }

    #[test]
    fn memory_intensive_trio_matches_paper() {
        let names: Vec<&str> = SpecBenchmark::memory_intensive()
            .iter()
            .map(|b| b.name())
            .collect();
        assert_eq!(names, vec!["mcf", "libquantum", "omnetpp"]);
    }

    #[test]
    fn figure4_subset_matches_paper() {
        let names: Vec<&str> = SpecBenchmark::figure4_subset().iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["bzip2", "gcc", "gobmk", "libquantum", "perlbench"]);
    }

    #[test]
    fn compute_bound_models_have_small_regions() {
        // The <10%-of-windows benchmarks must have cache-resident primary
        // phases (under 3 MB of LLC).
        for b in [
            SpecBenchmark::H264ref,
            SpecBenchmark::Hmmer,
            SpecBenchmark::Sjeng,
        ] {
            let w = b.build(1);
            assert!(w.arena_bytes() <= 4 * MB);
        }
    }
}
