//! Property-based tests of the replacement policies and the hierarchy.

use anvil_cache::{Cache, CacheConfig, CacheHierarchy, HierarchyConfig, HitLevel, PolicyKind};
use proptest::prelude::*;

fn cache(policy: PolicyKind, ways: usize) -> Cache {
    Cache::new(CacheConfig {
        capacity_bytes: (ways * 64 * 8) as u64, // 8 sets
        ways,
        line_bytes: 64,
        policy,
        latency: 4,
    })
}

proptest! {
    /// Working sets that fit in one set never miss after the first touch,
    /// under every deterministic policy ("reuse hits").
    #[test]
    fn resident_working_set_always_hits(
        policy_sel in 0usize..5,
        ways in 2usize..=16,
        rounds in 1usize..20,
    ) {
        let policy = PolicyKind::deterministic_candidates()[policy_sel];
        let mut c = cache(policy, ways);
        // `ways` distinct lines, all mapping to set 0 (stride = 8 sets * 64).
        let addrs: Vec<u64> = (0..ways as u64).map(|i| i * 512).collect();
        for &a in &addrs {
            c.access(a, false);
        }
        let misses_before = c.stats().misses();
        for _ in 0..rounds {
            for &a in &addrs {
                c.access(a, false);
            }
        }
        prop_assert_eq!(c.stats().misses(), misses_before, "{} evicted a resident set", policy);
    }

    /// Victim selection always returns a way in range, and an eviction
    /// always makes room (the set never exceeds its associativity).
    #[test]
    fn eviction_always_makes_room(
        policy_sel in 0usize..5,
        addrs in prop::collection::vec(0u64..(1 << 14), 1..500),
    ) {
        let policy = PolicyKind::deterministic_candidates()[policy_sel];
        let mut c = cache(policy, 4);
        for &a in &addrs {
            let r = c.access(a, false);
            if !r.hit {
                // After a fill, the line must be present.
                prop_assert!(c.probe(a));
            }
            prop_assert!(c.resident_lines() <= 32);
        }
    }

    /// CLFLUSH-equivalence: invalidating a line and re-accessing it always
    /// misses, under every policy and any prior history.
    #[test]
    fn invalidate_then_access_misses(
        policy_sel in 0usize..5,
        warmup in prop::collection::vec(0u64..(1 << 13), 0..100),
        target in 0u64..(1 << 13),
    ) {
        let policy = PolicyKind::deterministic_candidates()[policy_sel];
        let mut c = cache(policy, 8);
        for &a in &warmup {
            c.access(a, false);
        }
        c.access(target, false);
        c.invalidate(target);
        prop_assert!(!c.access(target, false).hit);
    }

    /// The hierarchy's CLFLUSH makes the next access a full DRAM access,
    /// independent of history — the primitive the CLFLUSH attack rests on.
    #[test]
    fn clflush_always_reaches_memory(
        warmup in prop::collection::vec(0u64..(1 << 16), 0..200),
        target in 0u64..(1 << 16),
    ) {
        let mut h = CacheHierarchy::new(HierarchyConfig::tiny());
        for &a in &warmup {
            h.access(a, false);
        }
        h.access(target, false);
        h.clflush(target);
        prop_assert_eq!(h.access(target, false).level, HitLevel::Memory);
    }

    /// Eviction sets work against every deterministic policy: touching
    /// `2 x ways` same-set lines evicts any given target (thrash bound).
    #[test]
    fn oversubscription_evicts(policy_sel in 0usize..5) {
        let policy = PolicyKind::deterministic_candidates()[policy_sel];
        let mut c = cache(policy, 4);
        let target = 0u64;
        c.access(target, false);
        // 8 distinct same-set lines, twice each, none equal to target.
        for round in 0..2 {
            for i in 1..=8u64 {
                c.access(i * 512, false);
                let _ = round;
            }
        }
        prop_assert!(!c.probe(target), "{}: target survived oversubscription", policy);
    }
}
