//! Cache statistics.

use serde::{Deserialize, Serialize};

/// Hit/miss counters for one cache (or one hierarchy level).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups served by this cache.
    pub accesses: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Lines evicted to make room for fills.
    pub evictions: u64,
    /// Evicted lines that were dirty (required writeback).
    pub dirty_evictions: u64,
    /// Lines invalidated (CLFLUSH or inclusive back-invalidation).
    pub invalidations: u64,
}

impl CacheStats {
    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Miss ratio in [0, 1]; zero when no accesses.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let s = CacheStats {
            accesses: 10,
            hits: 7,
            ..Default::default()
        };
        assert_eq!(s.misses(), 3);
        assert!((s.miss_ratio() - 0.3).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }
}
