//! A single set-associative cache.

use crate::config::CacheConfig;
use crate::policy::ReplacementPolicy;
use crate::stats::CacheStats;

/// One cache line's bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    /// Line address (physical address >> line shift).
    line: u64,
    valid: bool,
    dirty: bool,
}

const INVALID: Entry = Entry {
    line: 0,
    valid: false,
    dirty: false,
};

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Physical address of the evicted line (line-aligned).
    pub paddr: u64,
    /// Whether the line was dirty (needs writeback).
    pub dirty: bool,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccess {
    /// Whether the lookup hit.
    pub hit: bool,
    /// A line evicted to make room for the fill (miss path only).
    pub evicted: Option<Evicted>,
}

/// A physically indexed set-associative cache with a pluggable
/// replacement policy.
///
/// Lookups are by physical address; on a miss the line is filled
/// (write-allocate) and the displaced line, if any, is reported so the
/// owner can maintain inclusion or write back dirty data.
///
/// # Examples
///
/// ```
/// use anvil_cache::{Cache, CacheConfig, PolicyKind};
///
/// let mut c = Cache::new(CacheConfig {
///     capacity_bytes: 4096,
///     ways: 4,
///     line_bytes: 64,
///     policy: PolicyKind::TrueLru,
///     latency: 4,
/// });
/// assert!(!c.access(0x80, false).hit);
/// assert!(c.access(0x80, false).hit);
/// ```
#[derive(Debug)]
pub struct Cache {
    sets: usize,
    ways: usize,
    line_shift: u32,
    latency: u64,
    entries: Vec<Entry>,
    policy: Box<dyn ReplacementPolicy>,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CacheConfig::validate`].
    pub fn new(config: CacheConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid cache config: {e}"));
        let sets = config.sets();
        Cache {
            sets,
            ways: config.ways,
            line_shift: config.line_bytes.trailing_zeros(),
            latency: config.latency,
            entries: vec![INVALID; sets * config.ways],
            policy: config.policy.build(sets, config.ways),
            stats: CacheStats::default(),
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Hit latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        1 << self.line_shift
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Bulk-charges `n` hits to resident lines in closed form — the
    /// event-driven engine's alternative to `n` individual
    /// [`access`](Self::access) calls against lines already present.
    ///
    /// Observationally identical to the per-access path **only when the
    /// epoch's footprint is resident and recency-stable**: a hit neither
    /// fills nor evicts, and repeated hits to an already
    /// most-recently-used line leave the replacement state fixed, so the
    /// only observable effect is the two stat counters. An epoch whose
    /// accesses could miss, rotate recency across ways, or dirty new
    /// lines must fall back to per-access stepping.
    pub fn charge_resident_hits(&mut self, n: u64) {
        self.stats.accesses = self.stats.accesses.saturating_add(n);
        self.stats.hits = self.stats.hits.saturating_add(n);
    }

    /// The set index `paddr` maps to.
    pub fn set_of(&self, paddr: u64) -> usize {
        ((paddr >> self.line_shift) & (self.sets as u64 - 1)) as usize
    }

    fn line_of(&self, paddr: u64) -> u64 {
        paddr >> self.line_shift
    }

    fn find(&self, set: usize, line: u64) -> Option<usize> {
        let base = set * self.ways;
        (0..self.ways).find(|&w| {
            let e = &self.entries[base + w];
            e.valid && e.line == line
        })
    }

    /// Looks up `paddr`, filling on a miss. `write` marks the line dirty.
    pub fn access(&mut self, paddr: u64, write: bool) -> CacheAccess {
        let line = self.line_of(paddr);
        let set = self.set_of(paddr);
        let base = set * self.ways;
        self.stats.accesses = self.stats.accesses.saturating_add(1);

        if let Some(way) = self.find(set, line) {
            self.stats.hits = self.stats.hits.saturating_add(1);
            self.policy.on_hit(set, way);
            if write {
                self.entries[base + way].dirty = true;
            }
            return CacheAccess {
                hit: true,
                evicted: None,
            };
        }

        // Miss: prefer an invalid way, otherwise ask the policy.
        let (way, evicted) =
            if let Some(w) = (0..self.ways).find(|&w| !self.entries[base + w].valid) {
                (w, None)
            } else {
                let w = self.policy.victim(set);
                debug_assert!(w < self.ways, "policy returned way out of range");
                let old = self.entries[base + w];
                self.stats.evictions = self.stats.evictions.saturating_add(1);
                if old.dirty {
                    self.stats.dirty_evictions = self.stats.dirty_evictions.saturating_add(1);
                }
                (
                    w,
                    Some(Evicted {
                        paddr: old.line << self.line_shift,
                        dirty: old.dirty,
                    }),
                )
            };
        self.entries[base + way] = Entry {
            line,
            valid: true,
            dirty: write,
        };
        self.policy.on_fill(set, way);
        CacheAccess {
            hit: false,
            evicted,
        }
    }

    /// Whether `paddr`'s line is present, without touching any state.
    pub fn probe(&self, paddr: u64) -> bool {
        self.find(self.set_of(paddr), self.line_of(paddr)).is_some()
    }

    /// Invalidates `paddr`'s line if present. Returns the line's dirty
    /// flag (`Some(dirty)`) or `None` if it was not cached.
    pub fn invalidate(&mut self, paddr: u64) -> Option<bool> {
        let set = self.set_of(paddr);
        let way = self.find(set, self.line_of(paddr))?;
        let e = &mut self.entries[set * self.ways + way];
        let dirty = e.dirty;
        *e = INVALID;
        self.stats.invalidations = self.stats.invalidations.saturating_add(1);
        self.policy.on_invalidate(set, way);
        Some(dirty)
    }

    /// Invalidates every line, returning the dirty ones' addresses.
    pub fn flush_all(&mut self) -> Vec<u64> {
        let mut dirty = Vec::new();
        for set in 0..self.sets {
            for way in 0..self.ways {
                let e = &mut self.entries[set * self.ways + way];
                if e.valid {
                    if e.dirty {
                        dirty.push(e.line << self.line_shift);
                    }
                    *e = INVALID;
                    self.stats.invalidations = self.stats.invalidations.saturating_add(1);
                    self.policy.on_invalidate(set, way);
                }
            }
        }
        dirty
    }

    /// Number of valid lines currently resident (diagnostic).
    pub fn resident_lines(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;

    fn small(policy: PolicyKind) -> Cache {
        Cache::new(CacheConfig {
            capacity_bytes: 2048, // 8 sets x 4 ways x 64 B
            ways: 4,
            line_bytes: 64,
            policy,
            latency: 4,
        })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small(PolicyKind::TrueLru);
        assert!(!c.access(0x1000, false).hit);
        assert!(c.access(0x1000, false).hit);
        assert!(c.access(0x1004, false).hit, "same line, different offset");
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn eviction_when_set_full() {
        let mut c = small(PolicyKind::TrueLru);
        // 5 lines mapping to set 0 (stride = sets * line = 512 B).
        for i in 0..4u64 {
            assert!(c.access(i * 512, false).evicted.is_none());
        }
        let r = c.access(4 * 512, false);
        assert!(!r.hit);
        assert_eq!(
            r.evicted,
            Some(Evicted {
                paddr: 0,
                dirty: false
            })
        );
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small(PolicyKind::TrueLru);
        c.access(0, true); // dirty
        for i in 1..4u64 {
            c.access(i * 512, false);
        }
        let r = c.access(4 * 512, false);
        assert_eq!(r.evicted.unwrap().dirty, true);
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small(PolicyKind::TrueLru);
        c.access(0, false);
        c.access(0, true);
        for i in 1..4u64 {
            c.access(i * 512, false);
        }
        assert!(c.access(4 * 512, false).evicted.unwrap().dirty);
    }

    #[test]
    fn invalidate_then_miss() {
        let mut c = small(PolicyKind::BitPlru);
        c.access(0x40, true);
        assert_eq!(c.invalidate(0x40), Some(true));
        assert_eq!(c.invalidate(0x40), None);
        assert!(!c.probe(0x40));
        assert!(!c.access(0x40, false).hit);
    }

    #[test]
    fn invalid_way_preferred_over_eviction() {
        let mut c = small(PolicyKind::TrueLru);
        for i in 0..4u64 {
            c.access(i * 512, false);
        }
        c.invalidate(512);
        let r = c.access(4 * 512, false);
        assert!(r.evicted.is_none(), "fill must reuse the invalidated way");
        assert_eq!(c.resident_lines(), 4);
    }

    #[test]
    fn flush_all_returns_dirty_lines() {
        let mut c = small(PolicyKind::TrueLru);
        c.access(0, true);
        c.access(512, false);
        let dirty = c.flush_all();
        assert_eq!(dirty, vec![0]);
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn probe_does_not_change_state() {
        let mut c = small(PolicyKind::TrueLru);
        c.access(0, false);
        let before = *c.stats();
        assert!(c.probe(0));
        assert!(!c.probe(0x40 * 100));
        assert_eq!(*c.stats(), before);
    }

    #[test]
    fn set_mapping_uses_low_line_bits() {
        let c = small(PolicyKind::TrueLru);
        assert_eq!(c.set_of(0), 0);
        assert_eq!(c.set_of(64), 1);
        assert_eq!(c.set_of(64 * 8), 0);
    }
}
