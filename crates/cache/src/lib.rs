#![warn(missing_docs)]

//! # anvil-cache
//!
//! Set-associative cache hierarchy simulator for the ANVIL (ASPLOS 2016)
//! reproduction: the Sandy Bridge i5-2540M three-level hierarchy with an
//! inclusive, sliced, Bit-PLRU last-level cache, CLFLUSH, a zoo of
//! replacement policies, and the replacement-policy fingerprinting
//! methodology from the paper's Section 2.2.
//!
//! The CLFLUSH-free rowhammer attack is entirely a cache phenomenon: the
//! attacker evicts the aggressor lines from an inclusive LLC by touching
//! conflicting addresses in an order tailored to the Bit-PLRU policy, so
//! every re-access of the aggressors reaches DRAM. This crate provides
//! the substrate on which that attack (in `anvil-attacks`) operates.
//!
//! ## Quick start
//!
//! ```
//! use anvil_cache::{CacheHierarchy, HierarchyConfig, HitLevel};
//!
//! let mut h = CacheHierarchy::new(HierarchyConfig::sandy_bridge_i5_2540m());
//! assert_eq!(h.access(0xdead_c0, false).level, HitLevel::Memory); // cold miss
//! assert_eq!(h.access(0xdead_c0, false).level, HitLevel::L1);     // now cached
//! h.clflush(0xdead_c0);                                           // gone again
//! assert_eq!(h.access(0xdead_c0, false).level, HitLevel::Memory);
//! ```

mod cache;
mod config;
mod fingerprint;
mod hierarchy;
pub mod policy;
mod stats;

pub use cache::{Cache, CacheAccess, Evicted};
pub use config::{CacheConfig, HierarchyConfig, PrefetchPolicy};
pub use fingerprint::{fingerprint, FingerprintReport};
pub use hierarchy::{CacheHierarchy, HierarchyAccess, HitLevel};
pub use policy::{PolicyKind, ReplacementPolicy};
pub use stats::CacheStats;
