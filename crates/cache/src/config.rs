//! Cache and hierarchy configuration.

use crate::policy::PolicyKind;
use serde::{Deserialize, Serialize};

/// Hardware prefetcher model.
///
/// Default `None` matches the paper's experiments (rowhammer attack code
/// deliberately defeats prefetchers with irregular strides, and the paper
/// does not model them); `NextLine` is provided for sensitivity studies —
/// prefetches are real DRAM traffic and therefore real activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PrefetchPolicy {
    /// No prefetching (the evaluated configuration).
    #[default]
    None,
    /// On every demand LLC miss, also fetch the next line into L2/L3.
    NextLine,
}

/// Geometry and policy of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes (across all slices for the LLC).
    pub capacity_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Replacement policy.
    pub policy: PolicyKind,
    /// Access latency in CPU cycles (load-to-use on a hit at this level).
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by capacity / ways / line size.
    pub fn sets(&self) -> usize {
        (self.capacity_bytes as usize) / (self.ways * self.line_bytes)
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.ways == 0 || self.line_bytes == 0 || self.capacity_bytes == 0 {
            return Err("cache dimensions must be non-zero".into());
        }
        if !self.line_bytes.is_power_of_two() {
            return Err("line size must be a power of two".into());
        }
        let sets = self.sets();
        if sets == 0 {
            return Err("capacity too small for ways x line".into());
        }
        if !sets.is_power_of_two() {
            return Err(format!("set count must be a power of two, got {sets}"));
        }
        if sets * self.ways * self.line_bytes != self.capacity_bytes as usize {
            return Err("capacity not divisible into sets x ways x lines".into());
        }
        Ok(())
    }
}

/// Configuration of the whole three-level hierarchy.
///
/// The default models the paper's Intel Core i5-2540M (Sandy Bridge):
/// 32 KB 8-way L1D, 256 KB 8-way L2, and a 3 MB 12-way inclusive L3 split
/// into one slice per core (2 slices), with physical set indexing from
/// address bits 6..17 and latencies of 4 / 12 / 29 cycles (the paper's
/// Section 2.2 uses 26–31 cycles for the L3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// L1 data cache.
    pub l1: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Last-level cache (total, across slices).
    pub l3: CacheConfig,
    /// Number of LLC slices (one per core on Sandy Bridge).
    pub l3_slices: usize,
    /// Cost of a CLFLUSH instruction in cycles (beyond the subsequent
    /// memory accesses it causes).
    pub clflush_cost: u64,
    /// Hardware prefetcher.
    pub prefetch: PrefetchPolicy,
}

impl HierarchyConfig {
    /// The paper's Sandy Bridge i5-2540M.
    pub fn sandy_bridge_i5_2540m() -> Self {
        HierarchyConfig {
            l1: CacheConfig {
                capacity_bytes: 32 << 10,
                ways: 8,
                line_bytes: 64,
                policy: PolicyKind::TreePlru,
                latency: 4,
            },
            l2: CacheConfig {
                capacity_bytes: 256 << 10,
                ways: 8,
                line_bytes: 64,
                policy: PolicyKind::TreePlru,
                latency: 12,
            },
            l3: CacheConfig {
                capacity_bytes: 3 << 20,
                ways: 12,
                line_bytes: 64,
                policy: PolicyKind::BitPlru,
                latency: 29,
            },
            l3_slices: 2,
            clflush_cost: 40,
            prefetch: PrefetchPolicy::None,
        }
    }

    /// A small hierarchy for fast tests (16 KB L1, 32 KB L2, 96 KB
    /// 12-way L3 in 2 slices).
    pub fn tiny() -> Self {
        HierarchyConfig {
            l1: CacheConfig {
                capacity_bytes: 16 << 10,
                ways: 8,
                line_bytes: 64,
                policy: PolicyKind::TreePlru,
                latency: 4,
            },
            l2: CacheConfig {
                capacity_bytes: 32 << 10,
                ways: 8,
                line_bytes: 64,
                policy: PolicyKind::TreePlru,
                latency: 12,
            },
            l3: CacheConfig {
                capacity_bytes: 96 << 10,
                ways: 12,
                line_bytes: 64,
                policy: PolicyKind::BitPlru,
                latency: 29,
            },
            l3_slices: 2,
            clflush_cost: 40,
            prefetch: PrefetchPolicy::None,
        }
    }

    /// Checks internal consistency of all levels.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.l1.validate().map_err(|e| format!("L1: {e}"))?;
        self.l2.validate().map_err(|e| format!("L2: {e}"))?;
        self.l3.validate().map_err(|e| format!("L3: {e}"))?;
        if self.l3_slices == 0 || !self.l3_slices.is_power_of_two() {
            return Err("slice count must be a non-zero power of two".into());
        }
        let per_slice_sets = self.l3.sets() / self.l3_slices;
        if per_slice_sets == 0 || !per_slice_sets.is_power_of_two() {
            return Err("L3 sets per slice must be a non-zero power of two".into());
        }
        if self.l1.line_bytes != self.l2.line_bytes || self.l2.line_bytes != self.l3.line_bytes {
            return Err("all levels must share a line size".into());
        }
        if self.l3.capacity_bytes < self.l1.capacity_bytes + self.l2.capacity_bytes {
            return Err("inclusive L3 must be larger than L1+L2".into());
        }
        Ok(())
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::sandy_bridge_i5_2540m()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sandy_bridge_dimensions() {
        let c = HierarchyConfig::sandy_bridge_i5_2540m();
        c.validate().unwrap();
        assert_eq!(c.l1.sets(), 64);
        assert_eq!(c.l2.sets(), 512);
        assert_eq!(c.l3.sets(), 4096);
        assert_eq!(c.l3.sets() / c.l3_slices, 2048); // 11 index bits: PA 6..17
        assert_eq!(c.l3.ways, 12);
    }

    #[test]
    fn tiny_validates() {
        HierarchyConfig::tiny().validate().unwrap();
    }

    #[test]
    fn validation_catches_line_mismatch() {
        let mut c = HierarchyConfig::tiny();
        c.l1.line_bytes = 32;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_non_inclusive_capacity() {
        let mut c = HierarchyConfig::tiny();
        c.l3.capacity_bytes = c.l1.capacity_bytes / 2;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_set_count() {
        let mut c = HierarchyConfig::tiny();
        c.l2.capacity_bytes = 48 << 10; // 96 sets: not a power of two
        assert!(c.validate().unwrap_err().contains("L2"));
    }
}
