//! The three-level cache hierarchy of the simulated Sandy Bridge part.
//!
//! L1D and L2 are private write-back caches; the last-level cache is
//! *inclusive*, physically indexed, and organized into slices (one per
//! core, Section 2.2). Inclusivity is what makes the CLFLUSH-free attack
//! work: "it is enough to evict a word from the last-level cache to bypass
//! the whole cache hierarchy" — evicting a line from the L3 back-invalidates
//! any copy in L1/L2.

use crate::cache::Cache;
use crate::config::HierarchyConfig;
use crate::stats::CacheStats;

/// The level at which an access was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HitLevel {
    /// L1 data cache.
    L1,
    /// Unified L2.
    L2,
    /// Last-level cache.
    L3,
    /// Missed everywhere: the access goes to DRAM.
    Memory,
}

impl HitLevel {
    /// Whether the access missed the last-level cache (the event ANVIL's
    /// stage-1 counter counts).
    pub fn is_llc_miss(&self) -> bool {
        matches!(self, HitLevel::Memory)
    }
}

/// Result of routing one access through the hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyAccess {
    /// Where the data was found.
    pub level: HitLevel,
    /// Cache-side load-to-use latency in cycles. For [`HitLevel::Memory`]
    /// this is the L3 lookup cost only; DRAM latency is added by the
    /// memory system.
    pub latency: u64,
    /// Dirty lines displaced out of the hierarchy that must be written
    /// back to DRAM (line-aligned physical addresses).
    pub writebacks: Vec<u64>,
    /// Lines the prefetcher fetched that missed the LLC and therefore
    /// need a (off-critical-path) DRAM read.
    pub prefetch_fills: Vec<u64>,
}

/// The simulated cache hierarchy.
///
/// # Examples
///
/// ```
/// use anvil_cache::{CacheHierarchy, HierarchyConfig, HitLevel};
///
/// let mut h = CacheHierarchy::new(HierarchyConfig::sandy_bridge_i5_2540m());
/// assert_eq!(h.access(0x4000, false).level, HitLevel::Memory);
/// assert_eq!(h.access(0x4000, false).level, HitLevel::L1);
/// ```
#[derive(Debug)]
pub struct CacheHierarchy {
    config: HierarchyConfig,
    l1: Cache,
    l2: Cache,
    slices: Vec<Cache>,
    slice_shift: u32,
}

impl CacheHierarchy {
    /// Creates the hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`HierarchyConfig::validate`].
    pub fn new(config: HierarchyConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid hierarchy config: {e}"));
        let mut slice_cfg = config.l3;
        slice_cfg.capacity_bytes /= config.l3_slices as u64;
        let slices = (0..config.l3_slices)
            .map(|_| Cache::new(slice_cfg))
            .collect();
        let per_slice_sets = slice_cfg.sets();
        CacheHierarchy {
            l1: Cache::new(config.l1),
            l2: Cache::new(config.l2),
            slices,
            slice_shift: config.l3.line_bytes.trailing_zeros() + per_slice_sets.trailing_zeros(),
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// The LLC slice `paddr` maps to.
    ///
    /// Real Intel parts hash many high physical-address bits into the
    /// slice id (Hund et al., the paper's reference \[12\]); we XOR-fold the
    /// bits above the set index, which has the properties the attack
    /// relies on: stable per address, and uniform across slices.
    pub fn slice_of(&self, paddr: u64) -> usize {
        let n = self.slices.len();
        if n == 1 {
            return 0;
        }
        let mut x = paddr >> self.slice_shift;
        x ^= x >> 17;
        x ^= x >> 9;
        x ^= x >> 5;
        x ^= x >> 3;
        (x as usize) & (n - 1)
    }

    /// (slice, set-within-slice) for `paddr` — everything an eviction-set
    /// builder needs.
    pub fn llc_set_of(&self, paddr: u64) -> (usize, usize) {
        let slice = self.slice_of(paddr);
        (slice, self.slices[slice].set_of(paddr))
    }

    /// LLC associativity.
    pub fn llc_ways(&self) -> usize {
        self.config.l3.ways
    }

    /// Bulk-charges one epoch of `n` L1-resident hits in closed form —
    /// the event-driven engine's alternative to `n` individual
    /// [`access_into`](Self::access_into) calls that would all hit L1.
    ///
    /// Valid under the same condition as
    /// [`Cache::charge_resident_hits`]: the epoch's footprint stays
    /// L1-resident and recency-stable, so nothing below L1 is touched
    /// and the per-access path would have produced exactly these stat
    /// increments with no writebacks or prefetch fills. Any epoch that
    /// could miss L1 must fall back to per-access stepping.
    pub fn charge_epoch(&mut self, n: u64) {
        self.l1.charge_resident_hits(n);
    }

    /// Routes one access through L1 -> L2 -> L3.
    pub fn access(&mut self, paddr: u64, write: bool) -> HierarchyAccess {
        let mut writebacks = Vec::new();
        let mut prefetch_fills = Vec::new();
        let (level, latency) = self.access_into(paddr, write, &mut writebacks, &mut prefetch_fills);
        HierarchyAccess {
            level,
            latency,
            writebacks,
            prefetch_fills,
        }
    }

    /// Allocation-free variant of [`access`](Self::access): displaced
    /// dirty lines and prefetch fills are *appended* to caller-owned
    /// buffers (not cleared first), so a hot loop can reuse one pair of
    /// buffers across millions of accesses. Returns (served level,
    /// cache-side latency).
    pub fn access_into(
        &mut self,
        paddr: u64,
        write: bool,
        writebacks: &mut Vec<u64>,
        prefetch_fills: &mut Vec<u64>,
    ) -> (HitLevel, u64) {
        let r1 = self.l1.access(paddr, write);
        if r1.hit {
            return (HitLevel::L1, self.config.l1.latency);
        }
        if let Some(ev) = r1.evicted {
            if ev.dirty {
                self.writeback_to_l2(ev.paddr, writebacks);
            }
        }

        let r2 = self.l2.access(paddr, false);
        if let Some(ev) = r2.evicted {
            if ev.dirty {
                self.writeback_to_l3(ev.paddr, writebacks);
            }
        }
        if r2.hit {
            return (HitLevel::L2, self.config.l2.latency);
        }

        let slice = self.slice_of(paddr);
        let r3 = self.slices[slice].access(paddr, false);
        if let Some(ev) = r3.evicted {
            self.back_invalidate(ev.paddr, ev.dirty, writebacks);
        }
        let level = if r3.hit {
            HitLevel::L3
        } else {
            HitLevel::Memory
        };

        if level == HitLevel::Memory
            && matches!(
                self.config.prefetch,
                crate::config::PrefetchPolicy::NextLine
            )
        {
            let next = (paddr & !(self.config.l3.line_bytes as u64 - 1))
                + self.config.l3.line_bytes as u64;
            self.prefetch_into_l2_l3(next, writebacks, prefetch_fills);
        }

        (level, self.config.l3.latency)
    }

    /// Brings `line_paddr` into L2 + L3 without touching L1 (the usual
    /// prefetch fill level), recording whether DRAM must supply it.
    fn prefetch_into_l2_l3(
        &mut self,
        line_paddr: u64,
        writebacks: &mut Vec<u64>,
        prefetch_fills: &mut Vec<u64>,
    ) {
        let slice = self.slice_of(line_paddr);
        let r3 = self.slices[slice].access(line_paddr, false);
        if let Some(ev) = r3.evicted {
            self.back_invalidate(ev.paddr, ev.dirty, writebacks);
        }
        if !r3.hit {
            prefetch_fills.push(line_paddr);
        }
        let r2 = self.l2.access(line_paddr, false);
        if let Some(ev) = r2.evicted {
            if ev.dirty {
                self.writeback_to_l3(ev.paddr, writebacks);
            }
        }
    }

    fn writeback_to_l2(&mut self, line_paddr: u64, writebacks: &mut Vec<u64>) {
        let r = self.l2.access(line_paddr, true);
        if let Some(ev) = r.evicted {
            if ev.dirty {
                self.writeback_to_l3(ev.paddr, writebacks);
            }
        }
    }

    fn writeback_to_l3(&mut self, line_paddr: u64, writebacks: &mut Vec<u64>) {
        let slice = self.slice_of(line_paddr);
        let r = self.slices[slice].access(line_paddr, true);
        if let Some(ev) = r.evicted {
            self.back_invalidate(ev.paddr, ev.dirty, writebacks);
        }
    }

    /// Inclusive-LLC eviction: purge the line from the upper levels too.
    fn back_invalidate(&mut self, line_paddr: u64, l3_dirty: bool, writebacks: &mut Vec<u64>) {
        let d1 = self.l1.invalidate(line_paddr).unwrap_or(false);
        let d2 = self.l2.invalidate(line_paddr).unwrap_or(false);
        if l3_dirty || d1 || d2 {
            writebacks.push(line_paddr);
        }
    }

    /// CLFLUSH: invalidates `paddr`'s line at every level. Returns the
    /// dirty line to write back, if any.
    pub fn clflush(&mut self, paddr: u64) -> Option<u64> {
        let d1 = self.l1.invalidate(paddr).unwrap_or(false);
        let d2 = self.l2.invalidate(paddr).unwrap_or(false);
        let slice = self.slice_of(paddr);
        let d3 = self.slices[slice].invalidate(paddr).unwrap_or(false);
        let line = paddr & !(self.config.l3.line_bytes as u64 - 1);
        (d1 || d2 || d3).then_some(line)
    }

    /// Whether `paddr` is present in the LLC (and, by inclusion, possibly
    /// above). Does not modify any state.
    pub fn llc_probe(&self, paddr: u64) -> bool {
        self.slices[self.slice_of(paddr)].probe(paddr)
    }

    /// Whether `paddr` is present at any level. Does not modify state.
    pub fn probe(&self, paddr: u64) -> Option<HitLevel> {
        if self.l1.probe(paddr) {
            Some(HitLevel::L1)
        } else if self.l2.probe(paddr) {
            Some(HitLevel::L2)
        } else if self.llc_probe(paddr) {
            Some(HitLevel::L3)
        } else {
            None
        }
    }

    /// Statistics for (L1, L2, aggregated L3).
    pub fn stats(&self) -> (CacheStats, CacheStats, CacheStats) {
        let mut l3 = CacheStats::default();
        for s in &self.slices {
            let st = s.stats();
            l3.accesses = l3.accesses.saturating_add(st.accesses);
            l3.hits = l3.hits.saturating_add(st.hits);
            l3.evictions = l3.evictions.saturating_add(st.evictions);
            l3.dirty_evictions = l3.dirty_evictions.saturating_add(st.dirty_evictions);
            l3.invalidations = l3.invalidations.saturating_add(st.invalidations);
        }
        (*self.l1.stats(), *self.l2.stats(), l3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> CacheHierarchy {
        CacheHierarchy::new(HierarchyConfig::tiny())
    }

    #[test]
    fn fill_then_hit_l1() {
        let mut h = hierarchy();
        assert_eq!(h.access(0x1000, false).level, HitLevel::Memory);
        assert_eq!(h.access(0x1000, false).level, HitLevel::L1);
        assert_eq!(h.probe(0x1000), Some(HitLevel::L1));
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut h = hierarchy();
        h.access(0, false);
        // Evict line 0 from L1 by filling its set (8 ways; L1 is 16 KB /
        // 8 ways / 64 B = 32 sets, stride 32*64 = 2 KB).
        for i in 1..=8u64 {
            h.access(i * 2048, false);
        }
        let lvl = h.probe(0).unwrap();
        assert!(lvl == HitLevel::L2 || lvl == HitLevel::L3, "got {lvl:?}");
        assert_ne!(h.access(0, false).level, HitLevel::Memory);
    }

    #[test]
    fn clflush_purges_all_levels() {
        let mut h = hierarchy();
        h.access(0x2000, false);
        assert!(h.clflush(0x2000).is_none(), "clean line: no writeback");
        assert_eq!(h.probe(0x2000), None);
        assert_eq!(h.access(0x2000, false).level, HitLevel::Memory);
    }

    #[test]
    fn clflush_dirty_line_writes_back() {
        let mut h = hierarchy();
        h.access(0x2040, true);
        assert_eq!(h.clflush(0x2040), Some(0x2040));
    }

    #[test]
    fn inclusive_l3_eviction_back_invalidates() {
        let mut h = hierarchy();
        let (slice0, set0) = h.llc_set_of(0);
        // Find 13 addresses in the same slice+set (12-way LLC): the 13th
        // fill must evict one of the first 12 from the whole hierarchy.
        let mut conflict = Vec::new();
        let mut pa = 0u64;
        while conflict.len() < 13 {
            if h.llc_set_of(pa) == (slice0, set0) {
                conflict.push(pa);
            }
            pa += 64;
        }
        for &a in &conflict {
            h.access(a, false);
        }
        // Exactly one of the first 12 was evicted; it must be gone from
        // every level (inclusion).
        let missing: Vec<u64> = conflict[..12]
            .iter()
            .copied()
            .filter(|&a| h.probe(a).is_none())
            .collect();
        assert_eq!(missing.len(), 1, "one line back-invalidated: {missing:?}");
    }

    #[test]
    fn dirty_l1_eviction_propagates_to_l2() {
        let mut h = hierarchy();
        h.access(0, true); // dirty in L1
        for i in 1..=8u64 {
            h.access(i * 2048, false); // evict it from L1
        }
        // The dirty line now lives in L2 (as a writeback fill).
        assert!(matches!(h.probe(0), Some(HitLevel::L1 | HitLevel::L2)));
    }

    #[test]
    fn slices_partition_addresses_uniformly() {
        let h = hierarchy();
        let n = 20_000u64;
        let mut counts = vec![0usize; h.config().l3_slices];
        for i in 0..n {
            counts[h.slice_of(i * 64)] += 1;
        }
        for &c in &counts {
            let expected = n as usize / counts.len();
            assert!(
                (expected * 8 / 10..=expected * 12 / 10).contains(&c),
                "slice skew: {counts:?}"
            );
        }
    }

    #[test]
    fn slice_is_stable_per_address() {
        let h = hierarchy();
        for pa in [0u64, 64, 4096, 1 << 20] {
            assert_eq!(h.slice_of(pa), h.slice_of(pa));
        }
    }

    #[test]
    fn llc_miss_flag() {
        assert!(HitLevel::Memory.is_llc_miss());
        assert!(!HitLevel::L3.is_llc_miss());
    }

    #[test]
    fn stats_aggregate() {
        let mut h = hierarchy();
        h.access(0, false);
        h.access(0, false);
        let (l1, l2, l3) = h.stats();
        assert_eq!(l1.accesses, 2);
        assert_eq!(l1.hits, 1);
        assert_eq!(l2.accesses, 1);
        assert_eq!(l3.accesses, 1);
        assert_eq!(l3.hits, 0);
    }
}

#[cfg(test)]
mod prefetch_tests {
    use super::*;
    use crate::config::PrefetchPolicy;

    #[test]
    fn next_line_prefetch_warms_the_next_line() {
        let mut cfg = HierarchyConfig::tiny();
        cfg.prefetch = PrefetchPolicy::NextLine;
        let mut h = CacheHierarchy::new(cfg);
        let r = h.access(0x8000, false);
        assert_eq!(r.level, HitLevel::Memory);
        assert_eq!(
            r.prefetch_fills,
            vec![0x8040],
            "next line fetched from DRAM"
        );
        // The neighbor now hits in L2/L3 without its own memory trip.
        let r2 = h.access(0x8040, false);
        assert_ne!(r2.level, HitLevel::Memory);
    }

    #[test]
    fn prefetch_disabled_by_default() {
        let mut h = CacheHierarchy::new(HierarchyConfig::tiny());
        let r = h.access(0x8000, false);
        assert!(r.prefetch_fills.is_empty());
        assert_eq!(h.access(0x8040, false).level, HitLevel::Memory);
    }

    #[test]
    fn prefetched_line_already_cached_is_free() {
        let mut cfg = HierarchyConfig::tiny();
        cfg.prefetch = PrefetchPolicy::NextLine;
        let mut h = CacheHierarchy::new(cfg);
        h.access(0x8040, false); // bring the "next" line in first
        let r = h.access(0x8000, false);
        assert!(
            r.prefetch_fills.is_empty(),
            "no DRAM fill needed for an already-cached prefetch"
        );
    }

    #[test]
    fn epoch_charge_matches_per_access_resident_hits() {
        let mk = || {
            let mut h = CacheHierarchy::new(HierarchyConfig::tiny());
            h.access(0x8000, false); // fill: the epoch's resident line
            h
        };
        let mut per_op = mk();
        let mut wb = Vec::new();
        let mut pf = Vec::new();
        for _ in 0..10_000 {
            let (level, _) = per_op.access_into(0x8000, false, &mut wb, &mut pf);
            assert_eq!(level, HitLevel::L1);
        }
        let mut epoch = mk();
        epoch.charge_epoch(10_000);
        assert_eq!(per_op.stats(), epoch.stats());
        assert!(wb.is_empty() && pf.is_empty());
        // And the closed form left the replacement state equivalent: the
        // next access still hits L1 in both.
        assert_eq!(per_op.access(0x8000, false).level, HitLevel::L1);
        assert_eq!(epoch.access(0x8000, false).level, HitLevel::L1);
    }
}
