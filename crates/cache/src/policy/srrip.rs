//! Static re-reference interval prediction (SRRIP).

use super::ReplacementPolicy;

/// SRRIP with 2-bit re-reference prediction values (RRPV), after Jaleel et
/// al. (ISCA'10) — the paper's reference \[20\] for the replacement-policy
/// background.
///
/// Lines are inserted with RRPV = 2 ("long re-reference"), promoted to 0 on
/// a hit, and the victim is the lowest-indexed line with RRPV = 3; if none
/// exists, every RRPV is incremented and the scan repeats.
#[derive(Debug, Clone)]
pub struct Srrip {
    ways: usize,
    rrpv: Vec<u8>,
}

const MAX_RRPV: u8 = 3;
const INSERT_RRPV: u8 = 2;

impl Srrip {
    /// Creates the policy for `sets` x `ways`.
    pub fn new(sets: usize, ways: usize) -> Self {
        Srrip {
            ways,
            rrpv: vec![MAX_RRPV; sets * ways],
        }
    }
}

impl ReplacementPolicy for Srrip {
    fn on_hit(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = 0;
    }

    fn on_fill(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = INSERT_RRPV;
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        loop {
            if let Some(w) = (0..self.ways).find(|&w| self.rrpv[base + w] == MAX_RRPV) {
                return w;
            }
            for w in 0..self.ways {
                self.rrpv[base + w] += 1;
            }
        }
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.rrpv[set * self.ways + way] = MAX_RRPV;
    }

    fn name(&self) -> &'static str {
        "srrip"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserted_lines_evicted_before_reused_lines() {
        let mut p = Srrip::new(1, 4);
        for w in 0..4 {
            p.on_fill(0, w);
        }
        p.on_hit(0, 1); // RRPV 0: protected
        let v = p.victim(0);
        assert_ne!(v, 1);
        assert_eq!(v, 0); // lowest index among RRPV-saturated
    }

    #[test]
    fn scan_resistance() {
        // A burst of fills (a streaming scan) must not evict the hot line
        // before the other scan lines.
        let mut p = Srrip::new(1, 4);
        p.on_fill(0, 0);
        p.on_hit(0, 0); // hot
        for _ in 0..8 {
            let v = p.victim(0);
            assert_ne!(v, 0, "hot line evicted by scan");
            p.on_fill(0, v);
        }
    }

    #[test]
    fn invalidate_makes_way_preferred() {
        let mut p = Srrip::new(1, 2);
        p.on_fill(0, 0);
        p.on_fill(0, 1);
        p.on_hit(0, 0);
        p.on_hit(0, 1);
        p.on_invalidate(0, 1);
        assert_eq!(p.victim(0), 1);
    }
}
