//! Cache replacement policies.
//!
//! The CLFLUSH-free attack (paper Section 2.2) hinges on knowing the
//! last-level cache's replacement policy: the authors reverse-engineer
//! Sandy Bridge and find it favors **Bit-PLRU** (a.k.a. MRU-bit
//! replacement, similar to NRU). This module provides that policy plus the
//! zoo of candidates their fingerprinting methodology compares against.

use serde::{Deserialize, Serialize};

mod bit_plru;
mod nru;
mod random;
mod srrip;
mod tree_plru;
mod true_lru;

pub use bit_plru::BitPlru;
pub use nru::Nru;
pub use random::RandomPolicy;
pub use srrip::Srrip;
pub use tree_plru::TreePlru;
pub use true_lru::TrueLru;

/// A per-set replacement policy.
///
/// The cache calls [`on_hit`](Self::on_hit) on hits, asks for a
/// [`victim`](Self::victim) when a fill finds no invalid way, and calls
/// [`on_fill`](Self::on_fill) after the fill. All policies are
/// deterministic given their construction parameters (the random policy
/// takes a seed), which keeps whole-simulation runs reproducible.
pub trait ReplacementPolicy: std::fmt::Debug + Send {
    /// Records a hit to `way` of `set`.
    fn on_hit(&mut self, set: usize, way: usize);

    /// Records a fill into `way` of `set`.
    fn on_fill(&mut self, set: usize, way: usize);

    /// Chooses a victim way in a full `set`.
    fn victim(&mut self, set: usize) -> usize;

    /// Records that `way` of `set` was invalidated (CLFLUSH or inclusive
    /// back-invalidation). Default: no state change — the way becomes
    /// preferred for the next fill through the cache's invalid-way scan,
    /// which matches real parts.
    fn on_invalidate(&mut self, _set: usize, _way: usize) {}

    /// Human-readable policy name (stable; used by fingerprinting).
    fn name(&self) -> &'static str;
}

/// Selects a replacement policy; the serializable counterpart of the
/// trait objects used at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// True least-recently-used.
    TrueLru,
    /// MRU-bit pseudo-LRU — what the paper finds on Sandy Bridge L3.
    BitPlru,
    /// Not-recently-used (clears reference bits at victim-selection time).
    Nru,
    /// Binary-tree pseudo-LRU — common in L1/L2.
    TreePlru,
    /// Static RRIP with 2-bit re-reference predictions.
    Srrip,
    /// Uniform random victim (seeded).
    Random {
        /// RNG seed, so simulations stay reproducible.
        seed: u64,
    },
}

impl PolicyKind {
    /// Instantiates the policy for a cache of `sets` x `ways`.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn build(&self, sets: usize, ways: usize) -> Box<dyn ReplacementPolicy> {
        assert!(sets > 0 && ways > 0, "cache must have sets and ways");
        match *self {
            PolicyKind::TrueLru => Box::new(TrueLru::new(sets, ways)),
            PolicyKind::BitPlru => Box::new(BitPlru::new(sets, ways)),
            PolicyKind::Nru => Box::new(Nru::new(sets, ways)),
            PolicyKind::TreePlru => Box::new(TreePlru::new(sets, ways)),
            PolicyKind::Srrip => Box::new(Srrip::new(sets, ways)),
            PolicyKind::Random { seed } => Box::new(RandomPolicy::new(sets, ways, seed)),
        }
    }

    /// All deterministic candidates, as used by the fingerprinting
    /// methodology (the random policy is excluded: it cannot be matched
    /// trace-for-trace).
    pub fn deterministic_candidates() -> Vec<PolicyKind> {
        vec![
            PolicyKind::TrueLru,
            PolicyKind::BitPlru,
            PolicyKind::Nru,
            PolicyKind::TreePlru,
            PolicyKind::Srrip,
        ]
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PolicyKind::TrueLru => "true-lru",
            PolicyKind::BitPlru => "bit-plru",
            PolicyKind::Nru => "nru",
            PolicyKind::TreePlru => "tree-plru",
            PolicyKind::Srrip => "srrip",
            PolicyKind::Random { .. } => "random",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives any policy through a fill-then-hit workout and checks basic
    /// sanity: victims are in range and filled ways are not immediately
    /// re-victimized.
    fn workout(kind: PolicyKind) {
        let (sets, ways) = (4, 8);
        let mut p = kind.build(sets, ways);
        for set in 0..sets {
            for way in 0..ways {
                p.on_fill(set, way);
            }
        }
        for set in 0..sets {
            for round in 0..64 {
                let v = p.victim(set);
                assert!(v < ways, "{kind}: victim {v} out of range");
                p.on_fill(set, v);
                p.on_hit(set, (round * 3) % ways);
            }
        }
    }

    #[test]
    fn all_policies_survive_workout() {
        for kind in PolicyKind::deterministic_candidates() {
            workout(kind);
        }
        workout(PolicyKind::Random { seed: 9 });
    }

    #[test]
    fn most_recently_filled_way_is_not_the_next_victim() {
        for kind in PolicyKind::deterministic_candidates() {
            let mut p = kind.build(1, 8);
            for way in 0..8 {
                p.on_fill(0, way);
            }
            let v = p.victim(0);
            p.on_fill(0, v);
            assert_ne!(p.victim(0), v, "{kind}: immediately re-victimized fill");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(PolicyKind::BitPlru.to_string(), "bit-plru");
        assert_eq!(PolicyKind::Random { seed: 1 }.to_string(), "random");
    }

    #[test]
    #[should_panic(expected = "sets and ways")]
    fn zero_geometry_panics() {
        PolicyKind::BitPlru.build(0, 8);
    }
}
