//! Binary-tree pseudo-LRU replacement.

use super::ReplacementPolicy;

/// Tree-PLRU: a complete binary tree of direction bits per set. On an
/// access, the bits along the path to the accessed way are pointed *away*
/// from it; the victim is found by following the bits from the root.
/// Standard in L1/L2 caches (and one of the fingerprinting candidates for
/// the LLC).
///
/// Non-power-of-two associativities (like the 12-way Sandy Bridge LLC) are
/// handled by building the tree over the next power of two and steering
/// victim walks away from the non-existent leaves, as real implementations
/// do.
#[derive(Debug, Clone)]
pub struct TreePlru {
    ways: usize,
    /// Tree capacity: `ways` rounded up to a power of two.
    cap: usize,
    /// `cap - 1` tree bits per set, heap order (node 0 is the root).
    bits: Vec<bool>,
}

impl TreePlru {
    /// Creates the policy for `sets` x `ways`.
    pub fn new(sets: usize, ways: usize) -> Self {
        let cap = ways.next_power_of_two();
        TreePlru {
            ways,
            cap,
            bits: vec![false; sets * (cap - 1).max(1)],
        }
    }

    fn levels(&self) -> usize {
        self.cap.trailing_zeros() as usize
    }

    fn touch(&mut self, set: usize, way: usize) {
        if self.cap == 1 {
            return;
        }
        let base = set * (self.cap - 1);
        let mut node = 0usize;
        for level in (0..self.levels()).rev() {
            let bit = (way >> level) & 1;
            // Point away from the accessed way.
            self.bits[base + node] = bit == 0;
            node = 2 * node + 1 + bit;
        }
    }
}

impl ReplacementPolicy for TreePlru {
    fn on_hit(&mut self, set: usize, way: usize) {
        self.touch(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize) {
        self.touch(set, way);
    }

    fn victim(&mut self, set: usize) -> usize {
        if self.cap == 1 {
            return 0;
        }
        let base = set * (self.cap - 1);
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut size = self.cap;
        for _ in 0..self.levels() {
            size /= 2;
            let mut dir = usize::from(self.bits[base + node]);
            // Steer away from leaves that do not exist (ways < cap).
            if dir == 1 && lo + size >= self.ways {
                dir = 0;
            }
            lo += dir * size;
            node = 2 * node + 1 + dir;
        }
        debug_assert!(lo < self.ways);
        lo
    }

    fn name(&self) -> &'static str {
        "tree-plru"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_tree_points_at_way_zero() {
        let mut p = TreePlru::new(1, 8);
        assert_eq!(p.victim(0), 0);
    }

    #[test]
    fn touch_redirects_away() {
        let mut p = TreePlru::new(1, 4);
        p.on_hit(0, 0);
        // Root now points right, right subtree unmodified -> way 2.
        assert_eq!(p.victim(0), 2);
        p.on_hit(0, 2);
        assert_eq!(p.victim(0), 1);
    }

    #[test]
    fn never_evicts_just_touched() {
        let mut p = TreePlru::new(1, 16);
        for i in 0..500usize {
            let w = (i * 5) % 16;
            p.on_hit(0, w);
            assert_ne!(p.victim(0), w);
        }
    }

    #[test]
    fn twelve_ways_stays_in_range() {
        let mut p = TreePlru::new(1, 12);
        for w in 0..12 {
            p.on_fill(0, w);
        }
        for i in 0..2_000usize {
            let w = (i * 7) % 12;
            p.on_hit(0, w);
            let v = p.victim(0);
            assert!(v < 12, "victim {v} out of range");
            assert_ne!(v, w, "evicted the just-touched way");
            p.on_fill(0, v);
        }
    }

    #[test]
    fn single_way_degenerate() {
        let mut p = TreePlru::new(2, 1);
        p.on_fill(1, 0);
        assert_eq!(p.victim(1), 0);
    }
}
