//! Not-recently-used replacement.

use super::ReplacementPolicy;

/// NRU: one reference bit per line, set on access. The victim is the
/// lowest-indexed way with a clear reference bit; if every bit is set *at
/// victim-selection time*, all bits are cleared first (and way 0 is
/// chosen).
///
/// The difference from [`BitPlru`](super::BitPlru) is *when* saturation is
/// resolved: NRU clears lazily at eviction, Bit-PLRU eagerly at the access
/// that would saturate. The two produce different miss traces on the same
/// access pattern, which is how fingerprinting tells them apart.
#[derive(Debug, Clone)]
pub struct Nru {
    ways: usize,
    refbits: Vec<u64>,
}

impl Nru {
    /// Creates the policy for `sets` x `ways`.
    ///
    /// # Panics
    ///
    /// Panics if `ways > 64`.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(ways <= 64, "NRU supports at most 64 ways");
        Nru {
            ways,
            refbits: vec![0; sets],
        }
    }

    fn full_mask(&self) -> u64 {
        if self.ways == 64 {
            u64::MAX
        } else {
            (1u64 << self.ways) - 1
        }
    }
}

impl ReplacementPolicy for Nru {
    fn on_hit(&mut self, set: usize, way: usize) {
        self.refbits[set] |= 1 << way;
    }

    fn on_fill(&mut self, set: usize, way: usize) {
        self.refbits[set] |= 1 << way;
    }

    fn victim(&mut self, set: usize) -> usize {
        let clear = !self.refbits[set] & self.full_mask();
        if clear == 0 {
            self.refbits[set] = 0;
            0
        } else {
            clear.trailing_zeros() as usize
        }
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.refbits[set] &= !(1 << way);
    }

    fn name(&self) -> &'static str {
        "nru"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_saturation_reset() {
        let mut p = Nru::new(1, 4);
        for w in 0..4 {
            p.on_fill(0, w);
        }
        // All bits set: victim() resets them and picks way 0.
        assert_eq!(p.victim(0), 0);
        // After the reset, way 0 is still unreferenced until touched.
        assert_eq!(p.victim(0), 0);
        p.on_fill(0, 0);
        assert_eq!(p.victim(0), 1);
    }

    #[test]
    fn differs_from_bit_plru_on_some_pattern() {
        use super::super::{BitPlru, ReplacementPolicy as _};
        // NRU resolves saturation lazily at eviction, Bit-PLRU eagerly at
        // the access that would saturate; a pseudo-random workout must make
        // their victim streams diverge at least once — that divergence is
        // what lets fingerprinting tell them apart.
        let mut nru = Nru::new(1, 4);
        let mut bp = BitPlru::new(1, 4);
        for w in 0..4 {
            nru.on_fill(0, w);
            bp.on_fill(0, w);
        }
        let mut x = 12345u64;
        let mut diverged = false;
        for _ in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let w = ((x >> 33) % 4) as usize;
            nru.on_hit(0, w);
            bp.on_hit(0, w);
            if nru.victim(0) != bp.victim(0) {
                diverged = true;
                break;
            }
        }
        assert!(diverged, "NRU and Bit-PLRU never diverged");
    }

    #[test]
    fn invalidate_clears_bit() {
        let mut p = Nru::new(1, 2);
        p.on_fill(0, 0);
        p.on_fill(0, 1);
        p.on_invalidate(0, 0);
        assert_eq!(p.victim(0), 0);
    }
}
