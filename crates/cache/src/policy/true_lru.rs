//! True least-recently-used replacement.

use super::ReplacementPolicy;

/// Exact LRU: per set, a logical timestamp per way; the victim is the way
/// with the oldest timestamp. Real last-level caches do not implement this
/// (too much state), which is exactly why the paper's attack has to learn
/// the *pseudo*-LRU actually deployed — but it is the natural baseline for
/// fingerprinting.
#[derive(Debug, Clone)]
pub struct TrueLru {
    ways: usize,
    stamps: Vec<u64>,
    clock: u64,
}

impl TrueLru {
    /// Creates the policy for `sets` x `ways`.
    pub fn new(sets: usize, ways: usize) -> Self {
        TrueLru {
            ways,
            stamps: vec![0; sets * ways],
            clock: 0,
        }
    }

    fn touch(&mut self, set: usize, way: usize) {
        self.clock += 1;
        self.stamps[set * self.ways + way] = self.clock;
    }
}

impl ReplacementPolicy for TrueLru {
    fn on_hit(&mut self, set: usize, way: usize) {
        self.touch(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize) {
        self.touch(set, way);
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        (0..self.ways)
            .min_by_key(|&w| self.stamps[base + w])
            .expect("ways > 0")
    }

    fn name(&self) -> &'static str {
        "true-lru"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut p = TrueLru::new(1, 4);
        for w in 0..4 {
            p.on_fill(0, w);
        }
        p.on_hit(0, 0); // 1 is now LRU
        assert_eq!(p.victim(0), 1);
        p.on_hit(0, 1);
        assert_eq!(p.victim(0), 2);
    }

    #[test]
    fn cyclic_overflow_misses_every_access() {
        // The classic LRU pathology: cycling over ways+1 blocks evicts the
        // next block to be used. Victim after filling 0..n is always the
        // oldest.
        let mut p = TrueLru::new(1, 4);
        for w in 0..4 {
            p.on_fill(0, w);
        }
        for i in 0..20 {
            let v = p.victim(0);
            assert_eq!(v, i % 4);
            p.on_fill(0, v);
        }
    }

    #[test]
    fn sets_are_independent() {
        let mut p = TrueLru::new(2, 2);
        p.on_fill(0, 0);
        p.on_fill(0, 1);
        p.on_fill(1, 1);
        p.on_fill(1, 0);
        assert_eq!(p.victim(0), 0);
        assert_eq!(p.victim(1), 1);
    }
}
