//! Bit-PLRU (MRU-bit) replacement — the policy the paper reverse-engineers
//! on the Sandy Bridge last-level cache (Section 2.2).

use super::ReplacementPolicy;

/// Bit pseudo-LRU.
///
/// Each line carries one MRU bit. On every access the line's bit is set;
/// if that would leave *all* bits set, the other bits are cleared first, so
/// exactly the accessed line stays marked. The victim is the
/// **lowest-indexed** way whose MRU bit is clear.
///
/// This is the behaviour the paper matched against hardware counters:
/// "one of the replacement algorithms Sandy Bridge favors is Bit
/// Pseudo-LRU (Bit-PLRU) which is similar to the Not Recently Used (NRU)
/// replacement policy."
#[derive(Debug, Clone)]
pub struct BitPlru {
    ways: usize,
    /// One bitmask of MRU bits per set (ways <= 64).
    mru: Vec<u64>,
}

impl BitPlru {
    /// Creates the policy for `sets` x `ways`.
    ///
    /// # Panics
    ///
    /// Panics if `ways > 64`.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(ways <= 64, "Bit-PLRU supports at most 64 ways");
        BitPlru {
            ways,
            mru: vec![0; sets],
        }
    }

    fn full_mask(&self) -> u64 {
        if self.ways == 64 {
            u64::MAX
        } else {
            (1u64 << self.ways) - 1
        }
    }

    fn touch(&mut self, set: usize, way: usize) {
        let bit = 1u64 << way;
        let next = self.mru[set] | bit;
        self.mru[set] = if next == self.full_mask() { bit } else { next };
    }

    /// The MRU bitmask of `set` (diagnostic; used by attack tooling to
    /// explain eviction behaviour).
    pub fn mru_bits(&self, set: usize) -> u64 {
        self.mru[set]
    }
}

impl ReplacementPolicy for BitPlru {
    fn on_hit(&mut self, set: usize, way: usize) {
        self.touch(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize) {
        self.touch(set, way);
    }

    fn victim(&mut self, set: usize) -> usize {
        // Lowest-indexed way with a clear MRU bit. The touch rule
        // guarantees at least one bit is clear whenever ways > 1.
        let clear = !self.mru[set] & self.full_mask();
        debug_assert!(clear != 0, "Bit-PLRU invariant: some bit is clear");
        clear.trailing_zeros() as usize
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.mru[set] &= !(1u64 << way);
    }

    fn name(&self) -> &'static str {
        "bit-plru"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victim_is_lowest_clear_bit() {
        let mut p = BitPlru::new(1, 4);
        p.on_fill(0, 1);
        p.on_fill(0, 3);
        assert_eq!(p.victim(0), 0);
        p.on_hit(0, 0);
        assert_eq!(p.victim(0), 2);
    }

    #[test]
    fn saturating_access_clears_other_bits() {
        let mut p = BitPlru::new(1, 4);
        for w in 0..3 {
            p.on_fill(0, w);
        }
        assert_eq!(p.mru_bits(0), 0b0111);
        // Accessing the 4th way would set all bits: others are cleared.
        p.on_hit(0, 3);
        assert_eq!(p.mru_bits(0), 0b1000);
        assert_eq!(p.victim(0), 0);
    }

    #[test]
    fn invalidate_clears_bit() {
        let mut p = BitPlru::new(1, 4);
        p.on_fill(0, 0);
        p.on_fill(0, 1);
        p.on_invalidate(0, 1);
        assert_eq!(p.mru_bits(0), 0b0001);
    }

    #[test]
    fn never_evicts_the_just_touched_way() {
        let mut p = BitPlru::new(1, 12);
        for w in 0..12 {
            p.on_fill(0, w);
        }
        for i in 0..200usize {
            let w = i * 7 % 12;
            p.on_hit(0, w);
            assert_ne!(p.victim(0), w);
        }
    }

    #[test]
    fn sixty_four_ways_supported() {
        let mut p = BitPlru::new(1, 64);
        for w in 0..64 {
            p.on_fill(0, w);
        }
        // Filling all 64 triggered the saturation rule at the last fill.
        assert_eq!(p.mru_bits(0), 1u64 << 63);
        assert_eq!(p.victim(0), 0);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn too_many_ways_panics() {
        BitPlru::new(1, 65);
    }
}
