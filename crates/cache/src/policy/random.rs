//! Seeded random replacement.

use super::ReplacementPolicy;

/// Uniform-random victim selection with a deterministic xorshift64* stream,
/// so simulations remain reproducible for a fixed seed.
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    ways: usize,
    state: u64,
}

impl RandomPolicy {
    /// Creates the policy for `sets` x `ways` caches with the given seed.
    pub fn new(_sets: usize, ways: usize, seed: u64) -> Self {
        RandomPolicy {
            ways,
            state: seed | 1, // xorshift state must be non-zero
        }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

impl ReplacementPolicy for RandomPolicy {
    fn on_hit(&mut self, _set: usize, _way: usize) {}

    fn on_fill(&mut self, _set: usize, _way: usize) {}

    fn victim(&mut self, _set: usize) -> usize {
        (self.next() % self.ways as u64) as usize
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = RandomPolicy::new(1, 8, 42);
        let mut b = RandomPolicy::new(1, 8, 42);
        for _ in 0..100 {
            assert_eq!(a.victim(0), b.victim(0));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut p = RandomPolicy::new(1, 8, 7);
        let mut counts = [0usize; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[p.victim(0)] += 1;
        }
        for c in counts {
            let expected = n / 8;
            assert!(
                (expected * 9 / 10..=expected * 11 / 10).contains(&c),
                "skewed: {counts:?}"
            );
        }
    }
}
