//! Replacement-policy fingerprinting.
//!
//! Section 2.2 of the paper: to build a time-efficient eviction pattern the
//! authors "generated a high miss-rate pattern that cyclically accesses the
//! 13 addresses in the eviction set, and us[ed] performance counters ... to
//! determine whether each access was a cache hit or a cache miss. Then we
//! correlate the performance counter results with results from different
//! cache replacement policy simulators that we built." This module is that
//! methodology: drive an *oracle* cache (standing in for the hardware)
//! with probe patterns, record its hit/miss trace, and score each candidate
//! policy simulator by trace agreement.

use crate::cache::Cache;
use crate::config::CacheConfig;
use crate::policy::PolicyKind;

/// Agreement scores of every candidate policy against the oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct FingerprintReport {
    /// (candidate, fraction of accesses whose hit/miss outcome matched),
    /// sorted best-first.
    pub scores: Vec<(PolicyKind, f64)>,
    /// Total probe accesses replayed.
    pub probes: usize,
}

impl FingerprintReport {
    /// The best-matching candidate.
    pub fn best(&self) -> PolicyKind {
        self.scores[0].0
    }

    /// Whether the best candidate matched the oracle on every access.
    pub fn exact_match(&self) -> bool {
        // Scores are exact ratios of integer match counts; 1.0 means every
        // probe agreed, with no accumulated float error to absorb.
        (self.scores[0].1 - 1.0).abs() < f64::EPSILON
    }
}

/// Probe access patterns over an eviction set of `n` addresses (indices
/// into the set). Patterns are chosen to separate the candidate policies:
/// cyclic thrash distinguishes LRU from the pseudo-LRU family, and
/// revisit-heavy patterns split Bit-PLRU from NRU and Tree-PLRU.
fn probe_patterns(n: usize) -> Vec<Vec<usize>> {
    let mut patterns = Vec::new();

    // 1. Cyclic thrash over all n addresses.
    patterns.push((0..n).cycle().take(n * 8).collect());

    // 2. The paper's efficient pattern shape: a0, x1..x10, x11, x1..x9, x12
    //    generalized to n addresses.
    if n >= 4 {
        let mut p = Vec::new();
        for _ in 0..6 {
            p.push(0);
            p.extend(1..n - 2);
            p.push(n - 2);
            p.extend(1..n - 3);
            p.push(n - 1);
        }
        patterns.push(p);
    }

    // 3. Hot/cold: hammer a few addresses while streaming the rest.
    let mut hotcold = Vec::new();
    for i in 0..n * 6 {
        hotcold.push(if i % 3 == 0 {
            i / 3 % 2
        } else {
            2 + (i % (n - 2))
        });
    }
    patterns.push(hotcold);

    // 4. Deterministic pseudo-random walk (splitmix-driven).
    let mut x = 0x9e37_79b9u64;
    let mut rnd = Vec::new();
    for _ in 0..n * 8 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        rnd.push(((x >> 33) as usize) % n);
    }
    patterns.push(rnd);

    // 5. Stack-distance probe: a, b, a, c, b, a ... re-references at
    //    graded distances.
    let mut stack = Vec::new();
    for d in 1..n {
        for i in 0..=d {
            stack.push(i);
        }
        stack.push(0);
    }
    patterns.push(stack);

    patterns
}

/// Fingerprints the replacement policy of `oracle` by replaying probe
/// patterns through it and through a fresh simulator per candidate.
///
/// `geometry` must describe the oracle's sets/ways/line size; the eviction
/// set used for probing contains `ways + 1` same-set addresses (the same
/// construction the attack uses).
///
/// # Panics
///
/// Panics if `candidates` is empty or the geometry is invalid.
pub fn fingerprint(
    oracle: &mut Cache,
    geometry: CacheConfig,
    candidates: &[PolicyKind],
) -> FingerprintReport {
    assert!(!candidates.is_empty(), "need at least one candidate");
    let n = geometry.ways + 1;
    let stride = (geometry.sets() * geometry.line_bytes) as u64;
    let addrs: Vec<u64> = (0..n as u64).map(|i| i * stride).collect();

    // Record the oracle's hit/miss trace.
    let mut trace = Vec::new();
    for pattern in probe_patterns(n) {
        for &idx in &pattern {
            trace.push((idx, oracle.access(addrs[idx], false).hit));
        }
        // Separate patterns with a flush so each starts cold.
        oracle.flush_all();
        trace.push((usize::MAX, false)); // pattern boundary marker
    }

    // Replay through each candidate and score agreement.
    let mut scores: Vec<(PolicyKind, f64)> = candidates
        .iter()
        .map(|&kind| {
            let mut sim_cfg = geometry;
            sim_cfg.policy = kind;
            let mut sim = Cache::new(sim_cfg);
            let mut agree = 0usize;
            let mut total = 0usize;
            for &(idx, oracle_hit) in &trace {
                if idx == usize::MAX {
                    sim.flush_all();
                    continue;
                }
                let hit = sim.access(addrs[idx], false).hit;
                total += 1;
                if hit == oracle_hit {
                    agree += 1;
                }
            }
            (kind, agree as f64 / total as f64)
        })
        .collect();
    scores.sort_by(|a, b| b.1.total_cmp(&a.1));
    let probes = trace.iter().filter(|(i, _)| *i != usize::MAX).count();
    FingerprintReport { scores, probes }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry(policy: PolicyKind) -> CacheConfig {
        CacheConfig {
            capacity_bytes: 12 * 64 * 16, // 16 sets x 12 ways, like an LLC slice scaled down
            ways: 12,
            line_bytes: 64,
            policy,
            latency: 29,
        }
    }

    #[test]
    fn identifies_every_deterministic_policy() {
        for kind in PolicyKind::deterministic_candidates() {
            let cfg = geometry(kind);
            let mut oracle = Cache::new(cfg);
            let report = fingerprint(&mut oracle, cfg, &PolicyKind::deterministic_candidates());
            assert_eq!(
                report.best(),
                kind,
                "misidentified {kind}: {:?}",
                report.scores
            );
            assert!(report.exact_match(), "{kind} should self-match exactly");
        }
    }

    #[test]
    fn bit_plru_oracle_prefers_bit_plru_over_nru() {
        let cfg = geometry(PolicyKind::BitPlru);
        let mut oracle = Cache::new(cfg);
        let report = fingerprint(&mut oracle, cfg, &[PolicyKind::BitPlru, PolicyKind::Nru]);
        assert_eq!(report.best(), PolicyKind::BitPlru);
        let bit = report
            .scores
            .iter()
            .find(|(k, _)| *k == PolicyKind::BitPlru)
            .unwrap()
            .1;
        let nru = report
            .scores
            .iter()
            .find(|(k, _)| *k == PolicyKind::Nru)
            .unwrap()
            .1;
        assert!(bit > nru, "Bit-PLRU {bit} must beat NRU {nru}");
    }

    #[test]
    fn random_oracle_matches_nothing_exactly() {
        let cfg = geometry(PolicyKind::Random { seed: 3 });
        let mut oracle = Cache::new(cfg);
        let report = fingerprint(&mut oracle, cfg, &PolicyKind::deterministic_candidates());
        assert!(
            !report.exact_match(),
            "random policy should not be perfectly explained: {:?}",
            report.scores
        );
    }

    #[test]
    fn report_is_sorted_best_first() {
        let cfg = geometry(PolicyKind::TrueLru);
        let mut oracle = Cache::new(cfg);
        let report = fingerprint(&mut oracle, cfg, &PolicyKind::deterministic_candidates());
        for w in report.scores.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert!(report.probes > 0);
    }
}
