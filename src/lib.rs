#![warn(missing_docs)]

//! # anvil
//!
//! Facade crate for the reproduction of **"ANVIL: Software-Based
//! Protection Against Next-Generation Rowhammer Attacks"** (Aweke,
//! Yitbarek, Qiao, Das, Hicks, Oren, Austin — ASPLOS 2016).
//!
//! Everything runs on a simulated Intel Sandy Bridge i5-2540M with a 4 GB
//! DDR3 module, calibrated to the paper's measurements (see `DESIGN.md`).
//! The workspace is organized as one crate per subsystem; this crate
//! re-exports them under stable module names:
//!
//! | Module | Contents |
//! |---|---|
//! | [`dram`] | DRAM geometry/timing/refresh, the rowhammer disturbance model, PARA & TRR |
//! | [`cache`] | Three-level hierarchy, Bit-PLRU and friends, policy fingerprinting |
//! | [`mem`] | Physical memory, paging, pagemap, the cycle-accounted access engine |
//! | [`pmu`] | Event counters and PEBS-style load-latency / precise-store sampling |
//! | [`attacks`] | CLFLUSH single/double-sided and the CLFLUSH-free attack |
//! | [`adversary`] | Adaptive detector-evading adversaries: duty-cycled, paced, camouflage, distributed |
//! | [`workloads`] | SPEC CPU2006-integer-like benchmark models |
//! | [`core`] | The ANVIL detector and the full-system platform runner |
//! | [`analyze`] | Static hammer-capability analysis over the attack/workload IR |
//! | [`faults`] | Deterministic fault injection: PEBS loss, stale translations, preemption, postponed refresh |
//! | [`fuzz`] | Coverage-guided guarantee fuzzing: scenario mutation, counterexample shrinking, the regression corpus |
//! | [`runtime`] | Detector lifecycle supervision: checkpoint/restore, crash-restart recovery, hot reload, soak engine |
//! | [`fleet`] | Fleet-scale multi-domain runtime: correlated fault domains, the degradation ladder, Monte Carlo fleet risk |
//!
//! ## Thirty-second tour
//!
//! ```
//! use anvil::core::{AnvilConfig, Platform, PlatformConfig};
//! use anvil::attacks::ClflushFreeDoubleSided;
//!
//! // An attacker armed with the paper's CLFLUSH-free attack...
//! let mut machine = Platform::new(PlatformConfig::with_anvil(AnvilConfig::baseline()));
//! machine.add_attack(Box::new(ClflushFreeDoubleSided::new()))?;
//! machine.run_ms(64.0)?; // one DRAM refresh window
//!
//! // ...hammers for a full refresh window and flips nothing.
//! assert_eq!(machine.total_flips(), 0);
//! assert!(!machine.detections().is_empty());
//! # Ok::<(), anvil::core::PlatformError>(())
//! ```

pub use anvil_adversary as adversary;
pub use anvil_analyze as analyze;
pub use anvil_attacks as attacks;
pub use anvil_cache as cache;
pub use anvil_core as core;
pub use anvil_dram as dram;
pub use anvil_faults as faults;
pub use anvil_fleet as fleet;
pub use anvil_fuzz as fuzz;
pub use anvil_mem as mem;
pub use anvil_pmu as pmu;
pub use anvil_runtime as runtime;
pub use anvil_workloads as workloads;
