//! Reverse-engineering the DRAM bank function from timing alone.
//!
//! ANVIL "was pre-configured using a reverse engineered physical address
//! to DRAM row and bank mapping scheme" (Section 3.3) — and attackers
//! derive the same knowledge from row-conflict timing (the DRAMA
//! technique). This example plays that game against the simulated
//! controller: for each candidate physical-address bit, it asks whether
//! flipping the bit changes the bank (conflict timing disappears) and
//! reconstructs the bank function, then checks the answer against the
//! simulator's ground truth.
//!
//! ```bash
//! cargo run --release --example bank_mapping
//! ```

use anvil::attacks::{build_eviction_set_by_timing, same_bank_by_timing};
use anvil::mem::{AllocationPolicy, FrameAllocator, MemoryConfig, MemorySystem, Process};

fn main() {
    let mut sys = MemorySystem::new(MemoryConfig::paper_platform());
    let mut frames = FrameAllocator::new(sys.phys().capacity(), AllocationPolicy::Contiguous);
    let mut p = Process::new(1, "mapper");
    let len = 32 << 20;
    let arena = p.mmap(len, &mut frames).expect("memory");

    // Probe base and its row buddy.
    let a = arena + 64;
    let buddy = a + 64;
    let set_a = build_eviction_set_by_timing(&mut sys, &p, arena, len, a)
        .expect("eviction set for the probe");
    let set_buddy = build_eviction_set_by_timing(&mut sys, &p, arena, len, buddy)
        .expect("eviction set for the buddy");

    println!("probing which PA bits participate in bank selection...\n");
    println!(
        "{:<8} {:>18} {:>14}",
        "PA bit", "same bank as base?", "ground truth"
    );

    let mapping = *sys.dram().mapping();
    let truth_bank = |va: u64| mapping.location_of(p.translate(va).unwrap()).bank;
    let base_bank = truth_bank(a);

    let mut recovered_bank_bits = Vec::new();
    let mut correct = 0;
    let mut total = 0;
    // Bits 13..21 cover the bank, rank, and low row bits of the DDR3
    // mapping; flipping a bank-relevant bit moves the line to another
    // bank, which the row-conflict channel observes directly.
    for bit in 13..21u32 {
        let b = a ^ (1u64 << bit);
        if b < arena || b + 64 > arena + len {
            continue;
        }
        let Ok(set_b) = build_eviction_set_by_timing(&mut sys, &p, arena, len, b) else {
            continue;
        };
        let measured_same = same_bank_by_timing(
            &mut sys,
            &p,
            (a, &set_a),
            (buddy, &set_buddy),
            (b, &set_b),
            8,
        );
        let truth_same = truth_bank(b) == base_bank && {
            let la = mapping.location_of(p.translate(a).unwrap());
            let lb = mapping.location_of(p.translate(b).unwrap());
            la.row != lb.row
        };
        // Same row => the channel cannot answer; skip those bits.
        let la = mapping.location_of(p.translate(a).unwrap());
        let lb = mapping.location_of(p.translate(b).unwrap());
        if la.row == lb.row && la.bank == lb.bank {
            println!("{bit:<8} {:>18} {:>14}", "same row", "-");
            continue;
        }
        total += 1;
        if measured_same == truth_same {
            correct += 1;
        }
        if !measured_same {
            recovered_bank_bits.push(bit);
        }
        println!(
            "{bit:<8} {:>18} {:>14}",
            if measured_same {
                "yes"
            } else {
                "NO (bank bit)"
            },
            if truth_same { "yes" } else { "no" },
        );
    }

    println!(
        "\nrecovered bank-affecting PA bits: {recovered_bank_bits:?} ({correct}/{total} probes agree with ground truth)"
    );
    assert_eq!(
        correct, total,
        "the timing channel must agree with the mapping"
    );
    println!(
        "With these bits (and the row XOR they imply), an attacker assembles the\n\
         same mapping table ANVIL itself was configured with — from user space,\n\
         with loads alone."
    );
}
