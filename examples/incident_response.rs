//! Incident response: from detection to attribution to containment.
//!
//! ANVIL samples the process descriptor along with each address
//! (Section 3.3), so every detection comes with a suspect list for free.
//! The paper stops at refreshing victims; this example explores the next
//! step a deployment could take — suspending a process that is named in
//! several *consecutive* detections — and shows why the streak matters:
//! benign programs (Table 4) only ever trip isolated false positives.
//!
//! ```bash
//! cargo run --release --example incident_response
//! ```

use anvil::attacks::ClflushFreeDoubleSided;
use anvil::core::{AnvilConfig, Platform, PlatformConfig, ResponsePolicy};
use anvil::workloads::SpecBenchmark;

fn main() {
    let mut pc = PlatformConfig::with_anvil(AnvilConfig::baseline());
    pc.response = ResponsePolicy::RefreshAndSuspend {
        consecutive_detections: 3,
    };
    let mut machine = Platform::new(pc);

    // A realistic mixed machine: two benign programs and one attacker.
    let mcf = machine.add_workload(SpecBenchmark::Mcf.build(2)).unwrap();
    let bzip2 = machine.add_workload(SpecBenchmark::Bzip2.build(2)).unwrap();
    let attacker = machine
        .add_attack(Box::new(ClflushFreeDoubleSided::new()))
        .expect("attack prepares");
    println!("pids: mcf={mcf} bzip2={bzip2} attacker={attacker}");

    machine.run_ms(150.0).unwrap();

    println!("\n-- incident log --");
    for (i, det) in machine.detections().iter().enumerate() {
        let ms = machine.config().memory.clock.cycles_to_ms(det.cycle);
        let mut suspects: Vec<u32> = det
            .report
            .aggressors
            .iter()
            .flat_map(|a| a.pids.iter().copied())
            .collect();
        suspects.sort_unstable();
        suspects.dedup();
        println!(
            "detection #{i} at {ms:6.1} ms: {} aggressor row(s), suspects {:?}, {} victim rows refreshed",
            det.report.aggressors.len(),
            suspects,
            det.refreshed.len()
        );
    }

    println!("\n-- outcome --");
    println!("bit flips:       {}", machine.total_flips());
    println!("suspended pids:  {:?}", machine.suspended_pids());
    for pid in [mcf, bzip2, attacker] {
        let s = machine.core_stats(pid).expect("core exists");
        println!("pid {pid}: {} ops executed ({})", s.ops, s.name);
    }

    assert_eq!(machine.total_flips(), 0);
    assert_eq!(machine.suspended_pids(), vec![attacker]);
    println!("\nOK: the attacker was identified by its samples and contained; the benign");
    println!("programs never accumulated a detection streak.");
}
