//! Future-DRAM robustness (paper Section 4.5).
//!
//! As DRAM density grows, cells flip with fewer activations. This example
//! builds a module that flips at *half* the paper's thresholds (110K
//! double-sided accesses), shows that the attack gets twice as fast, and
//! that the reconfigured detectors (ANVIL-heavy for fast attacks,
//! ANVIL-light for slow, spread-out ones) still win.
//!
//! ```bash
//! cargo run --release --example future_dram
//! ```

use anvil::attacks::{hammer_until_flip, DoubleSidedClflush, StandaloneHarness};
use anvil::core::{AnvilConfig, Platform, PlatformConfig};
use anvil::dram::DisturbanceConfig;
use anvil::mem::{AllocationPolicy, MemoryConfig};

fn main() {
    // --- 1. How fast is the attack on tomorrow's module? ----------------
    let mut future = MemoryConfig::paper_platform();
    future.dram.disturbance = DisturbanceConfig::future_half_threshold();

    let mut best: Option<(u64, f64)> = None;
    for pair in 0..16 {
        let mut h = StandaloneHarness::new(future, AllocationPolicy::Contiguous);
        let mut attack = DoubleSidedClflush::new().with_pair_index(pair);
        if h.prepare(&mut attack).is_err() {
            continue;
        }
        let r = hammer_until_flip(&mut attack, &mut h, 150_000);
        if r.flipped {
            let ms = r.time_to_first_flip_ms(&future.clock).unwrap();
            if best.is_none_or(|(a, _)| r.aggressor_accesses < a) {
                best = Some((r.aggressor_accesses, ms));
            }
        }
    }
    let (accesses, ms) = best.expect("future module flips easily");
    println!(
        "future module: first flip after {}K accesses, {:.1} ms",
        accesses / 1000,
        ms
    );
    println!("(today's module: 220K accesses, ~16 ms — the attacker got ~2x faster)\n");

    // --- 2. Do the reconfigured detectors still win? ---------------------
    for (label, anvil) in [
        ("ANVIL-baseline", AnvilConfig::baseline()),
        ("ANVIL-heavy   ", AnvilConfig::heavy()),
        ("ANVIL-light   ", AnvilConfig::light()),
    ] {
        let mut pc = PlatformConfig::with_anvil(anvil);
        pc.memory.dram.disturbance = DisturbanceConfig::future_half_threshold();
        let mut p = Platform::new(pc);
        p.add_attack(Box::new(DoubleSidedClflush::new()))
            .expect("prepares");
        p.run_ms(100.0).unwrap();
        println!(
            "{label}: detected at {} ms, {} bit flips, {:.1} refreshes/64 ms",
            p.first_detection_ms()
                .map_or("-".into(), |t| format!("{t:.1}")),
            p.total_flips(),
            p.refreshes_per_window(),
        );
    }
    println!(
        "\nSection 4.5's point: a software detector is reconfigurable — when the attack\n\
         gets faster, tc/ts shrink (heavy); when it hides under the miss threshold,\n\
         the threshold halves (light). Hardware mitigations cannot be retuned."
    );
}
