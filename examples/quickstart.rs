//! Quickstart: hammer an unprotected machine, then load ANVIL and watch it
//! stop the same attack.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use anvil::attacks::DoubleSidedClflush;
use anvil::core::{AnvilConfig, Platform, PlatformConfig};

fn main() {
    // --- 1. An unprotected Sandy Bridge laptop with 4 GB DDR3 ------------
    let mut machine = Platform::new(PlatformConfig::unprotected());
    let pid = machine
        .add_attack(Box::new(DoubleSidedClflush::new()))
        .expect("attack prepares on an open platform");
    let (aggressors, victims) = machine.attack_truth(pid);
    println!(
        "attacker hammers rows around victim paddr {:#x}",
        victims[0]
    );
    println!(
        "aggressor paddrs: {:#x}, {:#x}",
        aggressors[0], aggressors[1]
    );

    machine.run_ms(64.0).unwrap(); // one full DRAM refresh window
    println!(
        "unprotected machine after 64 ms of hammering: {} bit flip(s)",
        machine.total_flips()
    );

    // --- 2. The same machine with the ANVIL kernel module loaded ---------
    let mut protected = Platform::new(PlatformConfig::with_anvil(AnvilConfig::baseline()));
    protected
        .add_attack(Box::new(DoubleSidedClflush::new()))
        .expect("attack prepares");
    protected.run_ms(64.0).unwrap();

    println!(
        "ANVIL-protected machine after 64 ms:       {} bit flip(s)",
        protected.total_flips()
    );
    match protected.first_detection_ms() {
        Some(ms) => println!("ANVIL detected the attack after {ms:.1} ms"),
        None => println!("ANVIL never detected the attack (unexpected!)"),
    }
    println!(
        "selective refreshes issued: {} ({:.1} per 64 ms window)",
        protected.refresh_log().len(),
        protected.refreshes_per_window()
    );

    assert_eq!(protected.total_flips(), 0, "ANVIL must prevent all flips");
    println!("\nOK: the paper's headline result, end to end.");
}
