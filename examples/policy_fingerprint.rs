//! Replacement-policy fingerprinting, as an attacker would run it
//! (paper Section 2.2).
//!
//! Before the CLFLUSH-free attack can build its efficient eviction
//! pattern, it must learn the LLC's replacement policy. The paper's
//! method: drive probe patterns, record hit/miss with performance
//! counters, and correlate against policy simulators. Here the "hardware"
//! is a cache whose policy we pretend not to know.
//!
//! ```bash
//! cargo run --release --example policy_fingerprint
//! ```

use anvil::cache::{fingerprint, Cache, CacheConfig, PolicyKind};

fn main() {
    // The machine under test: a 12-way LLC slice. (Pretend the policy is
    // unknown — it is what Sandy Bridge actually uses.)
    let secret = PolicyKind::BitPlru;
    let geometry = CacheConfig {
        capacity_bytes: 12 * 64 * 512,
        ways: 12,
        line_bytes: 64,
        policy: secret,
        latency: 29,
    };
    let mut hardware = Cache::new(geometry);

    println!(
        "probing a {}-way LLC slice with unknown replacement policy...\n",
        geometry.ways
    );
    let report = fingerprint(
        &mut hardware,
        geometry,
        &PolicyKind::deterministic_candidates(),
    );

    println!("{:<12} {:>10}", "candidate", "agreement");
    for (kind, score) in &report.scores {
        println!(
            "{:<12} {:>9.1}% {}",
            kind.to_string(),
            score * 100.0,
            if *kind == report.best() {
                "  <-- best match"
            } else {
                ""
            }
        );
    }
    println!("\nprobes replayed: {}", report.probes);
    println!(
        "verdict: the hardware behaves like {} ({}exact trace match)",
        report.best(),
        if report.exact_match() { "" } else { "not an " }
    );
    assert_eq!(report.best(), secret);
    println!(
        "\nThis is the paper's finding: \"one of the replacement algorithms Sandy Bridge\n\
         favors ... is Bit Pseudo-LRU (Bit-PLRU)\" — the key that unlocks the
         2-miss-per-iteration eviction pattern."
    );
}
