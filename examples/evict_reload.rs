//! Evict+Reload: the CLFLUSH-free cache side channel (paper Section 2.2).
//!
//! "In addition to rowhammering, the technique used in the CLFLUSH-free
//! rowhammering attack can be used in other attacks that need to flush the
//! cache at specific addresses. For example the Flush+Reload cache
//! side-channel attack relies on the CLFLUSH instruction. Our CLFLUSH-free
//! cache flushing method can extend this attack to situations where the
//! CLFLUSH instruction is not available (e.g., JavaScript)."
//!
//! A spy and a victim share a read-only page (as with a shared library).
//! The spy transmits nothing and writes nothing: it *evicts* the probe
//! line through an eviction set, lets the victim run, then reloads the
//! probe and times it. A fast reload means the victim touched the secret-
//! dependent line. Here the victim leaks an 8-bit secret, one bit per
//! round.
//!
//! ```bash
//! cargo run --release --example evict_reload
//! ```

use anvil::attacks::build_eviction_set;
use anvil::mem::{
    AccessKind, AllocationPolicy, FrameAllocator, MemoryConfig, MemorySystem, PagemapPolicy,
    Process, PAGE_SIZE,
};

fn main() {
    let mut sys = MemorySystem::new(MemoryConfig::paper_platform());
    let mut frames = FrameAllocator::new(sys.phys().capacity(), AllocationPolicy::Contiguous);

    // A shared read-only page (think: one function of a crypto library).
    let mut victim = Process::new(1, "victim");
    let shared_va_victim = victim.mmap(PAGE_SIZE, &mut frames).expect("memory");
    let shared_pfn = victim.translate(shared_va_victim).unwrap() >> 12;

    // The spy maps the same physical page and a private arena for
    // eviction sets.
    let mut spy = Process::new(2, "spy");
    let shared_va_spy = spy.mmap_shared(&[shared_pfn]);
    let arena_len = 24 << 20;
    let arena = spy.mmap(arena_len, &mut frames).expect("memory");

    // The probe: the line the victim touches iff the current secret bit
    // is 1.
    let probe_spy = shared_va_spy + 0x240;
    let probe_victim = shared_va_victim + 0x240;

    // Build the eviction set for the probe line — same machinery as the
    // rowhammer attack, no CLFLUSH anywhere.
    let eviction = build_eviction_set(
        &spy,
        PagemapPolicy::Open,
        sys.hierarchy(),
        arena,
        arena_len,
        probe_spy,
    )
    .expect("arena large enough");
    println!(
        "spy built a {}-address eviction set for the shared probe line",
        eviction.len()
    );

    let secret: u8 = 0b1011_0010;
    println!("victim's secret: {secret:#010b}");

    let hit_threshold = 60; // cycles: L3 hit ~9, DRAM ~190
    let mut recovered = 0u8;
    for bit in (0..8).rev() {
        // 1. Evict: walk the eviction set (loads only). Two passes — a
        //    single in-order pass does not always displace the probe under
        //    Bit-PLRU, which is exactly why the rowhammer attack needed a
        //    tuned pattern (Section 2.2).
        for _ in 0..2 {
            for &c in &eviction.conflict_vas {
                let pa = spy.translate(c).unwrap();
                sys.access(pa, AccessKind::Read);
            }
        }
        // 2. Victim runs: touches the probe iff its secret bit is 1.
        if (secret >> bit) & 1 == 1 {
            let pa = victim.translate(probe_victim).unwrap();
            sys.access(pa, AccessKind::Read);
        }
        // 3. Reload and time.
        let pa = spy.translate(probe_spy).unwrap();
        let t = sys.access(pa, AccessKind::Read).advance;
        let guessed = u8::from(t < hit_threshold);
        recovered = (recovered << 1) | guessed;
        println!(
            "bit {bit}: reload took {t:>3} cycles -> {}",
            if guessed == 1 {
                "HIT  (victim touched it): 1"
            } else {
                "miss (victim idle):       0"
            }
        );
    }

    println!("\nrecovered secret: {recovered:#010b}");
    assert_eq!(
        recovered, secret,
        "the covert channel must be error-free here"
    );
    println!("OK: Flush+Reload without CLFLUSH — the paper's Section 2.2 corollary.");
}
