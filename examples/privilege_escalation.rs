//! The Project Zero scenario (paper Section 1.1 / 5.1): rowhammer as a
//! privilege-escalation primitive.
//!
//! Seaborn & Dullien's exploit sprays physical memory with page-table
//! entries and hammers until a PTE's physical-frame bits flip, pointing
//! the attacker's mapping at a page table and granting write access to all
//! of physical memory. This example stages the essential physics: a
//! *victim* data structure (a simulated PTE word) lives in the row between
//! two attacker-reachable rows; hammering corrupts it through pure loads,
//! without the attacker ever writing to it — then ANVIL is loaded and the
//! same attack accomplishes nothing.
//!
//! ```bash
//! cargo run --release --example privilege_escalation
//! ```

use anvil::attacks::ClflushFreeDoubleSided;
use anvil::core::{AnvilConfig, Platform, PlatformConfig};

/// A toy PTE: frame number in the low bits, permission bits up top.
const VICTIM_PTE: u64 = (0x00_1234 << 12) | 0b101; // frame 0x1234, present+user

fn stage_attack(config: &PlatformConfig) -> (Platform, u64) {
    // A real exploit hammers candidate rows until one flips; here we use
    // the profiling scan once and then stage the drama on that victim.
    let pair = (0..24)
        .find(|&i| {
            let mut probe = Platform::new(PlatformConfig::unprotected());
            let pid = probe
                .add_attack(Box::new(ClflushFreeDoubleSided::new().with_pair_index(i)))
                .expect("attack prepares");
            let (_, victims) = probe.attack_truth(pid);
            let dram = probe.sys().dram();
            dram.is_vulnerable_row(dram.mapping().location_of(victims[0]).row_id())
        })
        .expect("some victim row is flippable");

    let mut machine = Platform::new(*config);
    // The CLFLUSH-free variant: works from plain loads, as from a sandbox.
    let pid = machine
        .add_attack(Box::new(
            ClflushFreeDoubleSided::new().with_pair_index(pair),
        ))
        .expect("attack prepares");
    let (_, victims) = machine.attack_truth(pid);

    // The kernel happens to place a page-table page in the victim row —
    // exactly the memory-spray situation the exploit engineers.
    let victim_paddr = victims[0];
    for i in 0..1024 {
        machine
            .sys_mut()
            .phys_mut()
            .write_u64(victim_paddr + i * 8, VICTIM_PTE + (i << 12));
    }
    (machine, victim_paddr)
}

fn audit_ptes(machine: &Platform, victim_paddr: u64) -> Vec<(u64, u64, u64)> {
    (0..1024)
        .filter_map(|i| {
            let expected = VICTIM_PTE + (i << 12);
            let got = machine.sys().phys().read_u64(victim_paddr + i * 8);
            (got != expected).then_some((victim_paddr + i * 8, expected, got))
        })
        .collect()
}

fn main() {
    // --- Unprotected: the exploit lands --------------------------------
    let (mut machine, victim_paddr) = stage_attack(&PlatformConfig::unprotected());
    println!("page-table page staged in victim row at paddr {victim_paddr:#x}");
    machine.run_ms(64.0).unwrap();

    let corrupted = audit_ptes(&machine, victim_paddr);
    println!("\n-- unprotected machine, after one refresh window --");
    if corrupted.is_empty() {
        println!("no PTE corrupted (this victim row had no weak cell; rerun varies)");
    }
    for (addr, expected, got) in &corrupted {
        let frame_before = (expected >> 12) & 0xf_ffff;
        let frame_after = (got >> 12) & 0xf_ffff;
        println!("PTE at {addr:#x} corrupted: {expected:#x} -> {got:#x}");
        if frame_before == frame_after {
            println!("  permission/flag bits flipped");
        } else {
            println!(
                "  frame {frame_before:#x} -> {frame_after:#x}: the mapping now points at a \
                 different physical page — write access escalated!"
            );
        }
    }

    // --- Protected: same spray, same hammer, nothing happens ------------
    let (mut protected, victim_paddr) =
        stage_attack(&PlatformConfig::with_anvil(AnvilConfig::baseline()));
    protected.run_ms(64.0).unwrap();
    let corrupted = audit_ptes(&protected, victim_paddr);
    println!("\n-- ANVIL-protected machine, same attack --");
    println!(
        "corrupted PTEs: {} (detected after {:.1} ms, {} selective refreshes)",
        corrupted.len(),
        protected.first_detection_ms().unwrap_or(f64::NAN),
        protected.refresh_log().len()
    );
    assert!(corrupted.is_empty(), "ANVIL must protect the page table");
    println!("\nOK: privilege escalation neutralized.");
}
