//! Detector tuning: explore ANVIL's parameter space against your own
//! threat model.
//!
//! The paper's Section 4.5 argues ANVIL "has room to grow" by adjusting
//! Table 2's parameters. This example plays defense engineer: it sweeps
//! stage-window lengths and miss thresholds against (a) today's attack,
//! (b) the fast future attack, and (c) a slow, stealthy attacker, and
//! prints the detection/overhead frontier.
//!
//! ```bash
//! cargo run --release --example detector_tuning
//! ```

use anvil::attacks::DoubleSidedClflush;
use anvil::core::{AnvilConfig, Platform, PlatformConfig};
use anvil::dram::DisturbanceConfig;
use anvil::workloads::SpecBenchmark;

/// One tuning candidate.
struct Candidate {
    label: &'static str,
    config: AnvilConfig,
}

fn candidates() -> Vec<Candidate> {
    let mut v = Vec::new();
    v.push(Candidate {
        label: "baseline (6ms/6ms/20K)",
        config: AnvilConfig::baseline(),
    });
    v.push(Candidate {
        label: "light    (6ms/6ms/10K)",
        config: AnvilConfig::light(),
    });
    v.push(Candidate {
        label: "heavy    (2ms/2ms/6.7K)",
        config: AnvilConfig::heavy(),
    });
    // Tighter than heavy and sized for a 110K-flip device: the 3K trip
    // point keeps the sustained-pacing budget (2,999 x 32 windows/period
    // = 96K) under the 2 x 55K flip threshold, which the config gate now
    // enforces — 7K here would be rejected as an envelope violation.
    let mut paranoid = AnvilConfig::heavy();
    paranoid.llc_miss_threshold = 3_000;
    paranoid.min_hammer_accesses = 55_000;
    v.push(Candidate {
        label: "paranoid (2ms/2ms/3K) ",
        config: paranoid,
    });
    v.push(Candidate {
        label: "hardened (6ms/6ms/20K+)",
        config: AnvilConfig::hardened(),
    });
    v
}

/// Detection latency of `anvil` against a double-sided attack on a module
/// with the given disturbance physics.
fn detect_ms(anvil: AnvilConfig, disturbance: DisturbanceConfig) -> (Option<f64>, u64) {
    let mut pc = PlatformConfig::with_anvil(anvil);
    pc.memory.dram.disturbance = disturbance;
    let mut p = Platform::new(pc);
    p.add_attack(Box::new(DoubleSidedClflush::new()))
        .expect("prepares");
    p.run_ms(100.0).unwrap();
    (p.first_detection_ms(), p.total_flips())
}

/// Slowdown of mcf (the workload that pays most) under `anvil`.
fn mcf_slowdown(anvil: AnvilConfig) -> f64 {
    let run = |cfg: PlatformConfig| {
        let mut p = Platform::new(cfg);
        let pid = p.add_workload(SpecBenchmark::Mcf.build(3)).unwrap();
        p.run_core_ops(pid, 400_000).unwrap();
        p.core_stats(pid).unwrap().cycles as f64
    };
    run(PlatformConfig::with_anvil(anvil)) / run(PlatformConfig::unprotected())
}

fn main() {
    println!(
        "{:<26} {:>14} {:>14} {:>8} {:>12}",
        "configuration", "detect today", "detect future", "flips", "mcf slowdown"
    );
    for c in candidates() {
        let (today, flips_a) = detect_ms(c.config, DisturbanceConfig::paper_ddr3());
        let (future, flips_b) = detect_ms(c.config, DisturbanceConfig::future_half_threshold());
        let slow = mcf_slowdown(c.config);
        println!(
            "{:<26} {:>11} ms {:>11} ms {:>8} {:>11.2}%",
            c.label,
            today.map_or("-".into(), |t| format!("{t:.1}")),
            future.map_or("-".into(), |t| format!("{t:.1}")),
            flips_a + flips_b,
            (slow - 1.0) * 100.0
        );
    }
    println!(
        "\nReading the frontier: shorter windows detect faster (needed once future DRAM\n\
         flips at 110K accesses) but cost more; the paper ships baseline and documents\n\
         light/heavy as the upgrade path (Section 4.5)."
    );
}
