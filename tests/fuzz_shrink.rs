//! Merge gates for the counterexample shrinker and the canary pipeline.
//!
//! Two claims are enforced here. First, shrinking is *sound and
//! 1-minimal*: a shrunk counterexample still reproduces the envelope
//! violation (supposedly safe, yet flips), and — whenever the shrinker
//! reports minimality — no single further reduction step still
//! reproduces (proptest over construction seeds). Second, the planted
//! weakened-canary blind spot is *actually findable end to end*: a
//! seeded canary campaign must discover a supposedly-safe flipping
//! scenario and shrink it to a minimal schedule of at most 10 events.
//! If detector or audit changes ever close the planted gap (or break
//! the fuzzer's ability to exploit it), this fails loudly rather than
//! letting the fuzz gate rot into a tautology.

use anvil::adversary::ArchetypeSpec;
use anvil::fuzz::{
    reduction_steps, reproduces_flip, run_campaign, serial_exec, shrink, Event, FuzzDomain,
    FuzzOptions, Scenario,
};
use proptest::prelude::*;

/// A deterministic counterexample in the weakened-canary domain: the
/// seeded threshold prober with its pace pushed past the flip frontier.
/// The planted `bank_support_min`/`ledger_min_windows` blind spot keeps
/// the envelope audit blind, so the scenario claims safety while
/// flipping bits — exactly what the fuzzer's mutator reaches with one
/// intensity edit.
fn planted_counterexample(seed: u64, boost: u64) -> Scenario {
    let domain = FuzzDomain::weakened_canary();
    let mut s = domain.seeds(seed)[0].clone();
    let Event::Hammer { spec, ms } = s.schedule[0] else {
        panic!("canary seed 0 must open with the paced prober");
    };
    let ArchetypeSpec::Paced {
        misses_per_window,
        window_cycles,
    } = spec
    else {
        panic!("canary seed 0 must be the paced prober");
    };
    s.schedule[0] = Event::Hammer {
        spec: ArchetypeSpec::Paced {
            misses_per_window: misses_per_window.saturating_mul(boost) / 2,
            window_cycles,
        },
        ms,
    };
    domain.clamp(s)
}

proptest! {
    // Each case replays dozens of simulator runs; keep the case count
    // small enough for CI while still varying seed and overdrive.
    #![proptest_config(ProptestConfig { cases: 6 })]

    #[test]
    fn shrunk_counterexamples_are_sound_and_one_minimal(
        seed in 0u64..1024,
        boost in 3u64..5,
    ) {
        let domain = FuzzDomain::weakened_canary();
        let start = planted_counterexample(seed, boost);
        if !reproduces_flip(&start) {
            // A seed whose weak-cell map dodges this pace is not a
            // counterexample to begin with; nothing to shrink.
            return Ok(());
        }

        let result = shrink(start, &domain, 400, &mut reproduces_flip);

        // Soundness: the shrunk scenario is still a counterexample.
        prop_assert!(
            reproduces_flip(&result.scenario),
            "shrunk scenario no longer reproduces the violation"
        );
        prop_assert!(!result.scenario.schedule.is_empty());

        // 1-minimality: no single further reduction step reproduces.
        if result.minimal {
            for (i, step) in reduction_steps(&result.scenario, &domain).iter().enumerate() {
                prop_assert!(
                    !reproduces_flip(step),
                    "reduction step {i} still reproduces — the shrinker \
                     stopped early despite claiming 1-minimality"
                );
            }
        }
    }
}

#[test]
fn canary_campaign_finds_and_shrinks_the_planted_blind_spot() {
    // The end-to-end pipeline proof at the seed CI pins: mutate from
    // the domain seeds, hit the blind spot, shrink what flips.
    let report = run_campaign(&FuzzOptions::canary(0xF0229), serial_exec);
    assert!(
        !report.counterexamples.is_empty(),
        "the canary campaign found nothing — the planted blind spot is \
         closed or the fuzzer lost the ability to reach it"
    );
    for c in &report.counterexamples {
        assert!(c.flips > 0, "shrunk counterexample no longer flips");
        assert!(c.minimal, "shrink budget exhausted before 1-minimality");
        assert!(
            c.shrunk.schedule.len() <= 10,
            "counterexample shrunk only to {} events",
            c.shrunk.schedule.len()
        );
        assert!(
            c.shrunk.supposedly_safe(),
            "shrunk counterexample lost its safety claim — it no longer \
             witnesses an envelope blind spot"
        );
        assert!(
            c.shrunk.schedule.len() <= c.original.schedule.len(),
            "shrinking grew the schedule"
        );
    }
}

#[test]
fn standard_domain_seeds_keep_the_guarantee() {
    // The standard domain's seed scenarios are the fuzzer's starting
    // points; all of them must be supposedly safe *and actually* safe,
    // or the campaign would open with spurious counterexamples.
    let domain = FuzzDomain::standard();
    for (i, s) in domain.seeds(0xF0229).into_iter().enumerate() {
        assert!(s.supposedly_safe(), "standard seed {i} claims no safety");
        let out = s.run();
        assert_eq!(out.flips, 0, "standard seed {i} flips {} bit(s)", out.flips);
    }
}
