//! Corpus-replay merge gate for the coverage-guided guarantee fuzzer.
//!
//! The committed `corpus/` directory holds every novel zero-flip
//! scenario the standard-domain fuzz campaign has recorded: detector
//! configurations, adaptive-adversary schedules, and fault plans that
//! pushed the detector into a previously unseen state *without*
//! breaking the no-flip guarantee. Replaying them on every merge turns
//! the fuzzer's past discoveries into a permanent regression net — a
//! detector change that lets any corpus case flip a bit fails CI with
//! the exact replayable scenario in hand.

use anvil::fuzz::{load_dir, CorpusEntry};
use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

fn corpus() -> Vec<(PathBuf, CorpusEntry)> {
    load_dir(&corpus_dir()).expect("committed corpus loads")
}

#[test]
fn corpus_is_committed_and_nonempty() {
    let entries = corpus();
    assert!(
        !entries.is_empty(),
        "corpus/ is empty — run `cargo run --release -p anvil-bench --bin fuzz` \
         and commit the cases it writes"
    );
}

#[test]
fn corpus_files_are_content_addressed() {
    for (path, entry) in corpus() {
        let expect = entry.filename();
        let actual = path.file_name().unwrap().to_string_lossy();
        assert_eq!(
            actual,
            expect,
            "{} does not match its scenario's content hash — the file was \
             edited by hand or the scenario encoding drifted",
            path.display()
        );
    }
}

#[test]
fn every_corpus_case_still_claims_safety() {
    for (path, entry) in corpus() {
        assert!(
            entry.scenario.supposedly_safe(),
            "{}: the envelope no longer holds for this case's configuration — \
             it guards nothing; regenerate the corpus",
            path.display()
        );
    }
}

#[test]
fn corpus_replays_with_zero_flips() {
    // The gate: every committed case must still uphold the guarantee it
    // was recorded under. Scenario runs are deterministic, so a flip
    // here is a real detector regression, not noise.
    for (path, entry) in corpus() {
        let out = entry.scenario.run();
        assert_eq!(
            out.flips,
            0,
            "{}: corpus case now flips {} bit(s) under a supposedly-safe \
             configuration (detected={}, errors={:?})",
            path.display(),
            out.flips,
            out.detected,
            out.errors
        );
    }
}
