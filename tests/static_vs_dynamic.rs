//! Cross-validation of the static analyzer against the dynamic simulator.
//!
//! Every case pairs a static claim from `anvil-analyze` with the
//! corresponding dynamic outcome from the cycle-accurate simulator —
//! steady-state eviction behaviour against the real cache hierarchy, bit
//! flips (or their absence) against the DRAM disturbance model, and
//! detector coverage against the full ANVIL platform. The matrix must
//! hold at least twenty agreeing cases (ISSUE 1 acceptance criterion).

use anvil::adversary::ArchetypeSpec;
use anvil::analyze::{
    analyze_all, classify, classify_interval, eviction_profile, extract_witness,
    pattern_activation_bounds, verify_archetype, workload_activation_bounds, AccessVector,
    AnalysisContext, Archetype, CoverageVerdict, Severity, Verdict, Witness, WitnessOutcome,
};
use anvil::attacks::{
    hammer_until_flip, Attack, ClflushFreeDoubleSided, DoubleSidedClflush, PatternTemplate,
    SingleSidedClflush, StandaloneHarness,
};
use anvil::cache::{CacheHierarchy, HierarchyConfig, PolicyKind};
use anvil::core::{AnvilConfig, EnvelopeParams, Platform, PlatformConfig};
use anvil::dram::{
    is_vulnerable_row, DisturbanceConfig, DisturbanceTracker, DramTiming, RefreshSchedule, RowId,
};
use anvil::faults::FaultPlan;
use anvil::mem::{AllocationPolicy, MemoryConfig};
use anvil::workloads::SpecBenchmark;
use proptest::prelude::*;

type AttackCase<'a> = (&'a str, &'a AccessVector, fn() -> Box<dyn Attack>);

/// One validated (static claim, dynamic outcome) pair.
struct Case {
    name: String,
    agrees: bool,
    detail: String,
}

fn case(name: impl Into<String>, agrees: bool, detail: impl Into<String>) -> Case {
    Case {
        name: name.into(),
        agrees,
        detail: detail.into(),
    }
}

/// Replays `template` against the real [`CacheHierarchy`] on a concrete
/// eviction set and returns (misses per iteration, aggressor miss rate).
fn dynamic_eviction_profile(template: PatternTemplate, cfg: &HierarchyConfig) -> (f64, f64) {
    let mut h = CacheHierarchy::new(*cfg);
    let ways = cfg.l3.ways;
    let base = 0u64;
    let target_set = h.llc_set_of(base);
    let mut addrs = vec![base];
    let mut pa = base + 64;
    while addrs.len() < ways + 1 {
        if h.llc_set_of(pa) == target_set {
            addrs.push(pa);
        }
        pa += 64;
    }
    let seq = template.expand(ways);
    let warmup = 32u32;
    let measured = 32u32;
    let mut misses = 0u64;
    let mut aggressor_misses = 0u64;
    for iter in 0..(warmup + measured) {
        for &i in &seq {
            let r = h.access(addrs[i], false);
            if iter >= warmup && r.level.is_llc_miss() {
                misses += 1;
                if i == 0 {
                    aggressor_misses += 1;
                }
            }
        }
    }
    (
        f64::from(u32::try_from(misses).unwrap()) / f64::from(measured),
        f64::from(u32::try_from(aggressor_misses).unwrap()) / f64::from(measured),
    )
}

/// Finds a pair index whose victim row is minimum-threshold for `build`.
fn vulnerable_pair(build: impl Fn(usize) -> Box<dyn Attack>) -> usize {
    for i in 0..24 {
        let mut h =
            StandaloneHarness::new(MemoryConfig::paper_platform(), AllocationPolicy::Contiguous);
        let mut a = build(i);
        if h.prepare(a.as_mut()).is_err() {
            continue;
        }
        let dram = h.sys.dram();
        if a.victim_paddrs()
            .iter()
            .any(|&v| dram.is_vulnerable_row(dram.mapping().location_of(v).row_id()))
        {
            return i;
        }
    }
    panic!("no vulnerable pair found");
}

/// Static verdict `HammerCapable` vs dynamic bit flip on a standalone
/// (unprotected) machine.
fn standalone_case(
    name: &str,
    memory: &MemoryConfig,
    vector: &AccessVector,
    build: impl Fn(usize) -> Box<dyn Attack>,
    max_accesses: u64,
) -> Case {
    let ctx = AnalysisContext::from_memory(memory);
    let bounds = pattern_activation_bounds(vector, &ctx);
    let verdict = classify(&bounds, &ctx.disturbance);
    let pair = vulnerable_pair(&build);
    let mut h = StandaloneHarness::new(*memory, AllocationPolicy::Contiguous);
    let mut attack = build(pair);
    h.prepare(attack.as_mut()).unwrap();
    let r = hammer_until_flip(attack.as_mut(), &mut h, max_accesses);
    let capable = matches!(verdict, Verdict::HammerCapable { .. });
    case(
        name,
        capable == r.flipped,
        format!("static {verdict:?} vs dynamic flipped={}", r.flipped),
    )
}

#[test]
fn static_verdicts_agree_with_dynamic_outcomes() {
    let mut cases: Vec<Case> = Vec::new();
    let memory = MemoryConfig::paper_platform();
    let ctx = AnalysisContext::from_memory(&memory);
    let anvil = AnvilConfig::baseline();

    // --- Eviction-set steady state: abstract single-set hierarchy vs the
    // real CacheHierarchy, for every template on the two LLC policies the
    // repo's fingerprinting distinguishes best.
    for template in PatternTemplate::candidates() {
        for policy in [PolicyKind::BitPlru, PolicyKind::TrueLru] {
            let mut cfg = HierarchyConfig::sandy_bridge_i5_2540m();
            cfg.l3.policy = policy;
            let s = eviction_profile(template, policy, &cfg);
            let (dyn_misses, dyn_agg) = dynamic_eviction_profile(template, &cfg);
            let agrees = (s.misses_per_iteration - dyn_misses).abs() < 0.05
                && (s.aggressor_miss_rate - dyn_agg).abs() < 0.05;
            cases.push(case(
                format!("eviction-profile/{template:?}/{policy}"),
                agrees,
                format!(
                    "static m={} a={} vs dynamic m={dyn_misses} a={dyn_agg}",
                    s.misses_per_iteration, s.aggressor_miss_rate
                ),
            ));
        }
    }

    // --- Standalone attacks: static HammerCapable vs real bit flips.
    cases.push(standalone_case(
        "standalone/clflush-double",
        &memory,
        &AccessVector::Clflush { sides: 2 },
        |i| Box::new(DoubleSidedClflush::new().with_pair_index(i)),
        240_000,
    ));
    cases.push(standalone_case(
        "standalone/clflush-single",
        &memory,
        &AccessVector::Clflush { sides: 1 },
        |i| Box::new(SingleSidedClflush::new().with_pair_index(i)),
        900_000,
    ));
    cases.push(standalone_case(
        "standalone/clflush-free",
        &memory,
        &AccessVector::Eviction {
            template: PatternTemplate::Paper,
            policy: PolicyKind::BitPlru,
            sides: 2,
        },
        |i| Box::new(ClflushFreeDoubleSided::new().with_pair_index(i)),
        400_000,
    ));

    // --- Doubled refresh rate (the vendors' mitigation, Section 2.1):
    // the halved window still leaves the CLFLUSH attack above threshold.
    {
        let mut cfg = MemoryConfig::paper_platform();
        cfg.dram = cfg.dram.with_doubled_refresh();
        cases.push(standalone_case(
            "standalone/clflush-double/doubled-refresh",
            &cfg,
            &AccessVector::Clflush { sides: 2 },
            |i| Box::new(DoubleSidedClflush::new().with_pair_index(i)),
            240_000,
        ));
    }

    // --- Invulnerable module control: static Benign, no dynamic flip.
    {
        let mut cfg = MemoryConfig::paper_platform();
        cfg.dram.disturbance = DisturbanceConfig::invulnerable();
        let ictx = AnalysisContext::from_memory(&cfg);
        let bounds = pattern_activation_bounds(&AccessVector::Clflush { sides: 2 }, &ictx);
        let verdict = classify(&bounds, &ictx.disturbance);
        let mut h = StandaloneHarness::new(cfg, AllocationPolicy::Contiguous);
        let mut attack = DoubleSidedClflush::new();
        h.prepare(&mut attack).unwrap();
        let r = hammer_until_flip(&mut attack, &mut h, 150_000);
        cases.push(case(
            "standalone/clflush-double/invulnerable",
            verdict == Verdict::Benign && !r.flipped,
            format!("static {verdict:?} vs dynamic flipped={}", r.flipped),
        ));
    }

    // --- Detector coverage: statically Covered patterns are detected and
    // stopped by the baseline ANVIL platform.
    let covered_attacks: [AttackCase; 3] = [
        (
            "coverage/clflush-double",
            &AccessVector::Clflush { sides: 2 },
            || Box::new(DoubleSidedClflush::new()),
        ),
        (
            "coverage/clflush-single",
            &AccessVector::Clflush { sides: 1 },
            || Box::new(SingleSidedClflush::new()),
        ),
        (
            "coverage/clflush-free",
            &AccessVector::Eviction {
                template: PatternTemplate::Paper,
                policy: PolicyKind::BitPlru,
                sides: 2,
            },
            || Box::new(ClflushFreeDoubleSided::new()),
        ),
    ];
    for (name, vector, build) in covered_attacks {
        let bounds = pattern_activation_bounds(vector, &ctx);
        let verdict = classify(&bounds, &ctx.disturbance);
        let coverage =
            anvil::analyze::check_coverage(&anvil, &memory.clock, ctx.window, &bounds, verdict);
        let mut p = Platform::new(PlatformConfig::with_anvil(anvil));
        p.add_attack(build()).unwrap();
        p.run_ms(24.0).unwrap();
        let detected = !p.detections().is_empty();
        cases.push(case(
            name,
            coverage == CoverageVerdict::Covered && detected && p.total_flips() == 0,
            format!(
                "static {coverage:?} vs dynamic detected={detected} flips={}",
                p.total_flips()
            ),
        ));
    }

    // --- Symbolic verifier vs the four adaptive evasion archetypes on
    // future (half-threshold) DRAM. A *proved* bound must see zero flips
    // when the family's default member actually runs; a *refuted* bound
    // must carry a witness that replays to a real missed detection; an
    // *unconfirmed* bound (too loose to prove, no evader found) must at
    // least not be contradicted by the default member evading.
    {
        const SEED: u64 = 0xE5A51;
        let params = EnvelopeParams::paper_platform().with_flip_threshold(110_000);
        let run_spec = |spec: ArchetypeSpec, cfg: &AnvilConfig| -> WitnessOutcome {
            Witness {
                spec,
                config: *cfg,
                future_dram: true,
                seed: SEED,
                run_ms: 70.0,
                faults: FaultPlan::none(),
                predicted: WitnessOutcome {
                    detected: false,
                    detect_ms: None,
                    flips: 0,
                },
            }
            .replay()
        };
        for (det, base_cfg) in [
            ("baseline", AnvilConfig::baseline()),
            ("hardened", AnvilConfig::hardened()),
        ] {
            let mut cfg = base_cfg;
            cfg.hardening.phase_seed = SEED;
            for (i, archetype) in Archetype::ALL.into_iter().enumerate() {
                let bx = archetype.default_box(&cfg, &memory.clock, &params);
                let b = verify_archetype(archetype, &cfg, &memory.clock, &params, &bx);
                let name = format!("symbolic/{}/{det}", archetype.name());
                if b.bound < params.flip_threshold {
                    let o = run_spec(ArchetypeSpec::defaults()[i], &cfg);
                    cases.push(case(
                        name,
                        o.flips == 0,
                        format!("proved bound {} vs dynamic flips {}", b.bound, o.flips),
                    ));
                } else if let Some(w) =
                    extract_witness(archetype, &cfg, true, SEED, 70.0, FaultPlan::none())
                {
                    cases.push(case(
                        name,
                        w.confirms(),
                        format!("refuted bound {} with witness {:?}", b.bound, w.spec),
                    ));
                } else {
                    let o = run_spec(ArchetypeSpec::defaults()[i], &cfg);
                    cases.push(case(
                        name,
                        !o.missed_detection(),
                        format!(
                            "unconfirmed bound {} vs dynamic detected={} flips={}",
                            b.bound, o.detected, o.flips
                        ),
                    ));
                }
            }
        }
    }

    // --- SPEC workload models: statically Benign, and the simulated
    // benchmark indeed flips nothing on an unprotected machine.
    for b in SpecBenchmark::all() {
        let bounds = workload_activation_bounds(&b.model(), &ctx);
        let verdict = classify_interval(bounds.worst_row, 2, &ctx.disturbance);
        let mut p = Platform::new(PlatformConfig::unprotected());
        p.add_workload(b.build(7)).unwrap();
        p.run_ms(16.0).unwrap();
        cases.push(case(
            format!("workload/{b}"),
            verdict == Verdict::Benign && p.total_flips() == 0,
            format!("static {verdict:?} vs dynamic flips={}", p.total_flips()),
        ));
    }

    // --- The matrix itself.
    let failures: Vec<String> = cases
        .iter()
        .filter(|c| !c.agrees)
        .map(|c| format!("{}: {}", c.name, c.detail))
        .collect();
    assert!(
        failures.is_empty(),
        "static/dynamic disagreements:\n{}",
        failures.join("\n")
    );
    assert!(
        cases.len() >= 20,
        "cross-validation matrix has only {} cases",
        cases.len()
    );
}

/// The full report is internally consistent: capable patterns carry
/// victims, benign ones don't, and the baseline config has no findings.
#[test]
fn full_report_is_consistent() {
    let memory = MemoryConfig::paper_platform();
    let report = analyze_all(&memory, &AnvilConfig::baseline());
    assert!(
        report.patterns.len() >= 25,
        "templates x policies + clflush"
    );
    assert_eq!(report.workloads.len(), 12);
    for p in &report.patterns {
        match p.verdict {
            Verdict::HammerCapable { .. } => {
                assert!(!p.victims.is_empty(), "{}: no victims", p.name);
                assert_ne!(p.coverage, CoverageVerdict::NotApplicable, "{}", p.name);
            }
            _ => assert!(p.victims.is_empty(), "{}: victims on non-capable", p.name),
        }
    }
    // The envelope auditor exposes the baseline's adaptive-adversary
    // holes (boundary-straddling bursts and camouflaged sample-mix
    // dilution) as warnings; nothing else may fire, and all warnings
    // must be envelope findings. Hardening closes them.
    assert!(
        !report.config_findings.is_empty(),
        "the unhardened baseline leaks via adaptive adversaries"
    );
    for f in &report.config_findings {
        assert_eq!(f.severity, Severity::Warning, "{f:?}");
        assert!(f.field.starts_with("envelope."), "{f:?}");
    }
    assert!(!report.envelope.holds());
    let hardened = analyze_all(&memory, &AnvilConfig::hardened());
    assert!(
        hardened.config_findings.is_empty(),
        "hardened config should be clean: {:?}",
        hardened.config_findings
    );
    assert!(hardened.envelope.holds());
    // The paper's headline CLFLUSH-free result: the Paper template on the
    // Sandy Bridge Bit-PLRU LLC is proven hammer-capable and covered.
    let headline = report
        .patterns
        .iter()
        .find(|p| p.name == "eviction/paper/bit-plru")
        .expect("headline pattern present");
    assert!(matches!(headline.verdict, Verdict::HammerCapable { .. }));
    assert_eq!(headline.coverage, CoverageVerdict::Covered);
}

/// Drives the disturbance model directly: `per_side` balanced double-sided
/// activations of `victim`'s neighbours within one refresh interval.
/// Returns the number of bit flips.
fn hammer_disturbance_model(per_side: u64, victim: RowId) -> u64 {
    let d = DisturbanceConfig::paper_ddr3();
    let timing = DramTiming::default();
    let rows_per_bank = 32_768;
    let mut tracker = DisturbanceTracker::new(d, 8_192, rows_per_bank);
    let schedule = RefreshSchedule::new(&timing, rows_per_bank);
    // Hammer right after the victim's refresh so every activation lands in
    // a single accumulation window — the adversarial placement.
    let start = schedule
        .last_refresh(victim.row, schedule.period())
        .unwrap_or(0)
        + 1;
    let above = RowId::new(victim.bank, victim.row - 1);
    let below = RowId::new(victim.bank, victim.row + 1);
    for i in 0..per_side {
        // Interleave sides at the same instant; spacing within the window
        // does not matter to the model, only the count does.
        tracker.on_activation(above, start + i, &schedule);
        tracker.on_activation(below, start + i, &schedule);
    }
    tracker.total_flips()
}

/// First vulnerable (minimum-threshold) row away from the bank edges.
fn vulnerable_victim() -> RowId {
    let d = DisturbanceConfig::paper_ddr3();
    (2u32..32_000)
        .map(|r| RowId::new(anvil::dram::BankId(0), r))
        .find(|&r| is_vulnerable_row(&d, r))
        .expect("vulnerable row exists")
}

proptest! {
    /// Soundness of the Benign verdict: any per-side activation count the
    /// analyzer classifies Benign never flips a bit in the dram
    /// disturbance model, even on minimum-threshold rows with adversarial
    /// placement inside the refresh window.
    #[test]
    fn benign_counts_never_flip(h in 0u64..160_000, row_offset in 0u32..64) {
        let d = DisturbanceConfig::paper_ddr3();
        let interval = anvil::analyze::ActivationInterval { lo: h, hi: h };
        if classify_interval(interval, 2, &d) == Verdict::Benign {
            let base = vulnerable_victim();
            let victim = RowId::new(base.bank, base.row + row_offset);
            prop_assert_eq!(
                hammer_disturbance_model(h, victim),
                0,
                "Benign count {} flipped bits on row {:?}",
                h,
                victim
            );
        }
    }
}

/// The Benign boundary is tight: the smallest per-side count the analyzer
/// refuses to call Benign really does flip a minimum-threshold row.
#[test]
fn benign_boundary_is_tight() {
    let d = DisturbanceConfig::paper_ddr3();
    let floor = anvil::analyze::benign_floor(2, &d);
    assert!(
        classify_interval(
            anvil::analyze::ActivationInterval {
                lo: floor - 1,
                hi: floor - 1
            },
            2,
            &d
        ) == Verdict::Benign
    );
    assert!(hammer_disturbance_model(floor, vulnerable_victim()) > 0);
    assert_eq!(hammer_disturbance_model(floor - 1, vulnerable_victim()), 0);
}
