//! Energy accounting across the platform (the paper's §2.1 refresh-power
//! argument, end to end).

use anvil::core::{Platform, PlatformConfig};
use anvil::dram::EnergyModel;
use anvil::mem::MemoryConfig;
use anvil::workloads::SpecBenchmark;

fn refresh_power_mw(refresh_ms: f64) -> f64 {
    let clock = MemoryConfig::paper_platform().clock;
    let mut cfg = MemoryConfig::paper_platform();
    cfg.dram = cfg.dram.with_refresh_ms(clock, refresh_ms);
    let mut p = Platform::new(PlatformConfig {
        memory: cfg,
        ..PlatformConfig::unprotected()
    });
    let pid = p.add_workload(SpecBenchmark::Libquantum.build(3)).unwrap();
    p.run_core_ops(pid, 200_000).unwrap();
    let now = p.sys().now();
    p.sys()
        .dram()
        .energy(&EnergyModel::ddr3(), now, &clock)
        .refresh_mw()
}

#[test]
fn refresh_power_doubles_per_halving() {
    let p64 = refresh_power_mw(64.0);
    let p32 = refresh_power_mw(32.0);
    let p16 = refresh_power_mw(16.0);
    assert!((1.9..2.1).contains(&(p32 / p64)), "{}", p32 / p64);
    assert!((3.9..4.1).contains(&(p16 / p64)), "{}", p16 / p64);
}

#[test]
fn demand_traffic_energy_tracks_miss_rate() {
    let clock = MemoryConfig::paper_platform().clock;
    let energy_for = |bench: SpecBenchmark| {
        let mut p = Platform::new(PlatformConfig::unprotected());
        let pid = p.add_workload(bench.build(3)).unwrap();
        p.run_core_ops(pid, 300_000).unwrap();
        let now = p.sys().now();
        let r = p.sys().dram().energy(&EnergyModel::ddr3(), now, &clock);
        // Normalize per second so different run lengths compare.
        (r.activation_nj + r.access_nj) / r.seconds
    };
    let mcf = energy_for(SpecBenchmark::Mcf);
    let h264 = energy_for(SpecBenchmark::H264ref);
    assert!(
        mcf > 20.0 * h264,
        "memory-bound mcf ({mcf:.0} nJ/s) must dwarf cache-resident h264ref ({h264:.0} nJ/s)"
    );
}

#[test]
fn idle_module_energy_is_pure_refresh() {
    let clock = MemoryConfig::paper_platform().clock;
    let mut p = Platform::new(PlatformConfig::unprotected());
    // One nearly idle workload (tiny loop, huge compute per op).
    let pid = p.add_workload(SpecBenchmark::Hmmer.build(1)).unwrap();
    // Long enough that the one-time arena warmup is amortized away.
    p.run_core_ops(pid, 800_000).unwrap();
    let now = p.sys().now();
    let r = p.sys().dram().energy(&EnergyModel::ddr3(), now, &clock);
    assert!(r.refresh_share() > 0.9, "share {}", r.refresh_share());
}
