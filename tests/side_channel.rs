//! The Evict+Reload covert channel as an integration test (the paper's
//! Section 2.2 corollary: CLFLUSH-free cache flushing extends
//! Flush+Reload to CLFLUSH-less environments).

use anvil::attacks::build_eviction_set;
use anvil::mem::{
    AccessKind, AllocationPolicy, FrameAllocator, MemoryConfig, MemorySystem, PagemapPolicy,
    Process, PAGE_SIZE,
};

struct Channel {
    sys: MemorySystem,
    victim: Process,
    spy: Process,
    probe_spy: u64,
    probe_victim: u64,
    eviction: anvil::attacks::EvictionSet,
}

fn channel() -> Channel {
    let sys = MemorySystem::new(MemoryConfig::paper_platform());
    let mut frames = FrameAllocator::new(sys.phys().capacity(), AllocationPolicy::Contiguous);
    let mut victim = Process::new(1, "victim");
    let shared_va_victim = victim.mmap(PAGE_SIZE, &mut frames).unwrap();
    let shared_pfn = victim.translate(shared_va_victim).unwrap() >> 12;
    let mut spy = Process::new(2, "spy");
    let shared_va_spy = spy.mmap_shared(&[shared_pfn]);
    let arena_len = 24 << 20;
    let arena = spy.mmap(arena_len, &mut frames).unwrap();
    let probe_spy = shared_va_spy + 0x80;
    let eviction = build_eviction_set(
        &spy,
        PagemapPolicy::Open,
        sys.hierarchy(),
        arena,
        arena_len,
        probe_spy,
    )
    .unwrap();
    Channel {
        sys,
        victim,
        spy,
        probe_spy,
        probe_victim: shared_va_victim + 0x80,
        eviction,
    }
}

impl Channel {
    fn transmit(&mut self, bit: bool) -> bool {
        for _ in 0..2 {
            for &c in &self.eviction.conflict_vas {
                let pa = self.spy.translate(c).unwrap();
                self.sys.access(pa, AccessKind::Read);
            }
        }
        if bit {
            let pa = self.victim.translate(self.probe_victim).unwrap();
            self.sys.access(pa, AccessKind::Read);
        }
        let pa = self.spy.translate(self.probe_spy).unwrap();
        self.sys.access(pa, AccessKind::Read).advance < 60
    }
}

#[test]
fn transmits_a_byte_without_clflush() {
    let mut ch = channel();
    let secret = 0xC5u8;
    let mut recovered = 0u8;
    for bit in (0..8).rev() {
        let sent = (secret >> bit) & 1 == 1;
        recovered = (recovered << 1) | u8::from(ch.transmit(sent));
    }
    assert_eq!(recovered, secret);
    assert_eq!(ch.sys.stats().clflushes, 0, "no CLFLUSH anywhere");
}

#[test]
fn channel_is_reliable_over_many_rounds() {
    let mut ch = channel();
    let mut errors = 0;
    for i in 0..200u32 {
        let sent = i % 3 == 0;
        if ch.transmit(sent) != sent {
            errors += 1;
        }
    }
    assert_eq!(errors, 0, "channel errors: {errors}/200");
}

#[test]
fn shared_mapping_aliases_the_same_memory() {
    let mut ch = channel();
    let pa_spy = ch.spy.translate(ch.probe_spy).unwrap();
    let pa_victim = ch.victim.translate(ch.probe_victim).unwrap();
    assert_eq!(pa_spy, pa_victim, "shared mapping must alias");
    ch.sys.store_u64(pa_victim, 0x5ec3e7);
    let (v, _) = ch.sys.load_u64(pa_spy);
    assert_eq!(v, 0x5ec3e7);
}
