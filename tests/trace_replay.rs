//! Trace record/replay across the whole stack: capture a workload, write
//! the trace to disk, read it back, and run it on the platform.

use anvil::core::{AnvilConfig, Platform, PlatformConfig};
use anvil::workloads::{record_trace, SpecBenchmark, TraceWorkload, Workload};
use std::fmt::Write as _;

#[test]
fn recorded_trace_reproduces_the_original_miss_profile() {
    let ops = 200_000;
    let mut original = SpecBenchmark::Bzip2.build(12);
    let trace = record_trace(original.as_mut(), ops);

    let run = |w: Box<dyn Workload>| {
        let mut p = Platform::new(PlatformConfig::unprotected());
        let pid = p.add_workload(w).unwrap();
        p.run_core_ops(pid, ops as u64).unwrap();
        p.sys().stats().llc_misses
    };
    // A fresh copy of the original vs. its recorded trace: identical op
    // streams, so identical miss counts.
    let misses_orig = run(SpecBenchmark::Bzip2.build(12));
    let misses_replay = run(Box::new(trace));
    assert_eq!(misses_orig, misses_replay);
}

#[test]
fn trace_survives_a_disk_round_trip() {
    let mut original = SpecBenchmark::Gcc.build(3);
    let trace = record_trace(original.as_mut(), 5_000);
    let dir = std::env::temp_dir().join("anvil-trace-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("gcc.trace");
    std::fs::write(&path, trace.to_text()).unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    let mut reloaded = TraceWorkload::parse("gcc-replay", &text).unwrap();
    let mut trace = trace;
    for _ in 0..15_000 {
        assert_eq!(trace.next_op(), reloaded.next_op());
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn hand_written_trace_runs_under_anvil() {
    // A user-supplied trace that ping-pongs two lines plus a scan: runs
    // end-to-end under the detector without tripping anything.
    let mut text = String::from("# synthetic trace\n");
    for i in 0..512u64 {
        let _ = writeln!(text, "R {:x} 2", (i * 64) % 16384);
        let _ = writeln!(text, "W {:x}", 16384 + (i * 8) % 4096);
    }
    let trace = TraceWorkload::parse("synthetic", &text).unwrap();
    let mut p = Platform::new(PlatformConfig::with_anvil(AnvilConfig::baseline()));
    let pid = p.add_workload(Box::new(trace)).unwrap();
    p.run_ms(15.0).unwrap();
    assert!(p.core_stats(pid).unwrap().ops > 100_000);
    assert_eq!(p.total_flips(), 0);
    assert_eq!(
        p.detector_stats().unwrap().threshold_crossings,
        0,
        "a cache-resident trace must stay under stage 1"
    );
}
