//! Cross-crate integration: the full attack/defense arms race, end to end.

use anvil::attacks::{
    hammer_until_flip, Attack, ClflushFreeDoubleSided, DoubleSidedClflush, SingleSidedClflush,
    StandaloneHarness,
};
use anvil::core::{AnvilConfig, Platform, PlatformConfig};
use anvil::dram::MitigationKind;
use anvil::mem::{AllocationPolicy, MemoryConfig, PagemapPolicy};
use anvil::workloads::SpecBenchmark;

/// Finds a pair index whose victim is minimum-threshold for this attack.
fn vulnerable_pair(build: impl Fn(usize) -> Box<dyn anvil::attacks::Attack>) -> usize {
    for i in 0..24 {
        let mut h =
            StandaloneHarness::new(MemoryConfig::paper_platform(), AllocationPolicy::Contiguous);
        let mut a = build(i);
        if h.prepare(a.as_mut()).is_err() {
            continue;
        }
        let dram = h.sys.dram();
        if a.victim_paddrs()
            .iter()
            .any(|&v| dram.is_vulnerable_row(dram.mapping().location_of(v).row_id()))
        {
            return i;
        }
    }
    panic!("no vulnerable pair found");
}

#[test]
fn the_full_arms_race() {
    // 1. The unprotected machine loses.
    let pair = vulnerable_pair(|i| Box::new(DoubleSidedClflush::new().with_pair_index(i)));
    let mut h =
        StandaloneHarness::new(MemoryConfig::paper_platform(), AllocationPolicy::Contiguous);
    let mut attack = DoubleSidedClflush::new().with_pair_index(pair);
    h.prepare(&mut attack).unwrap();
    let r = hammer_until_flip(&mut attack, &mut h, 240_000);
    assert!(r.flipped, "unprotected machine must lose");

    // 2. The vendors' doubled refresh rate also loses (Section 2.1).
    let mut cfg = MemoryConfig::paper_platform();
    cfg.dram = cfg.dram.with_doubled_refresh();
    let mut h = StandaloneHarness::new(cfg, AllocationPolicy::Contiguous);
    let mut attack = DoubleSidedClflush::new().with_pair_index(pair);
    h.prepare(&mut attack).unwrap();
    let r = hammer_until_flip(&mut attack, &mut h, 240_000);
    assert!(
        r.flipped,
        "doubled refresh must still lose (the paper's point)"
    );

    // 3. Restricting CLFLUSH does not stop the CLFLUSH-free attack
    //    (Section 2.2): the attack uses loads only by construction, so run
    //    it and check it flips.
    let pair_cf = vulnerable_pair(|i| Box::new(ClflushFreeDoubleSided::new().with_pair_index(i)));
    let mut h =
        StandaloneHarness::new(MemoryConfig::paper_platform(), AllocationPolicy::Contiguous);
    let mut attack = ClflushFreeDoubleSided::new().with_pair_index(pair_cf);
    h.prepare(&mut attack).unwrap();
    let r = hammer_until_flip(&mut attack, &mut h, 240_000);
    assert!(r.flipped, "CLFLUSH restriction is side-stepped");
    assert_eq!(h.sys.stats().clflushes, 0, "no CLFLUSH used at all");

    // 4. ANVIL wins against both.
    for make in [
        |i| {
            Box::new(DoubleSidedClflush::new().with_pair_index(i))
                as Box<dyn anvil::attacks::Attack>
        },
        |i| {
            Box::new(ClflushFreeDoubleSided::new().with_pair_index(i))
                as Box<dyn anvil::attacks::Attack>
        },
    ] {
        let mut p = Platform::new(PlatformConfig::with_anvil(AnvilConfig::baseline()));
        p.add_attack(make(0)).unwrap();
        p.run_ms(64.0).unwrap();
        assert_eq!(p.total_flips(), 0, "ANVIL must stop the attack");
        assert!(p.first_detection_ms().is_some());
    }
}

#[test]
fn pagemap_hardening_blocks_preparation_but_anvil_not_needed_then() {
    let mut pc = PlatformConfig::unprotected();
    pc.pagemap = PagemapPolicy::Restricted;
    let mut p = Platform::new(pc);
    let err = p
        .add_attack(Box::new(ClflushFreeDoubleSided::new()))
        .unwrap_err();
    assert_eq!(
        err,
        anvil::core::PlatformError::Attack(anvil::attacks::AttackError::PagemapDenied)
    );
}

#[test]
fn hardware_mitigations_also_win_but_need_new_hardware() {
    for mitigation in [
        MitigationKind::Para { p: 0.001 },
        MitigationKind::Trr {
            table_size: 32,
            threshold: 50_000,
        },
    ] {
        let mut cfg = MemoryConfig::paper_platform();
        cfg.dram = cfg.dram.with_mitigation(mitigation);
        let mut h = StandaloneHarness::new(cfg, AllocationPolicy::Contiguous);
        let mut attack = DoubleSidedClflush::new();
        h.prepare(&mut attack).unwrap();
        let r = hammer_until_flip(&mut attack, &mut h, 260_000);
        assert!(!r.flipped, "{mitigation:?} must protect");
        assert!(h.sys.dram().stats().mitigation_refreshes > 0);
    }
}

#[test]
fn single_sided_attack_detected_too() {
    let mut p = Platform::new(PlatformConfig::with_anvil(AnvilConfig::baseline()));
    p.add_attack(Box::new(SingleSidedClflush::new())).unwrap();
    p.run_ms(40.0).unwrap();
    assert_eq!(p.total_flips(), 0);
    assert!(
        p.first_detection_ms().is_some(),
        "single-sided must be detected"
    );
}

#[test]
fn anvil_and_workload_coexist_with_attack() {
    // A benign memory-intensive program shares the machine with an
    // attacker: ANVIL must stop the attack without visibly harming the
    // workload.
    let mut p = Platform::new(PlatformConfig::with_anvil(AnvilConfig::baseline()));
    let wl = p.add_workload(SpecBenchmark::Libquantum.build(5)).unwrap();
    p.add_attack(Box::new(DoubleSidedClflush::new())).unwrap();
    p.run_ms(60.0).unwrap();
    assert_eq!(p.total_flips(), 0);
    assert!(p.first_detection_ms().is_some());
    assert!(
        p.core_stats(wl).unwrap().ops > 100_000,
        "workload kept running"
    );
}

#[test]
fn flips_corrupt_and_rewrite_repairs() {
    // Data-level check across mem + dram: stage known data in the victim
    // row, hammer, observe corruption, rewrite, re-hammer differently.
    let pair = vulnerable_pair(|i| Box::new(DoubleSidedClflush::new().with_pair_index(i)));
    let mut h =
        StandaloneHarness::new(MemoryConfig::paper_platform(), AllocationPolicy::Contiguous);
    let mut attack = DoubleSidedClflush::new().with_pair_index(pair);
    h.prepare(&mut attack).unwrap();
    let victim = attack.victim_paddrs()[0];
    for i in 0..1024u64 {
        h.sys
            .phys_mut()
            .write_u64(victim + i * 8, 0xAAAA_AAAA_AAAA_AAAA);
    }
    let r = hammer_until_flip(&mut attack, &mut h, 240_000);
    assert!(r.flipped);
    let corrupt = (0..1024u64)
        .filter(|&i| h.sys.phys().read_u64(victim + i * 8) != 0xAAAA_AAAA_AAAA_AAAA)
        .count();
    assert!(corrupt > 0, "corruption must be visible in data");
}

#[test]
fn attack_still_works_with_a_prefetcher() {
    // The paper does not model prefetchers (attack code defeats them);
    // with our opt-in next-line prefetcher enabled, the double-sided
    // attack still flips — prefetches of aggressor+64 land in the already
    // open row — and ANVIL still stops it.
    use anvil::cache::PrefetchPolicy;
    let pair = vulnerable_pair(|i| Box::new(DoubleSidedClflush::new().with_pair_index(i)));

    let mut cfg = MemoryConfig::paper_platform();
    cfg.hierarchy.prefetch = PrefetchPolicy::NextLine;
    let mut h = StandaloneHarness::new(cfg, AllocationPolicy::Contiguous);
    let mut attack = DoubleSidedClflush::new().with_pair_index(pair);
    h.prepare(&mut attack).unwrap();
    let r = hammer_until_flip(&mut attack, &mut h, 260_000);
    assert!(r.flipped, "prefetcher must not save the victim");

    let mut pc = PlatformConfig::with_anvil(AnvilConfig::baseline());
    pc.memory.hierarchy.prefetch = PrefetchPolicy::NextLine;
    let mut p = Platform::new(pc);
    p.add_attack(Box::new(DoubleSidedClflush::new().with_pair_index(pair)))
        .unwrap();
    p.run_ms(50.0).unwrap();
    assert_eq!(p.total_flips(), 0, "ANVIL holds with the prefetcher on");
    assert!(p.first_detection_ms().is_some());
}

#[test]
fn timing_attack_detected_by_anvil_end_to_end() {
    use anvil::attacks::TimingClflushFree;
    use anvil::mem::PagemapPolicy;
    let mut pc = PlatformConfig::with_anvil(AnvilConfig::baseline());
    pc.pagemap = PagemapPolicy::Restricted;
    let mut p = Platform::new(pc);
    p.add_attack(Box::new(TimingClflushFree::new())).unwrap();
    p.run_ms(80.0).unwrap();
    assert_eq!(p.total_flips(), 0);
    assert!(
        p.first_detection_ms().is_some(),
        "the pagemap-free attack must still be detected"
    );
}
