//! Merge gates for the symbolic guarantee verifier.
//!
//! Three claims are enforced here. First, every counterexample the
//! verifier extracts must *replay*: pushing the witness back through the
//! full dynamic simulator reproduces exactly the detector outcome the
//! verifier predicted (proptest over extraction seeds). Second, the
//! committed `results/verifier.json` must regenerate: its pure bound
//! fields match a fresh abstract-interpretation run and its recorded
//! witnesses still confirm, so a detector change that shifts a proven
//! bound or kills a counterexample fails CI until the record is
//! regenerated. Third, the committed `results/static_analysis.json`
//! regenerates byte-for-byte from `analyze_all`, envelope-comparison
//! section included.

use anvil::analyze::{analyze_all, extract_witness, verify_config, Archetype, Witness};
use anvil::core::{AnvilConfig, EnvelopeParams};
use anvil::faults::FaultPlan;
use anvil::mem::MemoryConfig;
use proptest::prelude::*;
use serde_json::Value;
use std::fs;
use std::path::{Path, PathBuf};

fn results_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("results")
        .join(name)
}

fn committed(name: &str) -> Value {
    let text = fs::read_to_string(results_path(name)).expect("committed results file");
    serde_json::from_str(&text).expect("committed results file is valid JSON")
}

fn campaign_config(detector: &str, seed: u64) -> AnvilConfig {
    let mut cfg = match detector {
        "baseline" => AnvilConfig::baseline(),
        "hardened" => AnvilConfig::hardened(),
        other => panic!("unknown detector {other:?}"),
    };
    cfg.hardening.phase_seed = seed;
    cfg
}

/// The committed verifier record regenerates: every cell's pure bound
/// fields match a fresh symbolic run, every verdict is consistent with
/// its bound, and every recorded witness still replays to its recorded
/// missed detection.
#[test]
fn committed_verifier_record_regenerates() {
    let v = committed("verifier.json");
    assert_eq!(v["experiment"], "verifier");
    assert_eq!(v["smoke"], false, "commit the full matrix, not --smoke");
    assert_eq!(v["violations"], 0, "committed record carries violations");
    assert_eq!(v["demonstrated"], true);

    let clock = MemoryConfig::paper_platform().clock;
    let seed = v["seed"].as_u64().expect("seed");
    let cells = v["cells"].as_array().expect("cells");
    assert_eq!(cells.len(), 16, "2 detectors x 4 archetypes x 2 thresholds");
    let mut refutations = 0u32;
    for cell in cells {
        let detector = cell["detector"].as_str().expect("detector");
        let flip = cell["flip_threshold"].as_u64().expect("flip_threshold");
        let cfg = campaign_config(detector, seed);
        let params = EnvelopeParams::paper_platform().with_flip_threshold(flip);
        let bound = verify_config(&cfg, &clock, &params)
            .into_iter()
            .find(|b| b.archetype.name() == cell["archetype"].as_str().expect("archetype"))
            .expect("archetype present in fresh run");
        assert_eq!(
            cell["bound"].as_u64(),
            Some(bound.bound),
            "{detector}/{}@{flip}: committed bound is stale; rerun \
             `cargo run --release -p anvil-bench --bin verify`",
            bound.archetype.name()
        );
        assert_eq!(cell["audit_budget"].as_u64(), Some(bound.audit_budget));
        assert_eq!(cell["sound_wrt_audit"], true, "{cell}");

        match cell["verdict"].as_str().expect("verdict") {
            "proved" => assert!(bound.bound < flip, "{cell}"),
            "refuted" => {
                assert!(bound.bound >= flip, "{cell}");
                let text = serde_json::to_string(&cell["witness"]).expect("witness renders");
                let w: Witness = serde_json::from_str(&text).expect("witness deserializes");
                assert!(
                    w.confirms(),
                    "committed witness no longer replays to its missed detection: {cell}"
                );
                refutations += 1;
            }
            "unconfirmed" => assert!(bound.bound >= flip, "{cell}"),
            other => panic!("unknown verdict {other:?}"),
        }
    }
    assert!(refutations > 0, "no refutation exercises witness replay");
}

/// The committed static-analysis report (including the symbolic
/// envelope-comparison section) regenerates byte-for-byte through the
/// exact pipeline the `static_analysis` binary uses.
#[test]
fn committed_static_analysis_regenerates_byte_for_byte() {
    let committed =
        fs::read_to_string(results_path("static_analysis.json")).expect("committed report");
    let report = analyze_all(&MemoryConfig::paper_platform(), &AnvilConfig::baseline());
    let value = serde_json::to_value(&report);
    let regenerated = serde_json::to_string_pretty(&value).expect("report renders");
    assert_eq!(
        committed, regenerated,
        "results/static_analysis.json is stale; rerun \
         `cargo run --release -p anvil-bench --bin static_analysis`"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Every counterexample the verifier extracts — at any campaign seed,
    /// which reshuffles both the DRAM weak-cell map and the hardened
    /// phase schedule — replays through the dynamic simulator to exactly
    /// the predicted outcome, and that outcome is a real missed
    /// detection.
    #[test]
    fn extracted_witnesses_replay_to_their_predicted_outcome(seed in 0u64..1 << 20) {
        let config = campaign_config("baseline", seed);
        for archetype in [Archetype::Sustained, Archetype::Straddle] {
            if let Some(w) =
                extract_witness(archetype, &config, true, seed, 70.0, FaultPlan::none())
            {
                prop_assert!(w.predicted.missed_detection());
                prop_assert_eq!(w.replay(), w.predicted);
                prop_assert!(w.confirms());
            }
        }
    }
}
