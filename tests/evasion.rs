//! The evasion campaign's two contracts, at the facade level: a campaign
//! cell reproduces byte-for-byte from its seed, and the hardened
//! countermeasures defeat the adaptive adversaries on future DRAM.

use anvil::adversary::{DistributedManySided, DutyCycleHammer};
use anvil::attacks::Attack;
use anvil::core::{AnvilConfig, Platform, PlatformConfig};
use anvil::dram::DisturbanceConfig;
use proptest::prelude::*;

/// One campaign cell, exactly as `--bin evasion` composes it: the seed is
/// threaded into the hardened window-phase schedule and the DRAM fault
/// map. Returns a full textual record of everything the campaign reports.
fn campaign_cell(attack: Box<dyn Attack>, hardened: bool, seed: u64, ms: f64) -> String {
    let mut cfg = if hardened {
        AnvilConfig::hardened()
    } else {
        AnvilConfig::baseline()
    };
    cfg.hardening.phase_seed = seed;
    let mut pc = PlatformConfig::with_anvil(cfg);
    pc.memory.dram.disturbance = DisturbanceConfig::future_half_threshold();
    pc.memory.dram.seed ^= seed;
    let mut p = Platform::new(pc);
    p.add_attack(attack).unwrap();
    p.run_ms(ms).unwrap();
    format!(
        "detect={:?} flips={} stats={:?}",
        p.first_detection_ms(),
        p.total_flips(),
        p.detector_stats().unwrap()
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Byte-for-byte determinism: the same seed replays to an identical
    /// record — the property `results/evasion.json` relies on for
    /// reproducing any failing cell.
    #[test]
    fn campaign_cell_replays_byte_for_byte_from_its_seed(seed in 0u64..1_000_000) {
        let a = campaign_cell(Box::new(DutyCycleHammer::new()), true, seed, 30.0);
        let b = campaign_cell(Box::new(DutyCycleHammer::new()), true, seed, 30.0);
        prop_assert_eq!(a, b);
    }
}

#[test]
fn distributed_adversary_is_convicted_by_the_ledger() {
    // No single row of the many-sided spread clears the per-window rate
    // gate, so only the cross-window ledger can convict it.
    let mut pc = PlatformConfig::with_anvil(AnvilConfig::hardened());
    pc.memory.dram.disturbance = DisturbanceConfig::future_half_threshold();
    let mut p = Platform::new(pc);
    p.add_attack(Box::new(DistributedManySided::new())).unwrap();
    p.run_ms(40.0).unwrap();
    let stats = *p.detector_stats().unwrap();
    assert!(
        p.first_detection_ms().is_some(),
        "the hardened detector must catch the distributed hammer"
    );
    assert_eq!(p.total_flips(), 0);
    assert!(
        stats.ledger_flags > 0,
        "the conviction must come from accumulated ledger evidence"
    );
}
