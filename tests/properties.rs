//! Property-based tests on the core data structures and invariants.

use anvil::cache::{Cache, CacheConfig, CacheHierarchy, HierarchyConfig, PolicyKind};
use anvil::dram::{
    AddressMapping, BankId, DramGeometry, DramLocation, DramTiming, RefreshSchedule,
};
use anvil::mem::{AccessKind, MemoryConfig, MemorySystem};
use proptest::prelude::*;

proptest! {
    /// Address mapping is a bijection over the module.
    #[test]
    fn mapping_round_trips(pa in 0u64..(4u64 << 30)) {
        let map = AddressMapping::new(DramGeometry::ddr3_4gb());
        let loc = map.location_of(pa);
        prop_assert_eq!(map.address_of(loc), pa);
    }

    /// Same-bank row offsets preserve bank and column and shift the row.
    #[test]
    fn row_offsets_stay_in_bank(pa in 0u64..(4u64 << 30), delta in -4i64..=4) {
        let map = AddressMapping::new(DramGeometry::ddr3_4gb());
        if let Some(pa2) = map.same_bank_row_offset(pa, delta) {
            let a = map.location_of(pa);
            let b = map.location_of(pa2);
            prop_assert_eq!(a.bank, b.bank);
            prop_assert_eq!(a.col, b.col);
            prop_assert_eq!(b.row as i64 - a.row as i64, delta);
        }
    }

    /// Decoded locations are always within the geometry.
    #[test]
    fn locations_in_bounds(pa in 0u64..(4u64 << 30)) {
        let geom = DramGeometry::ddr3_4gb();
        let map = AddressMapping::new(geom);
        let loc = map.location_of(pa);
        prop_assert!(loc.bank.0 < geom.total_banks());
        prop_assert!(loc.row < geom.rows_per_bank);
        prop_assert!(loc.col < geom.row_bytes);
    }

    /// Every row's auto-refresh period equals the schedule period, for
    /// arbitrary rows and observation times.
    #[test]
    fn refresh_is_periodic(row in 0u32..32_768, t in 0u64..2_000_000_000) {
        let timing = DramTiming::default();
        let s = RefreshSchedule::new(&timing, 32_768);
        if let Some(last) = s.last_refresh(row, t) {
            prop_assert!(last <= t);
            prop_assert_eq!(s.last_refresh(row, last), Some(last));
            prop_assert_eq!(s.next_refresh(row, last), last + s.period());
        }
        prop_assert!(s.next_refresh(row, t) > t);
    }

    /// A cache never holds more lines than its capacity, never reports a
    /// hit for a line it does not hold, and probing agrees with access.
    #[test]
    fn cache_capacity_invariant(
        addrs in prop::collection::vec(0u64..(1 << 16), 1..200),
        policy_sel in 0usize..5,
    ) {
        let policy = PolicyKind::deterministic_candidates()[policy_sel];
        let mut c = Cache::new(CacheConfig {
            capacity_bytes: 2048,
            ways: 4,
            line_bytes: 64,
            policy,
            latency: 4,
        });
        for &a in &addrs {
            let was_resident = c.probe(a);
            let r = c.access(a, false);
            prop_assert_eq!(r.hit, was_resident, "probe/access disagree");
            prop_assert!(c.resident_lines() <= 32);
            prop_assert!(c.probe(a), "just-accessed line must be resident");
        }
    }

    /// Inclusion: any line in L1 or L2 is also in the LLC.
    #[test]
    fn hierarchy_inclusion_invariant(
        addrs in prop::collection::vec(0u64..(1 << 18), 1..300),
        writes in prop::collection::vec(any::<bool>(), 1..300),
    ) {
        let mut h = CacheHierarchy::new(HierarchyConfig::tiny());
        for (&a, &w) in addrs.iter().zip(writes.iter().cycle()) {
            h.access(a, w);
        }
        // Check inclusion for every address we touched.
        for &a in &addrs {
            if matches!(h.probe(a), Some(anvil::cache::HitLevel::L1 | anvil::cache::HitLevel::L2)) {
                prop_assert!(h.llc_probe(a), "inclusion violated for {:#x}", a);
            }
        }
    }

    /// The memory system's clock is monotone and every access costs time.
    #[test]
    fn clock_monotone(ops in prop::collection::vec((0u64..(1 << 20), any::<bool>()), 1..200)) {
        let mut sys = MemorySystem::new(MemoryConfig::tiny());
        let mut last = sys.now();
        for &(pa, w) in &ops {
            let kind = if w { AccessKind::Write } else { AccessKind::Read };
            let o = sys.access(pa, kind);
            prop_assert!(o.advance > 0);
            prop_assert!(sys.now() > last);
            last = sys.now();
        }
    }

    /// Stored data reads back, regardless of interleaved traffic.
    #[test]
    fn data_integrity_without_hammering(
        writes in prop::collection::vec((0u64..(1 << 20), any::<u64>()), 1..50),
    ) {
        let mut sys = MemorySystem::new(MemoryConfig::tiny());
        let mut expected = std::collections::HashMap::new();
        for &(pa, v) in &writes {
            let pa = pa & !7;
            sys.store_u64(pa, v);
            expected.insert(pa, v);
        }
        for (&pa, &v) in &expected {
            let (got, _) = sys.load_u64(pa);
            prop_assert_eq!(got, v);
        }
    }

    /// Bank-aware addressing: two addresses with equal bank+row always
    /// land in the same row buffer (no aliasing in the decode).
    #[test]
    fn no_decode_aliasing(pa1 in 0u64..(4u64 << 30), pa2 in 0u64..(4u64 << 30)) {
        let map = AddressMapping::new(DramGeometry::ddr3_4gb());
        let (a, b) = (map.location_of(pa1), map.location_of(pa2));
        if a == b {
            prop_assert_eq!(pa1, pa2);
        }
    }
}

#[test]
fn dram_location_constructor_round_trip() {
    let map = AddressMapping::new(DramGeometry::ddr3_4gb());
    for bank in 0..16 {
        let loc = DramLocation {
            bank: BankId(bank),
            row: 1000 + bank,
            col: 64 * bank,
        };
        assert_eq!(map.location_of(map.address_of(loc)), loc);
    }
}
