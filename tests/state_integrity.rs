//! Property-based self-integrity of the detector's guarded state cells.
//!
//! The self-defense campaign injects physically modelled disturbance
//! flips into the supervised detector's own DRAM-resident state. These
//! properties pin the contract that campaign relies on, for *every*
//! addressable state site, replica subset, and bit position (word or
//! checksum): a flip is always surfaced as a typed
//! [`StateCorruption`](anvil::core::StateCorruption) — repaired in place
//! when any checksummed replica survives, escalated when none does —
//! and a repaired detector is byte-for-byte indistinguishable from one
//! that was never corrupted, so no decision is ever computed from a
//! corrupted value. Mirrors `torn_checkpoint.rs`, which pins the same
//! fail-closed discipline for the checkpoint wire format.

use anvil::core::AnvilConfig;
use anvil::dram::{AddressMapping, CpuClock, DramGeometry};
use anvil::pmu::{EventKind, Pmu, SamplerConfig};
use anvil::runtime::{RuntimeConfig, SupervisedOutcome, Supervisor};
use proptest::prelude::*;

/// A serviced hardened supervisor with guarded state and a populated
/// carry, plus its PMU — representative words for mutations to land on,
/// not freshly zeroed cells.
fn serviced_supervisor() -> (Supervisor, Pmu) {
    let mut pmu = Pmu::new(SamplerConfig::anvil_default());
    let mut sup = Supervisor::new(
        AnvilConfig::hardened(),
        RuntimeConfig::default(),
        CpuClock::SANDY_BRIDGE_2_6GHZ,
        166_400_000,
        0,
        &mut pmu,
    );
    let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
    // Two quiet windows with sub-threshold miss traffic: the EWMA carry,
    // window scale, and jitter stream all hold non-trivial values.
    for _ in 0..2 {
        let deadline = sup.deadline();
        pmu.counter_mut(EventKind::LongestLatCacheMiss)
            .add(12_000, deadline - 1);
        pmu.counter_mut(EventKind::MemLoadUopsRetiredLlcMiss)
            .add(12_000, deadline - 1);
        sup.service(deadline, &mut pmu, &mapping, &mut |_pid, va| Some(va))
            .expect("fault-free service succeeds");
    }
    assert!(
        sup.drain_state_corruptions().is_empty(),
        "clean services must not declare corruption"
    );
    (sup, pmu)
}

/// The decision-relevant state of a checkpoint: everything except the
/// activity counters (`stats` legitimately differs by exactly the
/// declared repair — that is the declaration working, not a leak).
fn decision_state(bytes: &[u8]) -> serde_json::Value {
    let text = std::str::from_utf8(bytes).expect("checkpoint is utf-8");
    let body = text
        .split_once('\n')
        .expect("checkpoint has a hash line and a payload")
        .1;
    let mut v: serde_json::Value = serde_json::from_str(body).expect("checkpoint payload parses");
    match &mut v {
        serde_json::Value::Object(entries) => entries.retain(|(k, _)| k != "stats"),
        other => panic!("checkpoint payload is an object, got {other:?}"),
    }
    v
}

proptest! {
    /// Any single-bit flip over any state site and any *proper* replica
    /// subset is declared exactly once as `repaired` — a checksummed
    /// majority (or the single surviving valid replica) vouches for the
    /// value — and the repaired detector checkpoints byte-identically to
    /// an untouched twin: the corrupted word never leaks into any
    /// decision.
    #[test]
    fn any_proper_subset_flip_is_repaired_to_the_exact_value(
        index in 0usize..1 << 16,
        mask in 1u8..7,
        bit in 0u8..128,
    ) {
        let (mut sup, pmu) = serviced_supervisor();
        let (twin, twin_pmu) = serviced_supervisor();
        let cells = sup.state_cell_count();
        let site = sup
            .corrupt_state_cell(index % cells, mask, bit)
            .expect("index is in range");

        let records = sup.scrub_state_final();
        prop_assert_eq!(records.len(), 1, "exactly one declaration for one flip");
        prop_assert_eq!(records[0].site, site);
        prop_assert!(records[0].repaired, "a surviving replica must repair {site:?}");
        prop_assert_eq!(sup.stats().state_repairs, 1);
        prop_assert_eq!(sup.stats().state_escalations, 0);
        prop_assert_eq!(
            decision_state(&sup.detector().checkpoint(&pmu).to_bytes()),
            decision_state(&twin.detector().checkpoint(&twin_pmu).to_bytes()),
            "repair must restore the exact pre-corruption state"
        );
    }

    /// Correlated damage — the same bit flipped in *every* replica — can
    /// never be silently absorbed either: it is declared exactly once as
    /// unrepairable and counted as an escalation. (Whether the words
    /// still happen to agree is irrelevant: with no checksum vouching
    /// for any replica, the cell is untrusted by policy.)
    #[test]
    fn an_all_replica_flip_is_declared_and_escalated(
        index in 0usize..1 << 16,
        bit in 0u8..128,
    ) {
        let (mut sup, _pmu) = serviced_supervisor();
        let cells = sup.state_cell_count();
        let site = sup
            .corrupt_state_cell(index % cells, 0b111, bit)
            .expect("index is in range");

        let records = sup.scrub_state_final();
        prop_assert_eq!(records.len(), 1, "exactly one declaration for one strike");
        prop_assert_eq!(records[0].site, site);
        prop_assert!(!records[0].repaired, "no replica survives a correlated strike");
        prop_assert_eq!(sup.stats().state_repairs, 0);
        prop_assert_eq!(sup.stats().state_escalations, 1);
    }
}

/// End to end through the service path: an unrepairable corruption is
/// found — by the incremental scrub when the cursor reaches the carry's
/// slice, or by the detector's own guarded read first — and escalates to
/// a restart from the last good checkpoint, declared as a `Restarted`
/// outcome with a recovery gap, within one scrub rotation. Never a
/// silent continuation.
#[test]
fn service_escalates_an_unrepairable_carry_to_a_restart() {
    let (mut sup, mut pmu) = serviced_supervisor();
    let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
    sup.corrupt_state_cell(0, 0b111, 62).expect("carry exists");

    let mut restarted = false;
    for _ in 0..=RuntimeConfig::default().scrub_slices {
        let deadline = sup.deadline();
        let outcome = sup
            .service(deadline, &mut pmu, &mapping, &mut |_pid, va| Some(va))
            .expect("escalation restarts within budget");
        if let SupervisedOutcome::Restarted(r) = outcome {
            assert!(r.gap > 0, "a declared recovery gap");
            assert!(r.resumed_at > deadline);
            restarted = true;
            break;
        }
    }
    assert!(
        restarted,
        "the corruption must escalate within one scrub rotation"
    );
    assert_eq!(sup.stats().state_escalations, 1);
    assert_eq!(sup.stats().restarts, 1);
    let declared = sup.drain_state_corruptions();
    assert!(
        declared.iter().any(|c| !c.repaired),
        "the escalation carries a typed unrepaired record: {declared:?}"
    );

    // The restarted detector is healthy: the next window services
    // normally and declares nothing.
    let deadline = sup.deadline();
    let outcome = sup
        .service(deadline, &mut pmu, &mapping, &mut |_pid, va| Some(va))
        .expect("post-restart service succeeds");
    assert!(matches!(outcome, SupervisedOutcome::Serviced { .. }));
    assert!(sup.drain_state_corruptions().is_empty());
}
