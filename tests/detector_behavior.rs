//! Integration tests of detector behaviour that span pmu + core + mem:
//! stage transitions, facility selection, and adaptive-attacker scenarios.

use anvil::attacks::{Attack, AttackEnv, AttackOp};
use anvil::core::{AnvilConfig, Platform, PlatformConfig};
use anvil::dram::DisturbanceConfig;
use anvil::mem::AccessKind;

/// A store-based hammer: like the CLFLUSH attack but writing, to exercise
/// the precise-store sampling path (ANVIL arms stores-only when loads are
/// under 10% of misses).
#[derive(Debug)]
struct StoreHammer {
    inner: anvil::attacks::DoubleSidedClflush,
    ops: Vec<AttackOp>,
    cursor: usize,
}

impl StoreHammer {
    fn new() -> Self {
        StoreHammer {
            inner: anvil::attacks::DoubleSidedClflush::new(),
            ops: Vec::new(),
            cursor: 0,
        }
    }
}

impl Attack for StoreHammer {
    fn name(&self) -> &'static str {
        "store-hammer"
    }

    fn prepare(&mut self, env: &mut AttackEnv<'_>) -> Result<(), anvil::attacks::AttackError> {
        self.inner.prepare(env)?;
        // Re-express the inner attack's loop with stores.
        for _ in 0..4 {
            let op = self.inner.next_op();
            self.ops.push(match op {
                AttackOp::Access { vaddr, .. } => AttackOp::Access {
                    vaddr,
                    kind: AccessKind::Write,
                },
                other => other,
            });
        }
        Ok(())
    }

    fn next_op(&mut self) -> AttackOp {
        let op = self.ops[self.cursor];
        self.cursor = (self.cursor + 1) % self.ops.len();
        op
    }

    fn aggressor_paddrs(&self) -> Vec<u64> {
        self.inner.aggressor_paddrs()
    }

    fn victim_paddrs(&self) -> Vec<u64> {
        self.inner.victim_paddrs()
    }
}

#[test]
fn store_based_hammer_is_detected_via_precise_store() {
    let mut p = Platform::new(PlatformConfig::with_anvil(AnvilConfig::baseline()));
    p.add_attack(Box::new(StoreHammer::new())).unwrap();
    p.run_ms(40.0).unwrap();
    assert_eq!(p.total_flips(), 0);
    assert!(
        p.first_detection_ms().is_some(),
        "a write-only hammer must be caught by the precise-store facility"
    );
}

#[test]
fn slow_attacker_evades_baseline_but_not_light() {
    // Section 4.5 scenario 2: spread 110K accesses over a whole refresh
    // period, staying under the 20K/6ms stage-1 threshold. On future DRAM
    // (flip at 110K) ANVIL-light's halved threshold still catches it.
    #[derive(Debug)]
    struct Throttled {
        inner: anvil::attacks::DoubleSidedClflush,
        i: u32,
    }
    impl Attack for Throttled {
        fn name(&self) -> &'static str {
            "throttled-hammer"
        }
        fn prepare(&mut self, env: &mut AttackEnv<'_>) -> Result<(), anvil::attacks::AttackError> {
            self.inner.prepare(env)
        }
        fn next_op(&mut self) -> AttackOp {
            self.i += 1;
            // Pad each hammer pair with compute so the miss rate lands
            // between the light (10K/6ms) and baseline (20K/6ms)
            // thresholds: ~2900 accesses/ms = 17.4K per 6ms.
            if self.i.is_multiple_of(5) {
                AttackOp::Compute { cycles: 1000 }
            } else {
                self.inner.next_op()
            }
        }
        fn aggressor_paddrs(&self) -> Vec<u64> {
            self.inner.aggressor_paddrs()
        }
        fn victim_paddrs(&self) -> Vec<u64> {
            self.inner.victim_paddrs()
        }
    }

    let run = |anvil: AnvilConfig| {
        let mut pc = PlatformConfig::with_anvil(anvil);
        pc.memory.dram.disturbance = DisturbanceConfig::future_half_threshold();
        let mut p = Platform::new(pc);
        p.add_attack(Box::new(Throttled {
            inner: anvil::attacks::DoubleSidedClflush::new(),
            i: 0,
        }))
        .unwrap();
        p.run_ms(70.0).unwrap();
        (
            p.first_detection_ms(),
            p.detector_stats().unwrap().threshold_crossings,
        )
    };

    let (_, baseline_crossings) = run(AnvilConfig::baseline());
    let (light_detect, light_crossings) = run(AnvilConfig::light());
    assert!(
        light_crossings > 0,
        "light's lower threshold must trip on the throttled attack"
    );
    assert!(
        light_detect.is_some(),
        "ANVIL-light must detect the slow attacker"
    );
    // The baseline may or may not trip depending on exact rates; the key
    // property is that light trips strictly more often.
    assert!(light_crossings >= baseline_crossings);
}

#[test]
fn fast_attacker_on_future_dram_beats_baseline_but_not_heavy() {
    // Section 4.5 scenario 1: on half-threshold DRAM the flip lands at
    // ~8 ms, before baseline's earliest possible response (12 ms), but
    // after ANVIL-heavy's (4 ms).
    let run = |anvil: AnvilConfig| {
        let mut pc = PlatformConfig::with_anvil(anvil);
        pc.memory.dram.disturbance = DisturbanceConfig::future_half_threshold();
        let mut p = Platform::new(pc);
        // Scan for a vulnerable pair so the flip would really land.
        let mut chosen = 0;
        for i in 0..24 {
            let mut probe = Platform::new(PlatformConfig::unprotected());
            let pid = probe
                .add_attack(Box::new(
                    anvil::attacks::DoubleSidedClflush::new().with_pair_index(i),
                ))
                .unwrap();
            let (_, victims) = probe.attack_truth(pid);
            let dram = probe.sys().dram();
            if dram.is_vulnerable_row(dram.mapping().location_of(victims[0]).row_id()) {
                chosen = i;
                break;
            }
        }
        let attack = anvil::attacks::DoubleSidedClflush::new().with_pair_index(chosen);
        p.add_attack(Box::new(attack)).unwrap();
        p.run_ms(70.0).unwrap();
        p.total_flips()
    };

    let baseline_flips = run(AnvilConfig::baseline());
    let heavy_flips = run(AnvilConfig::heavy());
    assert_eq!(heavy_flips, 0, "ANVIL-heavy must protect future DRAM");
    assert!(
        baseline_flips >= heavy_flips,
        "heavy must do at least as well as baseline"
    );
}

#[test]
fn duty_cycle_straddler_evades_baseline_but_not_hardened() {
    // The duty-cycled burst splits 14K misses into each window adjacent
    // to a stage-1 boundary — under the paper's 20K threshold — yet
    // sustains enough activations to flip future DRAM. The hardened
    // detector's EWMA carry, jittered phase, and sticky stage-2 sampling
    // must close exactly this hole.
    use anvil::adversary::DutyCycleHammer;
    let run = |anvil: AnvilConfig| {
        let mut pc = PlatformConfig::with_anvil(anvil);
        pc.memory.dram.disturbance = DisturbanceConfig::future_half_threshold();
        let mut p = Platform::new(pc);
        p.add_attack(Box::new(DutyCycleHammer::new())).unwrap();
        p.run_ms(70.0).unwrap();
        (
            p.first_detection_ms(),
            p.total_flips(),
            p.detector_stats().unwrap().threshold_crossings,
        )
    };

    let (base_detect, base_flips, base_crossings) = run(AnvilConfig::baseline());
    assert_eq!(
        base_crossings, 0,
        "each straddled window must stay under the baseline threshold"
    );
    assert!(base_detect.is_none(), "the baseline never even samples");
    assert!(
        base_flips > 0,
        "the straddler must flip future DRAM under the paper detector"
    );

    let (hard_detect, hard_flips, hard_crossings) = run(AnvilConfig::hardened());
    assert!(
        hard_crossings > 0,
        "carry + jitter must trip stage 1 on the same burst train"
    );
    assert!(
        hard_detect.is_some(),
        "sticky sampling must attribute the burst even across its quiet half"
    );
    assert_eq!(hard_flips, 0, "hardened must uphold the no-flip guarantee");
}

#[test]
fn ledger_entries_decay_to_zero_for_benign_rows() {
    // A benign one-off spike lands a row in the suspicion ledger; with no
    // fresh evidence its score must decay geometrically and the entry be
    // pruned, so transient workload phases never accumulate into a
    // conviction.
    use anvil::core::{analyze_with_ledger, RowSample, SuspicionLedger, FULL_WEIGHT};
    use anvil::dram::{BankId, RowId};

    let config = AnvilConfig::hardened();
    let benign = RowId::new(BankId(1), 700);
    let mut ledger = SuspicionLedger::new();
    let ts = 15_600_000; // 6 ms
    let period = 166_400_000; // 64 ms
    let spike: Vec<RowSample> = (0..8)
        .map(|i| RowSample {
            row: benign,
            paddr: 0x1000 + i * 64,
            pid: 9,
            weight: FULL_WEIGHT,
        })
        .collect();
    let report = analyze_with_ledger(&config, &spike, 2_000, ts, period, Some(&mut ledger));
    assert!(
        !report.detected(),
        "a 2K-miss window is nowhere near the hammer rate"
    );
    let initial = ledger.score(benign);
    assert!(initial > 0.0, "the spike must open a ledger entry");

    // Subsequent windows carry evidence only for an unrelated row.
    let elsewhere = vec![RowSample {
        row: RowId::new(BankId(2), 40),
        paddr: 0x9000,
        pid: 11,
        weight: FULL_WEIGHT,
    }];
    let mut prev = initial;
    for _ in 0..40 {
        analyze_with_ledger(&config, &elsewhere, 1_000, ts, period, Some(&mut ledger));
        let now = ledger.score(benign);
        assert!(now <= prev, "benign score must never grow without evidence");
        prev = now;
        if now <= 0.0 {
            break;
        }
    }
    assert!(
        ledger.score(benign) <= 0.0,
        "the benign row must decay out of the ledger entirely"
    );
}

#[test]
fn detector_stats_are_consistent() {
    let mut p = Platform::new(PlatformConfig::with_anvil(AnvilConfig::baseline()));
    p.add_attack(Box::new(anvil::attacks::DoubleSidedClflush::new()))
        .unwrap();
    p.run_ms(50.0).unwrap();
    let s = *p.detector_stats().unwrap();
    assert!(s.stage1_windows >= s.threshold_crossings);
    assert_eq!(s.threshold_crossings, s.stage2_windows);
    assert!(s.stage2_windows >= s.detections);
    assert_eq!(s.selective_refreshes as usize, p.refresh_log().len());
    assert!(s.samples_analyzed > 0);
}

#[test]
fn suspend_policy_stops_the_attacker_and_spares_workloads() {
    use anvil::core::ResponsePolicy;
    use anvil::workloads::SpecBenchmark;
    let mut pc = PlatformConfig::with_anvil(AnvilConfig::baseline());
    pc.response = ResponsePolicy::RefreshAndSuspend {
        consecutive_detections: 3,
    };
    let mut p = Platform::new(pc);
    let workload_pid = p.add_workload(SpecBenchmark::Mcf.build(9)).unwrap();
    let attack_pid = p
        .add_attack(Box::new(anvil::attacks::DoubleSidedClflush::new()))
        .unwrap();
    p.run_ms(120.0).unwrap();
    assert_eq!(p.total_flips(), 0);
    let suspended = p.suspended_pids();
    assert!(
        suspended.contains(&attack_pid),
        "persistent attacker must be suspended: {suspended:?}"
    );
    assert!(
        !suspended.contains(&workload_pid),
        "benign mcf must keep running: {suspended:?}"
    );
    // After suspension the attacker stops making progress but the
    // workload continues.
    let ops_before = p.core_stats(workload_pid).unwrap().ops;
    let attack_ops = p.core_stats(attack_pid).unwrap().ops;
    p.run_ms(20.0).unwrap();
    assert!(p.core_stats(workload_pid).unwrap().ops > ops_before);
    assert_eq!(p.core_stats(attack_pid).unwrap().ops, attack_ops);
}

#[test]
fn detections_attribute_the_attacking_pid() {
    let mut p = Platform::new(PlatformConfig::with_anvil(AnvilConfig::baseline()));
    p.add_workload(anvil::workloads::SpecBenchmark::Libquantum.build(5))
        .unwrap();
    let attack_pid = p
        .add_attack(Box::new(anvil::attacks::DoubleSidedClflush::new()))
        .unwrap();
    p.run_ms(40.0).unwrap();
    let det = p.detections().first().expect("attack detected");
    let suspects: Vec<u32> = det
        .report
        .aggressors
        .iter()
        .flat_map(|a| a.pids.iter().copied())
        .collect();
    assert!(
        suspects.iter().all(|&pid| pid == attack_pid),
        "only the attacker's pid should be attributed: {suspects:?}"
    );
}

#[test]
fn all_samples_dropped_window_engages_degraded_protection() {
    // Every stage-2 sample lost to debug-store overflow. Before the
    // degraded-mode fallback this was a silent false negative: stage 2
    // armed, saw nothing, and cleared the window with no refreshes.
    use anvil::faults::{FaultPlan, PebsFaults};
    let mut plan = FaultPlan::none();
    plan.seed = 17;
    plan.pebs = PebsFaults {
        drop_rate: 1.0,
        burst_len: 1 << 20,
        corrupt_rate: 0.0,
    };
    let mut p =
        Platform::new(PlatformConfig::with_anvil(AnvilConfig::baseline()).with_faults(plan));
    p.add_attack(Box::new(anvil::attacks::DoubleSidedClflush::new()))
        .unwrap();
    p.run_ms(80.0).unwrap();
    let s = *p.detector_stats().unwrap();
    assert!(s.stage2_windows > 0, "the hammer must still arm stage 2");
    assert_eq!(
        s.degraded_windows, s.stage2_windows,
        "every evidence-free stage-2 window must fall back to degraded mode"
    );
    assert!(s.samples_lost > 0);
    assert!(
        s.bank_refreshes > 0,
        "degraded mode must blanket-refresh suspect banks"
    );
    assert_eq!(s.detections, 0, "no samples, so no selective detection");
    assert_eq!(
        p.total_flips(),
        0,
        "blanket refresh must uphold the no-flip guarantee without samples"
    );
    // The stats invariants of detector_stats_are_consistent still hold
    // (at most one stage-2 window is armed but unserviced at run end).
    assert!(s.threshold_crossings - s.stage2_windows <= 1);
    assert_eq!(s.selective_refreshes as usize, p.refresh_log().len());
}
