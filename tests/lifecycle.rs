//! Integration tests of the supervised detector runtime across the
//! facade: checkpoint integrity, crash-restart recovery, hot reload, and
//! soak-campaign reproducibility.

use anvil::core::{AnvilConfig, DetectorCheckpoint, RuntimeError, ServiceOutcome};
use anvil::dram::{AddressMapping, CpuClock, Cycle, DramGeometry};
use anvil::faults::{FaultRng, LifecycleInjector};
use anvil::pmu::{Pmu, SamplerConfig};
use anvil::runtime::{
    soak, LifecycleFaults, RuntimeConfig, SoakConfig, SupervisedOutcome, Supervisor,
};

const CLOCK: CpuClock = CpuClock::SANDY_BRIDGE_2_6GHZ;
const PERIOD: Cycle = 166_400_000;

fn boot(config: AnvilConfig, runtime: RuntimeConfig, pmu: &mut Pmu) -> Supervisor {
    Supervisor::new(config, runtime, CLOCK, PERIOD, 0, pmu)
}

#[allow(clippy::unnecessary_wraps)] // matches the translate callback signature
fn identity(_pid: u32, vaddr: u64) -> Option<u64> {
    Some(vaddr)
}

/// Flipping one byte of the serialized checkpoint is caught by the
/// checksum with the typed corruption error, not a decode error.
#[test]
fn a_flipped_byte_is_a_typed_corruption_error() {
    let mut pmu = Pmu::new(SamplerConfig::anvil_default());
    let mut sup = boot(AnvilConfig::hardened(), RuntimeConfig::default(), &mut pmu);
    let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
    let d = sup.deadline();
    sup.service(d, &mut pmu, &mapping, &mut identity).unwrap();

    let mut bytes = sup.detector().checkpoint(&pmu).to_bytes();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    match DetectorCheckpoint::from_bytes(&bytes) {
        Err(RuntimeError::CheckpointCorrupt { expected, found }) => {
            assert_ne!(expected, found);
        }
        other => panic!("expected CheckpointCorrupt, got {other:?}"),
    }
}

/// A crash with an unusable checkpoint recovers by cold start — the
/// supervisor keeps protecting rather than dying with the bad snapshot.
#[test]
fn corrupted_checkpoints_recover_via_cold_start() {
    let mut pmu = Pmu::new(SamplerConfig::anvil_default());
    let mut sup = boot(AnvilConfig::hardened(), RuntimeConfig::default(), &mut pmu);
    let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
    sup.set_faults(Some(LifecycleInjector::new(
        LifecycleFaults {
            crash_rate: 1.0,
            stall_rate: 0.0,
            max_stall: 0,
            corrupt_rate: 1.0,
        },
        FaultRng::new(3).fork(5),
    )));
    // First crash restores from the pristine boot checkpoint; the
    // checkpoint written after that recovery is corrupted at rest, so the
    // second crash must reject it and cold-start.
    for want_cold in [false, true] {
        let d = sup.deadline();
        let out = sup.service(d, &mut pmu, &mapping, &mut identity).unwrap();
        let SupervisedOutcome::Restarted(r) = out else {
            panic!("expected Restarted, got {out:?}");
        };
        assert_eq!(r.cold_start, want_cold);
        assert!(r.gap > 0);
    }
    assert_eq!(sup.stats().cold_starts, 1);
    assert!(sup.stats().checkpoint_rejections >= 1);
    // The supervisor is still serviceable after the cold start.
    sup.set_faults(None);
    let d = sup.deadline();
    let out = sup.service(d, &mut pmu, &mapping, &mut identity).unwrap();
    assert!(matches!(out, SupervisedOutcome::Serviced { .. }));
}

/// Exceeding the restart budget surfaces the typed error instead of
/// looping forever.
#[test]
fn restart_budget_exhaustion_is_typed() {
    let mut pmu = Pmu::new(SamplerConfig::anvil_default());
    let mut sup = boot(
        AnvilConfig::hardened(),
        RuntimeConfig {
            restart_budget: 2,
            ..RuntimeConfig::default()
        },
        &mut pmu,
    );
    let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
    sup.set_faults(Some(LifecycleInjector::new(
        LifecycleFaults {
            crash_rate: 1.0,
            stall_rate: 0.0,
            max_stall: 0,
            corrupt_rate: 0.0,
        },
        FaultRng::new(7).fork(5),
    )));
    for _ in 0..2 {
        let d = sup.deadline();
        let out = sup.service(d, &mut pmu, &mapping, &mut identity).unwrap();
        assert!(matches!(out, SupervisedOutcome::Restarted(_)));
    }
    let d = sup.deadline();
    let err = sup
        .service(d, &mut pmu, &mapping, &mut identity)
        .unwrap_err();
    assert_eq!(
        err,
        RuntimeError::RestartBudgetExhausted {
            restarts: 3,
            budget: 2
        }
    );
}

/// A hot reload at a window boundary swaps the config without losing the
/// detector's accumulated window history.
#[test]
fn hot_reload_preserves_window_history() {
    let mut pmu = Pmu::new(SamplerConfig::anvil_default());
    let mut sup = boot(AnvilConfig::hardened(), RuntimeConfig::default(), &mut pmu);
    let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
    for _ in 0..3 {
        let d = sup.deadline();
        sup.service(d, &mut pmu, &mapping, &mut identity).unwrap();
    }
    let windows_before = sup.detector().stats().stage1_windows;

    let mut hot = AnvilConfig::hardened();
    hot.llc_miss_threshold = 19_000;
    sup.request_reload(hot).unwrap();
    let d = sup.deadline();
    let out = sup.service(d, &mut pmu, &mapping, &mut identity).unwrap();
    assert!(matches!(
        out,
        SupervisedOutcome::Serviced {
            outcome: ServiceOutcome::Quiet { .. },
            ..
        }
    ));
    assert_eq!(sup.config().llc_miss_threshold, 19_000);
    assert_eq!(sup.stats().reloads, 1);
    assert_eq!(
        sup.detector().stats().stage1_windows,
        windows_before + 1,
        "the swap must not reset window history"
    );
}

/// The soak campaign is deterministic: the same seed reproduces the
/// identical summary (and serialized JSON) bit for bit, and the gate
/// holds at a scale that still injects crashes, stalls, and reloads.
#[test]
fn soak_campaign_is_reproducible_and_holds() {
    let mut cfg = SoakConfig::standard(2_000, 0x1F3);
    // Crank the fault rates so even this short horizon exercises the
    // whole lifecycle.
    cfg.lifecycle.crash_rate = 0.02;
    cfg.lifecycle.stall_rate = 0.05;
    cfg.lifecycle.corrupt_rate = 0.25;
    cfg.reload_every = 500;

    let a = soak::run(&cfg);
    let b = soak::run(&cfg);
    assert_eq!(a, b, "same seed must reproduce the identical summary");
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );

    assert!(a.crashes > 0, "the schedule must inject crashes");
    assert_eq!(a.restarts, a.crashes);
    assert!(a.reloads > 0);
    assert!(a.holds(), "zero flips and in-budget recovery: {a:?}");
    assert!(a.worst_recovery_gap <= a.downtime_budget);

    let mut other = cfg;
    other.seed = 0x1F4;
    let c = soak::run(&other);
    assert_ne!(a, c, "a different seed must diverge");
}
