//! Resilience guarantees under an injected-fault substrate.
//!
//! Every built-in [`FaultScenario`] at default intensity, against each
//! attack template, must uphold ANVIL's no-flip guarantee: zero bit
//! flips, with either a detection or a visible degraded-mode engagement
//! standing in for one. A same-seed campaign cell must also reproduce
//! byte-for-byte (same stats, detections, and refresh schedule).

use anvil::attacks::{Attack, ClflushFreeDoubleSided, DoubleSidedClflush, SingleSidedClflush};
use anvil::core::{AnvilConfig, DetectorStats, Platform, PlatformConfig};
use anvil::faults::{FaultPlan, FaultScenario, PebsFaults, TranslationFaults};

const SEED: u64 = 0xA_11CE;

fn attacks() -> Vec<(&'static str, Box<dyn Attack>)> {
    vec![
        (
            "single-sided",
            Box::new(SingleSidedClflush::new()) as Box<dyn Attack>,
        ),
        ("double-sided", Box::new(DoubleSidedClflush::new())),
        ("clflush-free", Box::new(ClflushFreeDoubleSided::new())),
    ]
}

fn faulted_run(plan: FaultPlan, attack: Box<dyn Attack>, ms: f64) -> (Platform, DetectorStats) {
    let mut p =
        Platform::new(PlatformConfig::with_anvil(AnvilConfig::baseline()).with_faults(plan));
    p.add_attack(attack)
        .expect("attack prepares on open platform");
    p.run_ms(ms).expect("run completes");
    let stats = *p.detector_stats().expect("anvil loaded");
    (p, stats)
}

/// The acceptance gate: every built-in scenario at default intensity,
/// against the full attack matrix, ends with zero flips and a protection
/// signal (a detection, or degraded mode visibly engaged).
#[test]
fn every_builtin_scenario_protects_every_attack() {
    for scenario in FaultScenario::ALL {
        for (label, attack) in attacks() {
            let plan = scenario.plan(1.0, SEED);
            let (p, stats) = faulted_run(plan, attack, 70.0);
            assert_eq!(
                p.total_flips(),
                0,
                "[{} / {label}] bits flipped under faults",
                scenario.name()
            );
            assert!(
                !p.detections().is_empty() || stats.degraded_windows > 0,
                "[{} / {label}] no detection and no degraded engagement",
                scenario.name()
            );
        }
    }
}

/// Same plan, same seed: the whole run is a pure function of its inputs.
/// Detector stats, the detection log, and the refresh schedule must all
/// reproduce exactly.
#[test]
fn same_seed_reproduces_the_campaign_cell() {
    let run = || {
        let plan = FaultScenario::Combined.plan(1.0, SEED);
        let (p, stats) = faulted_run(plan, Box::new(DoubleSidedClflush::new()), 70.0);
        let detections: Vec<_> = p
            .detections()
            .iter()
            .map(|d| (d.cycle, d.report.clone(), d.refreshed.clone()))
            .collect();
        (stats, p.total_flips(), detections, p.refresh_log().to_vec())
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "detector stats diverged across same-seed runs");
    assert_eq!(a.1, b.1, "flip counts diverged");
    assert_eq!(a.2, b.2, "detection log diverged");
    assert_eq!(a.3, b.3, "refresh schedule diverged");
}

/// A total-evidence-loss plan (every PEBS sample dropped, every
/// translation failing) still protects: degraded mode engages on each
/// stage-2 window and is visible in the stats.
#[test]
fn total_evidence_loss_engages_visible_degraded_mode() {
    let mut plan = FaultPlan::none();
    plan.seed = SEED;
    plan.pebs = PebsFaults {
        drop_rate: 1.0,
        burst_len: 1 << 20,
        corrupt_rate: 0.0,
    };
    plan.translation = TranslationFaults {
        fail_rate: 1.0,
        stale_rate: 0.0,
    };
    let (p, stats) = faulted_run(plan, Box::new(DoubleSidedClflush::new()), 70.0);
    assert!(stats.stage2_windows > 0);
    assert_eq!(stats.degraded_windows, stats.stage2_windows);
    assert!(stats.bank_refreshes > 0, "blanket refresh must be visible");
    assert_eq!(p.total_flips(), 0);
}
