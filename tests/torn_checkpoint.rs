//! Property-based robustness of the checkpoint wire format against torn
//! and corrupted writes.
//!
//! The fleet campaign injects torn checkpoint writes (a crash mid-write
//! leaves a prefix of the record) and bit rot (a flipped bit at rest).
//! `DetectorCheckpoint::from_bytes` must convert *every* such mutation
//! into a typed [`RuntimeError`] — never panic, and never silently
//! accept a damaged snapshot as a resumable state (which would let a
//! recovering detector resume with less evidence than it actually had).

use std::sync::OnceLock;

use anvil::core::{AnvilConfig, DetectorCheckpoint, RuntimeError};
use anvil::dram::{AddressMapping, CpuClock, DramGeometry};
use anvil::pmu::{Pmu, SamplerConfig};
use anvil::runtime::{RuntimeConfig, Supervisor};
use proptest::prelude::*;

/// A real checkpoint from a serviced hardened supervisor — ledger rows,
/// carry, jitter state and all — so mutations land on representative
/// bytes, not a toy record. Built once; proptest cases only mutate.
fn checkpoint_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let mut pmu = Pmu::new(SamplerConfig::anvil_default());
        let mut sup = Supervisor::new(
            AnvilConfig::hardened(),
            RuntimeConfig::default(),
            CpuClock::SANDY_BRIDGE_2_6GHZ,
            166_400_000,
            0,
            &mut pmu,
        );
        let mapping = AddressMapping::new(DramGeometry::ddr3_4gb());
        let deadline = sup.deadline();
        sup.service(deadline, &mut pmu, &mapping, &mut |_pid, va| Some(va))
            .expect("fault-free service succeeds");
        sup.detector().checkpoint(&pmu).to_bytes()
    })
}

/// The decode outcomes a damaged checkpoint is allowed to produce.
fn assert_typed_rejection(result: Result<DetectorCheckpoint, RuntimeError>, what: &str) {
    match result {
        Err(
            RuntimeError::CheckpointCorrupt { .. }
            | RuntimeError::CheckpointUndecodable
            | RuntimeError::VersionMismatch { .. },
        ) => {}
        Err(other) => panic!("{what}: unexpected error variant {other:?}"),
        Ok(_) => panic!("{what}: damaged checkpoint decoded successfully"),
    }
}

/// Sanity baseline: the undamaged bytes round-trip.
#[test]
fn pristine_bytes_round_trip() {
    let bytes = checkpoint_bytes();
    let ckpt = DetectorCheckpoint::from_bytes(bytes).expect("pristine checkpoint decodes");
    assert_eq!(ckpt.to_bytes(), bytes);
}

proptest! {
    /// A torn write — any strict prefix, down to the empty file — is a
    /// typed rejection, forcing the supervisor's cold-start path. The
    /// drawn offset folds onto the record length, so every prefix length
    /// is reachable whatever the checkpoint's actual size.
    #[test]
    fn any_truncation_is_rejected_with_a_typed_error(offset in 0u64..1 << 20) {
        let bytes = checkpoint_bytes();
        let keep = (offset as usize) % bytes.len();
        assert_typed_rejection(
            DetectorCheckpoint::from_bytes(&bytes[..keep]),
            &format!("truncated to {keep} of {} bytes", bytes.len()),
        );
    }

    /// A single flipped bit anywhere — header, checksum, payload — is a
    /// typed rejection: the checksum spans every payload byte and the
    /// header is validated before it is trusted.
    #[test]
    fn any_flipped_bit_is_rejected_with_a_typed_error(offset in 0u64..1 << 20, bit in 0u8..8) {
        let bytes = checkpoint_bytes();
        let pos = (offset as usize) % bytes.len();
        let mut bad = bytes.to_vec();
        bad[pos] ^= 1 << bit;
        assert_typed_rejection(
            DetectorCheckpoint::from_bytes(&bad),
            &format!("bit {bit} of byte {pos} flipped"),
        );
    }

    /// A tear *and* bit rot together (the crash that tore the write also
    /// scribbled on the surviving prefix) still land on a typed
    /// rejection.
    #[test]
    fn a_torn_then_corrupted_prefix_is_rejected(
        tear in 0u64..1 << 20,
        offset in 0u64..1 << 20,
        bit in 0u8..8,
    ) {
        let bytes = checkpoint_bytes();
        let keep = 1 + (tear as usize) % (bytes.len() - 1);
        let mut bad = bytes[..keep].to_vec();
        let pos = (offset as usize) % keep;
        bad[pos] ^= 1 << bit;
        assert_typed_rejection(
            DetectorCheckpoint::from_bytes(&bad),
            &format!("torn to {keep} bytes, bit {bit} of byte {pos} flipped"),
        );
    }
}
